"""Fault-injection grid for the orchestrator's crash tests.

Registers a tiny ``faultinject`` experiment whose shards misbehave on
demand — SIGKILL their worker, hang, or raise — controlled per shard index
through the grid options.  Every shard execution appends one line to an
``attempt-<index>`` marker file in the test's working directory, which both
counts the attempts and lets "fail only once" faults arm themselves on the
first attempt and pass on the retry.

The orchestrator's workers dispatch shards by experiment name through the
module-level registry; with the ``fork`` start method (required by the
tests that use this module) a registration made in the parent before the
pool spins up is inherited by the workers.
"""

from __future__ import annotations

import os
import signal
import time

from repro.experiments.orchestrator import GridFunctions, register_experiment

EXPERIMENT = "faultinject"


def _bump_attempts(work_dir: str, index: int) -> int:
    """Record one execution of shard ``index``; returns the attempt number.

    A shard is never in flight twice concurrently (the orchestrator retries
    only after the previous attempt died), so appending needs no locking.
    """
    path = os.path.join(work_dir, f"attempt-{index}")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("x\n")
    with open(path, "r", encoding="utf-8") as handle:
        return sum(1 for _ in handle)


def attempt_counts(work_dir: str) -> dict[int, int]:
    """How many times each shard actually executed."""
    counts: dict[int, int] = {}
    for name in os.listdir(work_dir):
        if not name.startswith("attempt-"):
            continue
        with open(os.path.join(work_dir, name), "r", encoding="utf-8") as handle:
            counts[int(name.split("-", 1)[1])] = sum(1 for _ in handle)
    return counts


def sweep_shards(config, options):
    options = options or {}
    work_dir = options["work_dir"]
    return [
        {
            "index": index,
            "work_dir": work_dir,
            "kill_once": index in options.get("kill_once", []),
            "kill_always": index in options.get("kill_always", []),
            "hang_once_s": (
                float(options.get("hang_seconds", 30.0))
                if index in options.get("hang_once", [])
                else 0.0
            ),
            "raise_on": index in options.get("raise_on", []),
            "sleep_s": float(options.get("sleep_s", 0.0)),
        }
        for index in range(int(options.get("num_shards", 4)))
    ]


def run_sweep_shard(params, config):
    index = params["index"]
    attempt = _bump_attempts(params["work_dir"], index)
    if params["raise_on"]:
        raise ValueError(f"deterministic failure of shard {index}")
    if params["kill_always"] or (params["kill_once"] and attempt == 1):
        os.kill(os.getpid(), signal.SIGKILL)
    if params["hang_once_s"] and attempt == 1:
        time.sleep(params["hang_once_s"])
    if params["sleep_s"]:
        # Uniform slowness (not a one-shot hang): stretches the sweep so
        # service tests can catch a job mid-flight or outlast a job timeout.
        time.sleep(params["sleep_s"])
    return {"index": index, "value": index * index + 1}


def merge_sweep(payloads, config, options):
    rows = [dict(payload) for payload in payloads]
    text = "values: " + ", ".join(str(row["value"]) for row in rows)
    return text, rows


def install() -> None:
    """(Re-)register the experiment; idempotent across tests."""
    register_experiment(
        EXPERIMENT,
        GridFunctions(sweep_shards, run_sweep_shard, merge_sweep),
        replace=True,
    )
