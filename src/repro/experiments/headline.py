"""Experiment ``headline``: the paper's summary claims.

Section V-C condenses the study into a handful of headline numbers:

* the lasers draw ~92% of the channel power without ECC,
* H(71,64) and H(7,4) cut the per-wavelength channel power by ~45% / ~49%,
* the per-waveguide power drops from 251 mW to 136 mW with H(71,64),
* scaled to 16 waveguides per channel and 12 ONIs the saving reaches ~22 W,
* a BER of 1e-12 is unreachable without ECC but reachable with both codes.

This experiment recomputes each claim from the models and reports the
measured values side by side with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..coding.registry import paper_code_set
from ..config import DEFAULT_CONFIG, PaperConfig
from ..link.design import OpticalLinkDesigner
from ..power.channel import channel_power_breakdown
from ..power.interconnect import (
    InterconnectPowerSummary,
    interconnect_power_saving_w,
    interconnect_power_summary,
)
from .figure6 import run_figure6a
from .gridlib import single_merge_sweep as merge_sweep, single_sweep_shards as sweep_shards
from .paperdata import Comparison, PAPER_LASER_SHARE_UNCODED, PAPER_TOTAL_SAVING_W

__all__ = ["HeadlineResult", "run_headline", "sweep_shards", "run_sweep_shard", "merge_sweep"]


@dataclass
class HeadlineResult:
    """Measured values of every headline claim."""

    target_ber: float
    laser_share_uncoded: float
    power_reduction: Dict[str, float]
    per_waveguide_power_mw: Dict[str, float]
    total_power_w: Dict[str, float]
    total_saving_w: float
    ber_1e12_feasible: Dict[str, bool]
    comparisons: List[Comparison] = field(default_factory=list)

    def render_text(self) -> str:
        """Text rendering of the headline claims."""
        lines = [
            f"Headline claims at BER = {self.target_ber:g}",
            f"laser share of channel power (w/o ECC): {self.laser_share_uncoded * 100:.1f}%",
        ]
        for name, reduction in self.power_reduction.items():
            lines.append(f"channel power reduction with {name}: {reduction * 100:.1f}%")
        for name, value in self.per_waveguide_power_mw.items():
            lines.append(f"per-waveguide power [{name}]: {value:.1f} mW")
        lines.append(f"total interconnect saving (H(71,64) vs w/o ECC): {self.total_saving_w:.1f} W")
        feasibility = ", ".join(
            f"{name}: {'yes' if ok else 'no'}" for name, ok in self.ber_1e12_feasible.items()
        )
        lines.append(f"BER 1e-12 reachable? {feasibility}")
        lines.append("")
        lines.append("Comparison against the paper:")
        lines.extend(c.render() for c in self.comparisons)
        return "\n".join(lines)


def run_headline(
    config: PaperConfig = DEFAULT_CONFIG, *, target_ber: float = 1e-11
) -> HeadlineResult:
    """Recompute the paper's headline claims."""
    figure6a = run_figure6a(config, target_ber=target_ber)
    codes = paper_code_set(config.ip_bus_width_bits)
    designer = OpticalLinkDesigner(config=config)

    laser_share = figure6a.breakdowns["w/o ECC"].laser_share
    power_reduction = {
        name: figure6a.power_reduction_vs_uncoded(name)
        for name in figure6a.breakdowns
        if name != "w/o ECC"
    }
    summaries: Dict[str, InterconnectPowerSummary] = {
        name: interconnect_power_summary(breakdown, config=config)
        for name, breakdown in figure6a.breakdowns.items()
    }
    per_waveguide = {name: s.per_waveguide_power_w * 1e3 for name, s in summaries.items()}
    totals = {name: s.total_power_w for name, s in summaries.items()}
    saving = interconnect_power_saving_w(summaries["w/o ECC"], summaries["H(71,64)"])

    feasibility = {
        code.name: designer.design_point(code, 1e-12).feasible for code in codes
    }

    comparisons = [
        Comparison(
            quantity="laser share of channel power (w/o ECC)",
            measured=laser_share,
            reference=PAPER_LASER_SHARE_UNCODED,
            unit="",
        ),
        Comparison(
            quantity="total interconnect power saving",
            measured=saving,
            reference=PAPER_TOTAL_SAVING_W,
            unit="W",
        ),
    ]
    return HeadlineResult(
        target_ber=target_ber,
        laser_share_uncoded=laser_share,
        power_reduction=power_reduction,
        per_waveguide_power_mw=per_waveguide,
        total_power_w=totals,
        total_saving_w=saving,
        ber_1e12_feasible=feasibility,
        comparisons=comparisons,
    )
# ------------------------------------------------------------------ grid API
def run_sweep_shard(params, config=DEFAULT_CONFIG):
    """Worker: recompute the headline claims; returns the rendered payload."""
    result = run_headline(config)
    rows = [
        {"quantity": c.quantity, "measured": c.measured, "paper": c.reference, "unit": c.unit}
        for c in result.comparisons
    ]
    return {"text": result.render_text(), "rows": rows}
