"""Tests for the electrical interface models (technology library, blocks, assemblies)."""

from __future__ import annotations

import pytest

from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.exceptions import ConfigurationError
from repro.interfaces.blocks import (
    aggregate_blocks,
    deserializer_block,
    hamming_codec_block,
    mux_block,
    serializer_block,
)
from repro.interfaces.receiver import ReceiverInterface
from repro.interfaces.synthesis import PAPER_MODES, synthesize_interfaces
from repro.interfaces.techlib import FDSOI_28NM, BlockCharacterisation, TechnologyLibrary
from repro.interfaces.transmitter import TransmitterInterface


class TestTechnologyLibrary:
    def test_table_one_blocks_are_present(self):
        for name in (
            "tx/mux_1bit_3to1",
            "tx/h74_coders_x16",
            "tx/h71_64_coder",
            "rx/h74_decoders_x16",
            "rx/deser_64bit_uncoded",
        ):
            assert FDSOI_28NM.has_block(name)

    def test_table_one_values_are_stored_verbatim(self):
        coder = FDSOI_28NM.block("tx/h74_coders_x16")
        assert coder.area_um2 == pytest.approx(551.0)
        assert coder.critical_path_ps == pytest.approx(210.0)
        assert coder.dynamic_power_uw == pytest.approx(3.13)

    def test_total_power_adds_static_in_nanowatts(self):
        block = BlockCharacterisation("x", 10.0, 50.0, 100.0, 1.0)
        assert block.total_power_uw == pytest.approx(1.1)
        assert block.total_power_w == pytest.approx(1.1e-6)

    def test_scaled_block(self):
        block = FDSOI_28NM.block("tx/ser_64bit_uncoded").scaled(2.0, name="double")
        assert block.area_um2 == pytest.approx(498.0)
        assert block.name == "double"

    def test_unknown_block_raises(self):
        with pytest.raises(ConfigurationError):
            FDSOI_28NM.block("tx/nonexistent")

    def test_unknown_calibration_raises(self):
        with pytest.raises(ConfigurationError):
            FDSOI_28NM.calibration("made-up-constant")

    def test_duplicate_block_names_rejected(self):
        block = BlockCharacterisation("dup", 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            TechnologyLibrary(
                "x", feature_size_nm=28, supply_voltage_v=1.0, blocks=[block, block], calibration={}
            )

    def test_negative_characterisation_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockCharacterisation("bad", -1.0, 1.0, 1.0, 1.0)


class TestParametricBlocks:
    def test_h74_coder_bank_estimate_close_to_table_one(self):
        estimate = hamming_codec_block(HammingCode(3), role="encoder", num_instances=16)
        assert estimate.area_um2 == pytest.approx(551.0, rel=0.25)

    def test_h7164_coder_estimate_close_to_table_one(self):
        estimate = hamming_codec_block(ShortenedHammingCode(64), role="encoder", num_instances=1)
        assert estimate.area_um2 == pytest.approx(490.0, rel=0.25)

    def test_h74_decoder_bank_estimate_close_to_table_one(self):
        estimate = hamming_codec_block(HammingCode(3), role="decoder", num_instances=16)
        assert estimate.area_um2 == pytest.approx(783.0, rel=0.25)

    def test_serializer_estimates_scale_linearly_with_depth(self):
        small = serializer_block(64)
        large = serializer_block(112)
        assert large.area_um2 / small.area_um2 == pytest.approx(112 / 64, rel=1e-6)
        assert small.area_um2 == pytest.approx(249.0, rel=0.1)

    def test_deserializer_estimate_close_to_table_one(self):
        estimate = deserializer_block(112)
        assert estimate.area_um2 == pytest.approx(365.0, rel=0.1)
        assert estimate.dynamic_power_uw == pytest.approx(4.75, rel=0.15)

    def test_dynamic_power_scales_with_frequency(self):
        slow = serializer_block(64, modulation_rate_hz=5e9)
        fast = serializer_block(64, modulation_rate_hz=10e9)
        assert fast.dynamic_power_uw == pytest.approx(2 * slow.dynamic_power_uw)

    def test_decoder_is_larger_and_slower_than_encoder(self):
        encoder = hamming_codec_block(HammingCode(3), role="encoder", num_instances=16)
        decoder = hamming_codec_block(HammingCode(3), role="decoder", num_instances=16)
        assert decoder.area_um2 > encoder.area_um2
        assert decoder.critical_path_ps > encoder.critical_path_ps

    def test_mux_scales_with_width_and_inputs(self):
        narrow = mux_block(1, 3)
        wide = mux_block(64, 3)
        more_inputs = mux_block(64, 5)
        assert wide.area_um2 == pytest.approx(64 * narrow.area_um2, rel=1e-6)
        assert more_inputs.area_um2 > wide.area_um2

    def test_aggregate_blocks(self):
        blocks = [serializer_block(64), deserializer_block(64)]
        total = aggregate_blocks(blocks, name="pair")
        assert total.area_um2 == pytest.approx(sum(b.area_um2 for b in blocks))
        assert total.critical_path_ps == max(b.critical_path_ps for b in blocks)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hamming_codec_block(HammingCode(3), role="codec", num_instances=16)
        with pytest.raises(ConfigurationError):
            serializer_block(0)
        with pytest.raises(ConfigurationError):
            mux_block(0)
        with pytest.raises(ConfigurationError):
            aggregate_blocks([], name="empty")


class TestInterfaceAssemblies:
    def test_paper_transmitter_area_matches_table_one(self):
        transmitter = TransmitterInterface.paper_default()
        assert transmitter.total_area_um2 == pytest.approx(2013.0)

    def test_paper_receiver_area_matches_table_one(self):
        receiver = ReceiverInterface.paper_default()
        assert receiver.total_area_um2 == pytest.approx(3050.0)

    @pytest.mark.parametrize(
        "mode, expected", [("H(7,4)", 9.57), ("H(71,64)", 5.98), ("w/o ECC", 3.16)]
    )
    def test_transmitter_dynamic_power_per_mode(self, mode, expected):
        transmitter = TransmitterInterface.paper_default()
        assert transmitter.dynamic_power_uw(mode) == pytest.approx(expected, abs=0.05)

    @pytest.mark.parametrize(
        "mode, expected", [("H(7,4)", 10.10), ("H(71,64)", 7.20), ("w/o ECC", 4.30)]
    )
    def test_receiver_dynamic_power_per_mode(self, mode, expected):
        receiver = ReceiverInterface.paper_default()
        assert receiver.dynamic_power_uw(mode) == pytest.approx(expected, abs=0.05)

    def test_coded_modes_cost_more_than_uncoded(self):
        transmitter = TransmitterInterface.paper_default()
        assert transmitter.dynamic_power_uw("H(7,4)") > transmitter.dynamic_power_uw("w/o ECC")

    def test_unknown_mode_raises(self):
        transmitter = TransmitterInterface.paper_default()
        with pytest.raises(ConfigurationError):
            transmitter.dynamic_power_uw("H(15,11)")

    def test_critical_path_is_positive_slack_at_1ghz(self):
        transmitter = TransmitterInterface.paper_default()
        receiver = ReceiverInterface.paper_default()
        for mode in PAPER_MODES:
            assert transmitter.critical_path_ps(mode) < 1000.0
            assert receiver.critical_path_ps(mode) < 1000.0

    def test_parametric_interface_exposes_custom_modes(self):
        codes = [HammingCode(4)]
        transmitter = TransmitterInterface.from_codes(codes, ip_bus_width_bits=44)
        assert "H(15,11)" in transmitter.modes()
        assert transmitter.dynamic_power_uw("H(15,11)") > transmitter.dynamic_power_uw("w/o ECC")

    def test_parametric_interface_rejects_mismatched_bus(self):
        with pytest.raises(ConfigurationError):
            TransmitterInterface.from_codes([HammingCode(4)], ip_bus_width_bits=64)

    def test_mode_summary_aggregates_active_blocks(self):
        receiver = ReceiverInterface.paper_default()
        summary = receiver.mode_summary("H(7,4)")
        assert summary.dynamic_power_uw == pytest.approx(receiver.dynamic_power_uw("H(7,4)"))


class TestSynthesisReport:
    def test_mode_totals_match_table_one(self, synthesis_report):
        assert synthesis_report.mode_totals("transmitter", "H(7,4)").total_power_uw == pytest.approx(
            9.59, abs=0.05
        )
        assert synthesis_report.mode_totals("receiver", "w/o ECC").total_power_uw == pytest.approx(
            4.32, abs=0.05
        )

    def test_interface_power_combines_both_sides(self, synthesis_report):
        combined = synthesis_report.interface_power_w("H(71,64)")
        tx = synthesis_report.mode_totals("transmitter", "H(71,64)").total_power_uw
        rx = synthesis_report.mode_totals("receiver", "H(71,64)").total_power_uw
        assert combined == pytest.approx((tx + rx) * 1e-6)

    def test_slack_is_positive_for_every_mode(self, synthesis_report):
        for side in ("transmitter", "receiver"):
            for mode in PAPER_MODES:
                assert synthesis_report.slack_ps(side, mode) > 0

    def test_unknown_mode_raises_keyerror(self, synthesis_report):
        with pytest.raises(KeyError):
            synthesis_report.mode_totals("transmitter", "turbo")

    def test_rows_and_text_rendering(self, synthesis_report):
        rows = synthesis_report.to_rows()
        assert len(rows) == 12 + 6  # 12 blocks + 6 per-mode totals
        text = synthesis_report.render_text()
        assert "tx/h74_coders_x16" in text
        assert "Total, H(7,4) com." in text

    def test_parametric_report_is_in_the_same_ballpark(self):
        parametric = synthesize_interfaces(parametric=True)
        reference = synthesize_interfaces(parametric=False)
        measured = parametric.mode_totals("transmitter", "H(7,4)").total_power_uw
        expected = reference.mode_totals("transmitter", "H(7,4)").total_power_uw
        assert measured == pytest.approx(expected, rel=0.6)
