"""Tests for the experiment modules (Table I, Figures 3-6, headline claims)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.experiments.calibration import run_calibration
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import DEFAULT_BER_GRID, run_figure5
from repro.experiments.figure6 import run_figure6a, run_figure6b
from repro.experiments.headline import run_headline
from repro.experiments.paperdata import Comparison, relative_error
from repro.experiments.table1 import run_table1
from repro.experiments.validation import run_validation


class TestPaperData:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        with pytest.raises(ZeroDivisionError):
            relative_error(1.0, 0.0)

    def test_comparison_render(self):
        comparison = Comparison("test quantity", 9.0, 10.0, unit="mW")
        text = comparison.render()
        assert "test quantity" in text
        assert "-10.0%" in text


class TestTable1Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1()

    def test_library_totals_match_the_paper_exactly(self, result):
        library_comparisons = [
            c for c in result.comparisons if not c.quantity.startswith("parametric")
        ]
        for comparison in library_comparisons:
            assert abs(comparison.relative_error) < 0.01, comparison.quantity

    def test_parametric_estimates_are_within_fifty_percent(self, result):
        parametric = [c for c in result.comparisons if c.quantity.startswith("parametric")]
        assert parametric
        for comparison in parametric:
            assert abs(comparison.relative_error) < 0.5, comparison.quantity

    def test_render_text_contains_the_table(self, result):
        text = result.render_text()
        assert "Table I" in text
        assert "tx/h74_coders_x16" in text


class TestFigure3Experiment:
    def test_extinction_ratio_is_reproduced(self):
        result = run_figure3()
        assert result.achieved_extinction_db == pytest.approx(6.9, abs=0.3)

    def test_spectra_have_dips(self):
        result = run_figure3()
        assert result.on_transmission_db.min() < -3.0
        assert result.off_transmission_db.min() < -3.0
        assert result.wavelengths_m.size == result.on_transmission_db.size


class TestFigure4Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4()

    def test_curve_is_monotonically_increasing(self, result):
        assert np.all(np.diff(result.laser_power_mw) > 0)

    def test_linear_region_below_500uw(self, result):
        assert result.linearity_error_below_500uw < 0.25

    def test_superlinear_growth_at_high_power(self, result):
        op = result.optical_power_uw
        p = result.laser_power_mw
        low_slope = (p[op <= 200][-1] - p[0]) / 200.0
        high_mask = op >= 600
        high_slope = (p[high_mask][-1] - p[high_mask][0]) / (op[high_mask][-1] - op[high_mask][0])
        assert high_slope > 1.1 * low_slope

    def test_maximum_deliverable_power_is_700uw(self, result):
        assert result.max_deliverable_uw == pytest.approx(700.0)

    def test_efficiency_is_around_five_percent(self, result):
        assert 0.04 < result.low_power_efficiency < 0.08


class TestFigure5Experiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5()

    def test_every_scheme_has_a_full_sweep(self, result):
        for points in result.series.values():
            assert len(points) == len(DEFAULT_BER_GRID)

    def test_uncoded_curve_is_always_the_highest(self, result):
        uncoded = [p.laser_electrical_power_w for p in result.series["w/o ECC"]]
        for name in ("H(71,64)", "H(7,4)"):
            coded = [p.laser_electrical_power_w for p in result.series[name]]
            assert all(u > c for u, c in zip(uncoded, coded))

    def test_laser_power_grows_towards_stricter_ber_targets(self, result):
        # The grid runs from 1e-3 down to 1e-12, so the power must be
        # non-decreasing along it.
        for points in result.series.values():
            powers = [p.laser_electrical_power_w for p in points]
            assert all(a <= b for a, b in zip(powers, powers[1:]))

    def test_uncoded_1e12_is_the_only_infeasible_point(self, result):
        assert not result.point_at("w/o ECC", 1e-12).feasible
        assert result.point_at("H(71,64)", 1e-12).feasible
        assert result.point_at("H(7,4)", 1e-12).feasible
        assert result.point_at("w/o ECC", 1e-11).feasible

    def test_1e11_values_track_the_paper_within_twenty_percent(self, result):
        for comparison in result.comparisons:
            assert abs(comparison.relative_error) < 0.20, comparison.quantity

    def test_missing_ber_raises(self, result):
        with pytest.raises(KeyError):
            result.point_at("H(7,4)", 3e-7)

    def test_render_text(self, result):
        text = result.render_text()
        assert "infeasible" in text
        assert "1e-11" in text or "1e-11".upper() in text.upper()


class TestFigure6Experiments:
    @pytest.fixture(scope="class")
    def result_a(self):
        return run_figure6a()

    @pytest.fixture(scope="class")
    def result_b(self):
        return run_figure6b()

    def test_laser_share_is_about_92_percent_without_ecc(self, result_a):
        assert result_a.breakdowns["w/o ECC"].laser_share == pytest.approx(0.92, abs=0.02)

    def test_channel_power_reduction_is_roughly_half(self, result_a):
        assert result_a.power_reduction_vs_uncoded("H(71,64)") == pytest.approx(0.45, abs=0.10)
        assert result_a.power_reduction_vs_uncoded("H(7,4)") == pytest.approx(0.49, abs=0.10)

    def test_h71_is_the_most_energy_efficient(self, result_a):
        energies = {
            name: metrics.energy_per_bit_modulation_j
            for name, metrics in result_a.energies.items()
        }
        assert min(energies, key=energies.get) == "H(71,64)"

    def test_waveguide_power_comparisons_are_close_to_the_paper(self, result_a):
        for comparison in result_a.comparisons:
            if comparison.quantity.startswith("channel power per waveguide"):
                assert abs(comparison.relative_error) < 0.15, comparison.quantity

    def test_all_schemes_lie_on_the_pareto_front(self, result_b):
        for ber in result_b.target_bers:
            points = result_b.points_for_ber(ber)
            front = result_b.front_for_ber(ber)
            assert {p.code_name for p in front} == {p.code_name for p in points}

    def test_infeasible_points_are_excluded(self, result_b):
        # At 1e-12 the uncoded scheme must not appear in the cloud.
        names_at_1e12 = {p.code_name for p in result_b.points_for_ber(1e-12)}
        assert "w/o ECC" not in names_at_1e12

    def test_render_text(self, result_a, result_b):
        assert "Figure 6a" in result_a.render_text()
        assert "Figure 6b" in result_b.render_text()


class TestHeadlineExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_headline()

    def test_laser_share(self, result):
        assert result.laser_share_uncoded == pytest.approx(0.92, abs=0.02)

    def test_power_reductions(self, result):
        assert result.power_reduction["H(71,64)"] == pytest.approx(0.45, abs=0.10)

    def test_total_saving_is_close_to_22w(self, result):
        assert result.total_saving_w == pytest.approx(22.0, rel=0.25)

    def test_ber_1e12_feasibility_pattern(self, result):
        assert result.ber_1e12_feasible == {
            "w/o ECC": False,
            "H(71,64)": True,
            "H(7,4)": True,
        }

    def test_render_text(self, result):
        text = result.render_text()
        assert "laser share" in text
        assert "22" in text or "W" in text


class TestCalibrationSummary:
    def test_signal_path_loss_documented_range(self):
        summary = run_calibration()
        assert 8.0 < summary.signal_path_loss_db < 9.5
        assert summary.laser_max_output_uw == pytest.approx(700.0)
        assert "dB" in summary.render_text()


class TestValidationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_validation(num_blocks=4000, targets=(1e-3,), seed=7)

    def test_covers_the_paper_code_set(self, result):
        assert {p.code_name for p in result.points} == {"w/o ECC", "H(71,64)", "H(7,4)"}

    def test_measured_raw_ber_tracks_equation_three(self, result):
        for point in result.points:
            assert point.measured_raw_ber == pytest.approx(point.analytic_raw_ber, rel=0.3), (
                point.code_name
            )

    def test_coded_links_beat_their_raw_ber(self, result):
        for name in ("H(71,64)", "H(7,4)"):
            point = result.point_for(name, 1e-3)
            assert point.measured_post_ber < point.measured_raw_ber

    def test_point_lookup_and_rendering(self, result):
        assert result.point_for("H(7,4)", 1e-3).blocks_simulated == 4000
        with pytest.raises(KeyError):
            result.point_for("H(7,4)", 1e-9)
        text = result.render_text()
        assert "Monte-Carlo validation" in text
        assert "H(71,64)" in text
        assert len(result.to_rows()) == 3

    def test_registered_with_the_runner(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "validation" in EXPERIMENTS


class TestRunnerCli:
    def test_runner_executes_selected_experiments(self, capsys, tmp_path):
        from repro.experiments.runner import main

        exit_code = main(["calibration", "figure4", "--csv", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Experiment calibration" in captured
        assert (tmp_path / "figure4.csv").exists()

    def test_runner_rejects_unknown_experiments(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
