"""Tests for CRC checks and block interleaving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.crc import CyclicRedundancyCheck
from repro.coding.interleaving import BlockInterleaver
from repro.exceptions import CodewordLengthError, ConfigurationError


class TestCRC:
    def test_append_then_verify_succeeds(self, rng):
        crc = CyclicRedundancyCheck.from_name("crc16-ccitt")
        message = rng.integers(0, 2, size=120, dtype=np.uint8)
        assert crc.verify(crc.append(message))

    def test_single_bit_error_is_detected(self, rng):
        crc = CyclicRedundancyCheck.from_name("crc8")
        message = rng.integers(0, 2, size=64, dtype=np.uint8)
        framed = crc.append(message)
        for position in range(framed.size):
            corrupted = framed.copy()
            corrupted[position] ^= 1
            assert not crc.verify(corrupted), f"missed error at {position}"

    def test_burst_errors_shorter_than_width_are_detected(self, rng):
        crc = CyclicRedundancyCheck.from_name("crc16-ccitt")
        message = rng.integers(0, 2, size=128, dtype=np.uint8)
        framed = crc.append(message)
        for start in range(0, framed.size - 16, 7):
            corrupted = framed.copy()
            corrupted[start : start + 13] ^= 1
            assert not crc.verify(corrupted)

    def test_checksum_width(self):
        crc = CyclicRedundancyCheck(8, 0x07)
        assert crc.checksum(np.ones(10, dtype=np.uint8)).size == 8

    def test_zero_message_has_zero_crc(self):
        crc = CyclicRedundancyCheck(8, 0x07)
        assert not crc.checksum(np.zeros(32, dtype=np.uint8)).any()

    def test_known_crcs_constructible(self):
        for name in ("crc4-itu", "crc8", "crc8-maxim", "crc16-ccitt", "crc16-ibm", "crc32"):
            crc = CyclicRedundancyCheck.from_name(name)
            assert crc.width >= 4

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            CyclicRedundancyCheck.from_name("crc-unknown")

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            CyclicRedundancyCheck(0, 1)
        with pytest.raises(ConfigurationError):
            CyclicRedundancyCheck(8, 0)
        with pytest.raises(ConfigurationError):
            CyclicRedundancyCheck(8, 0x100)

    def test_verify_rejects_short_input(self):
        crc = CyclicRedundancyCheck(8, 0x07)
        with pytest.raises(CodewordLengthError):
            crc.verify(np.zeros(8, dtype=np.uint8))


class TestBlockInterleaver:
    def test_round_trip(self, rng):
        interleaver = BlockInterleaver(depth=16, width=7)
        bits = rng.integers(0, 2, size=interleaver.block_size, dtype=np.uint8)
        assert np.array_equal(interleaver.deinterleave(interleaver.interleave(bits)), bits)

    def test_interleave_is_a_permutation(self, rng):
        interleaver = BlockInterleaver(depth=4, width=5)
        bits = np.arange(20) % 2
        permuted = interleaver.interleave(bits)
        assert sorted(permuted.tolist()) == sorted(bits.tolist())

    def test_burst_is_spread_across_rows(self):
        depth, width = 8, 7
        interleaver = BlockInterleaver(depth=depth, width=width)
        bits = np.zeros(depth * width, dtype=np.uint8)
        transmitted = interleaver.interleave(bits)
        # A burst of `depth` consecutive channel errors...
        transmitted[10 : 10 + depth] ^= 1
        received = interleaver.deinterleave(transmitted)
        # ...lands at most once per original codeword (row).
        per_row_errors = received.reshape(depth, width).sum(axis=1)
        assert per_row_errors.max() <= 1

    def test_block_size(self):
        assert BlockInterleaver(3, 5).block_size == 15

    def test_size_validation(self):
        interleaver = BlockInterleaver(4, 4)
        with pytest.raises(CodewordLengthError):
            interleaver.interleave(np.zeros(15, dtype=np.uint8))
        with pytest.raises(CodewordLengthError):
            interleaver.deinterleave(np.zeros(17, dtype=np.uint8))

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaver(0, 4)
        with pytest.raises(ConfigurationError):
            BlockInterleaver(4, 0)
