"""Unit tests for the service's durable primitives.

Covers the job state machine (:mod:`repro.service.models`), the durable
queue's persistence/recovery/admission (:mod:`repro.service.queue`) and
the checksummed stores with quarantine-on-corruption
(:mod:`repro.service.store`) — all without a running service.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import ConfigurationError, JobNotFoundError, QueueFullError
from repro.link.design import OpticalLinkDesigner
from repro.coding.registry import get_code
from repro.obs import metrics as obs_metrics
from repro.service.models import Job, JobState, job_checksum
from repro.service.queue import DurableJobQueue
from repro.service.store import PersistentDesignCache, ResultsStore


def _job(job_id: str = "a" * 16, **overrides) -> Job:
    defaults = dict(job_id=job_id, experiment="table1", options=None)
    defaults.update(overrides)
    return Job(**defaults)


class TestJobStateMachine:
    def test_happy_path_transitions(self):
        job = _job()
        job = job.transitioned(JobState.RUNNING)
        job = job.transitioned(JobState.DONE)
        assert job.terminal

    def test_retry_cycle_charges_attempts(self):
        job = _job().transitioned(JobState.RUNNING)
        job = job.transitioned(JobState.FAILED, error="boom", charge_attempt=True)
        assert job.attempts == 1 and job.error == "boom"
        job = job.transitioned(JobState.QUEUED, not_before_s=123.0)
        assert job.not_before_s == 123.0 and job.attempts == 1

    def test_deterministic_failures_counted_separately(self):
        job = _job().transitioned(JobState.RUNNING)
        job = job.transitioned(JobState.FAILED, charge_deterministic=True)
        assert job.deterministic_failures == 1 and job.attempts == 0

    @pytest.mark.parametrize(
        "start,target",
        [
            (JobState.QUEUED, JobState.DONE),  # must pass through running
            (JobState.DONE, JobState.RUNNING),  # terminal
            (JobState.DEAD, JobState.QUEUED),  # terminal (requeued() only)
            (JobState.FAILED, JobState.DONE),
        ],
    )
    def test_illegal_transitions_raise(self, start, target):
        job = _job(state=start)
        with pytest.raises(ConfigurationError):
            job.transitioned(target)

    def test_unknown_state_rejected(self):
        with pytest.raises(ConfigurationError):
            _job().transitioned("zombie")
        with pytest.raises(ConfigurationError):
            Job.from_dict({**_job().to_dict(), "state": "zombie"})

    def test_requeued_resets_retry_counters(self):
        job = _job(state=JobState.DONE, attempts=2, deterministic_failures=1, error="x")
        fresh = job.requeued()
        assert fresh.state == JobState.QUEUED
        assert fresh.attempts == 0 and fresh.deterministic_failures == 0
        assert fresh.error is None and fresh.not_before_s == 0.0

    def test_roundtrip_and_checksum_stability(self):
        job = _job(options={"b": 2, "a": 1})
        data = job.to_dict()
        assert Job.from_dict(data) == job
        # canonical JSON: key order must not matter
        assert job_checksum(data) == job_checksum(json.loads(json.dumps(data)))


class TestDurableJobQueue:
    def test_submit_is_idempotent(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        job, created = queue.submit(_job())
        assert created
        again, created = queue.submit(_job())
        assert not created and again.job_id == job.job_id

    def test_full_queue_rejects_with_backpressure_hint(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path), max_depth=2)
        queue.submit(_job("a" * 16))
        queue.submit(_job("b" * 16))
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(_job("c" * 16))
        assert excinfo.value.depth == 2
        assert excinfo.value.retry_after_s >= 1.0
        # terminal jobs free capacity
        queue.transition("a" * 16, JobState.RUNNING)
        queue.transition("a" * 16, JobState.DONE)
        queue.submit(_job("c" * 16))

    def test_claim_order_and_backoff_eligibility(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        first = _job("a" * 16, created_s=1.0)
        second = _job("b" * 16, created_s=2.0, not_before_s=100.0)
        queue.submit(second)
        queue.submit(first)
        claimed = queue.claim_next(now_s=50.0)
        assert claimed.job_id == first.job_id and claimed.state == JobState.RUNNING
        # second is backoff-pending at t=50 but eligible at t=150
        assert queue.claim_next(now_s=50.0) is None
        assert queue.next_retry_delay_s(now_s=50.0) == pytest.approx(50.0)
        assert queue.claim_next(now_s=150.0).job_id == second.job_id

    def test_restart_recovers_interrupted_jobs(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(_job("a" * 16))
        queue.transition("a" * 16, JobState.RUNNING)
        queue.submit(_job("b" * 16))
        queue.transition("b" * 16, JobState.RUNNING)
        queue.transition("b" * 16, JobState.FAILED, error="x", charge_attempt=True)
        queue.submit(_job("c" * 16))
        queue.transition("c" * 16, JobState.RUNNING)
        queue.transition("c" * 16, JobState.DONE)

        # __init__ recovers the spool: interrupted jobs come back queued
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.get("a" * 16).state == JobState.QUEUED
        assert reborn.get("b" * 16).state == JobState.QUEUED
        assert reborn.get("b" * 16).attempts == 1  # history survives recovery
        assert reborn.get("c" * 16).state == JobState.DONE

    def test_damaged_records_are_quarantined_on_recovery(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(_job("a" * 16))
        queue.submit(_job("b" * 16))
        garbage = tmp_path / ("a" * 16 + ".json")
        garbage.write_text("{not json", encoding="utf-8")
        # valid JSON but checksum mismatch
        tampered = tmp_path / ("b" * 16 + ".json")
        document = json.loads(tampered.read_text(encoding="utf-8"))
        document["job"]["experiment"] = "tampered"
        tampered.write_text(json.dumps(document), encoding="utf-8")

        reborn = DurableJobQueue(str(tmp_path))
        with pytest.raises(JobNotFoundError):
            reborn.get("a" * 16)
        with pytest.raises(JobNotFoundError):
            reborn.get("b" * 16)
        assert (tmp_path / ("a" * 16 + ".json.corrupt")).exists()
        assert (tmp_path / ("b" * 16 + ".json.corrupt")).exists()

    def test_counts_are_zero_filled(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        assert queue.counts() == {state: 0 for state in JobState.ALL}
        queue.submit(_job())
        assert queue.counts()[JobState.QUEUED] == 1


class TestResultsStore:
    def test_roundtrip(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        payload = {"text": "report", "rows": [{"a": 1}]}
        store.put("f" * 16, payload)
        assert store.get("f" * 16) == payload
        assert ("f" * 16) in store

    def test_miss_is_none(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        assert store.get("0" * 16) is None

    def test_bad_fingerprint_rejected(self, tmp_path):
        store = ResultsStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.path("../../etc/passwd")
        with pytest.raises(ValueError):
            store.path("UPPER")

    @pytest.mark.parametrize(
        "damage",
        [
            lambda text: text[: len(text) // 2],  # truncation
            lambda text: "garbage not json",
            lambda text: text.replace('"payload"', '"hijacked"'),
        ],
    )
    def test_damage_quarantined_and_reported_as_miss(self, tmp_path, damage):
        store = ResultsStore(str(tmp_path))
        path = store.put("f" * 16, {"text": "report", "rows": []})
        original = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(damage(original))
        assert store.get("f" * 16) is None
        assert os.path.exists(path + ".corrupt")
        assert not os.path.exists(path)


class TestPersistentDesignCache:
    def test_survives_restart(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        designer = OpticalLinkDesigner(persistent_cache=PersistentDesignCache(path))
        code = get_code("h(7,4)")
        point = designer.design_point(code, 1e-12)

        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.collecting(registry):
            fresh = OpticalLinkDesigner(persistent_cache=PersistentDesignCache(path))
            assert fresh.design_point(code, 1e-12) == point
        counters = registry.snapshot()["counters"]
        assert counters.get("link.design_point.persistent_hits") == 1
        assert "link.design_point.cache_misses" not in counters

    def test_damaged_line_salvages_the_rest(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = PersistentDesignCache(path)
        designer = OpticalLinkDesigner(persistent_cache=cache)
        good = designer.design_point(get_code("h(7,4)"), 1e-12)
        designer.design_point(get_code("secded(72,64)"), 1e-12)

        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(lines[0] + "\n")
            handle.write(lines[1][: len(lines[1]) // 2] + "\n")  # torn append

        salvaged = PersistentDesignCache(path)
        assert len(salvaged) == 1
        assert os.path.exists(path + ".corrupt")
        code = get_code("h(7,4)")
        key = (code.name, code.n, code.k, 1e-12)
        assert salvaged.load(key) == good
        # the rewritten file is clean: reloading quarantines nothing further
        assert len(PersistentDesignCache(path)) == 1

    def test_schema_drift_is_a_miss_not_a_crash(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = PersistentDesignCache(path)
        designer = OpticalLinkDesigner(persistent_cache=cache)
        designer.design_point(get_code("h(7,4)"), 1e-12)
        record = json.loads(open(path, encoding="utf-8").readline())
        del record["point"]["code_rate"]  # pretend an old release wrote this
        from repro.service.store import _payload_checksum

        record["checksum"] = _payload_checksum(
            {"key": record["key"], "point": record["point"]}
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        code = get_code("h(7,4)")
        drifted = PersistentDesignCache(path)
        assert drifted.load((code.name, code.n, code.k, 1e-12)) is None
