"""Tests for channel power, energy-per-bit and interconnect aggregation."""

from __future__ import annotations

import pytest

from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.coding.uncoded import UncodedScheme
from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError
from repro.power.channel import channel_power_breakdown
from repro.power.energy import communication_time, energy_metrics
from repro.power.interconnect import (
    interconnect_power_saving_w,
    interconnect_power_summary,
)


@pytest.fixture(scope="module")
def breakdowns(designer=None):
    from repro.link.design import OpticalLinkDesigner
    from repro.interfaces.synthesis import synthesize_interfaces

    designer = OpticalLinkDesigner()
    synthesis = synthesize_interfaces()
    codes = [UncodedScheme(64), ShortenedHammingCode(64), HammingCode(3)]
    return {
        code.name: channel_power_breakdown(
            code, 1e-11, designer=designer, synthesis=synthesis
        )
        for code in codes
    }


class TestChannelPowerBreakdown:
    def test_total_is_the_sum_of_contributions(self, breakdowns):
        for breakdown in breakdowns.values():
            assert breakdown.total_power_w == pytest.approx(
                breakdown.laser_power_w + breakdown.modulator_power_w + breakdown.interface_power_w
            )

    def test_modulator_power_matches_the_paper(self, breakdowns):
        for breakdown in breakdowns.values():
            assert breakdown.modulator_power_w == pytest.approx(1.36e-3)

    def test_laser_dominates_the_uncoded_channel(self, breakdowns):
        assert breakdowns["w/o ECC"].laser_share == pytest.approx(0.92, abs=0.02)

    def test_interface_power_is_negligible(self, breakdowns):
        for breakdown in breakdowns.values():
            assert breakdown.interface_power_w < 0.01 * breakdown.total_power_w

    def test_coded_channels_cut_total_power_roughly_in_half(self, breakdowns):
        baseline = breakdowns["w/o ECC"].total_power_w
        assert 1 - breakdowns["H(71,64)"].total_power_w / baseline == pytest.approx(0.48, abs=0.08)
        assert 1 - breakdowns["H(7,4)"].total_power_w / baseline == pytest.approx(0.52, abs=0.08)

    def test_per_waveguide_power_matches_paper_scale(self, breakdowns):
        per_waveguide_uncoded = breakdowns["w/o ECC"].total_power_mw * 16
        per_waveguide_h71 = breakdowns["H(71,64)"].total_power_mw * 16
        assert per_waveguide_uncoded == pytest.approx(251.0, rel=0.10)
        assert per_waveguide_h71 == pytest.approx(136.0, rel=0.10)

    def test_as_dict_round_trips_key_quantities(self, breakdowns):
        entry = breakdowns["H(7,4)"].as_dict()
        assert entry["code"] == "H(7,4)"
        assert entry["total_mw"] == pytest.approx(breakdowns["H(7,4)"].total_power_mw)

    def test_unknown_code_falls_back_to_parametric_interface(self):
        # A code outside the Table I set still gets a power figure.
        breakdown = channel_power_breakdown(HammingCode(4), 1e-9)
        assert breakdown.total_power_w > 0


class TestEnergyMetrics:
    def test_communication_time_values(self):
        assert communication_time(UncodedScheme(64)) == pytest.approx(1.0)
        assert communication_time(HammingCode(3)) == pytest.approx(1.75)
        assert communication_time(ShortenedHammingCode(64)) == pytest.approx(71 / 64)

    def test_modulation_referenced_energy(self, breakdowns):
        metrics = energy_metrics(breakdowns["w/o ECC"])
        expected = breakdowns["w/o ECC"].total_power_w / 10e9
        assert metrics.energy_per_bit_modulation_j == pytest.approx(expected)

    def test_ip_referenced_energy_reproduces_paper_uncoded_value(self, breakdowns):
        metrics = energy_metrics(breakdowns["w/o ECC"])
        assert metrics.energy_per_bit_ip_pj == pytest.approx(3.92, rel=0.10)

    def test_h71_is_the_most_energy_efficient_scheme(self, breakdowns):
        energies = {
            name: energy_metrics(b).energy_per_bit_modulation_j for name, b in breakdowns.items()
        }
        assert energies["H(71,64)"] == min(energies.values())

    def test_transfer_time_for_word(self, breakdowns):
        metrics = energy_metrics(breakdowns["H(7,4)"])
        # 64 bits * 1.75 / (16 wavelengths * 10 Gb/s) = 0.7 ns.
        assert metrics.transfer_time_for_word_s == pytest.approx(0.7e-9)

    def test_as_dict_contains_both_accountings(self, breakdowns):
        entry = energy_metrics(breakdowns["H(71,64)"]).as_dict()
        assert "energy_per_bit_modulation_pj" in entry
        assert "energy_per_bit_ip_pj" in entry

    def test_communication_time_validation(self):
        class BogusCode:
            communication_time_overhead = 0.5

        with pytest.raises(ConfigurationError):
            communication_time(BogusCode())


class TestInterconnectAggregation:
    def test_per_waveguide_and_channel_scaling(self, breakdowns):
        summary = interconnect_power_summary(breakdowns["w/o ECC"])
        assert summary.per_waveguide_power_w == pytest.approx(
            summary.per_wavelength_power_w * 16
        )
        assert summary.per_channel_power_w == pytest.approx(
            summary.per_waveguide_power_w * 16
        )
        assert summary.total_power_w == pytest.approx(summary.per_channel_power_w * 12)

    def test_total_saving_matches_the_paper_scale(self, breakdowns):
        baseline = interconnect_power_summary(breakdowns["w/o ECC"])
        improved = interconnect_power_summary(breakdowns["H(71,64)"])
        saving = interconnect_power_saving_w(baseline, improved)
        assert saving == pytest.approx(22.0, rel=0.25)

    def test_saving_requires_identical_geometry(self, breakdowns):
        baseline = interconnect_power_summary(breakdowns["w/o ECC"])
        other_config = DEFAULT_CONFIG.with_overrides(num_onis=16)
        improved = interconnect_power_summary(breakdowns["H(71,64)"], config=other_config)
        with pytest.raises(ConfigurationError):
            interconnect_power_saving_w(baseline, improved)

    def test_as_dict(self, breakdowns):
        entry = interconnect_power_summary(breakdowns["H(7,4)"]).as_dict()
        assert entry["code"] == "H(7,4)"
        assert entry["total_w"] > 0
