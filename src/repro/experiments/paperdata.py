"""Reference values reported by the paper, used for comparison only.

Nothing in the library *reads* these numbers to produce its results; they
exist so the experiment reports and EXPERIMENTS.md can place the reproduced
values next to the published ones and quantify the deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_LASER_POWER_MW_AT_1E11",
    "PAPER_CHANNEL_POWER_PER_WAVEGUIDE_MW",
    "PAPER_ENERGY_PER_BIT_PJ",
    "PAPER_COMMUNICATION_TIME",
    "PAPER_LASER_SHARE_UNCODED",
    "PAPER_TOTAL_SAVING_W",
    "PAPER_TABLE1_TOTALS_UW",
    "PAPER_TABLE1_AREA_UM2",
    "PAPER_MAX_LASER_OUTPUT_UW",
    "PAPER_MODULATOR_POWER_MW",
    "PAPER_EXTINCTION_RATIO_DB",
    "relative_error",
    "Comparison",
]

#: Figure 5 at BER = 1e-11: electrical laser power per wavelength (mW).
PAPER_LASER_POWER_MW_AT_1E11 = {
    "w/o ECC": 14.35,
    "H(71,64)": 7.12,
    "H(7,4)": 6.64,
}

#: Figure 5 at BER = 1e-12: only the coded schemes are feasible (mW).
PAPER_LASER_POWER_MW_AT_1E12 = {
    "H(71,64)": 7.1,
    "H(7,4)": 7.6,
}

#: Section V-C: per-waveguide channel power (16 wavelengths), in mW.
PAPER_CHANNEL_POWER_PER_WAVEGUIDE_MW = {
    "w/o ECC": 251.0,
    "H(71,64)": 136.0,
}

#: Section V-C: energy per bit at BER = 1e-11, in pJ/bit.
PAPER_ENERGY_PER_BIT_PJ = {
    "w/o ECC": 3.92,
    "H(71,64)": 3.76,
    "H(7,4)": 5.58,
}

#: Section IV-D / Figure 6: communication-time overhead per scheme.
PAPER_COMMUNICATION_TIME = {
    "w/o ECC": 1.0,
    "H(71,64)": 71.0 / 64.0,
    "H(7,4)": 1.75,
}

#: Section V-C: share of the channel power drawn by the lasers without ECC.
PAPER_LASER_SHARE_UNCODED = 0.92

#: Section V-C: total interconnect power saving with H(71,64), in watts.
PAPER_TOTAL_SAVING_W = 22.0

#: Section V-B: maximum optical power deliverable by the laser, in microwatts.
PAPER_MAX_LASER_OUTPUT_UW = 700.0

#: Section IV-D: modulator power per wavelength, in milliwatts.
PAPER_MODULATOR_POWER_MW = 1.36

#: Section IV-D: modulator extinction ratio, in dB.
PAPER_EXTINCTION_RATIO_DB = 6.9

#: Table I: per-mode total power (dynamic ~ total) of each interface side, uW.
PAPER_TABLE1_TOTALS_UW = {
    ("transmitter", "H(7,4)"): 9.59,
    ("transmitter", "H(71,64)"): 6.01,
    ("transmitter", "w/o ECC"): 3.18,
    ("receiver", "H(7,4)"): 10.1,
    ("receiver", "H(71,64)"): 7.23,
    ("receiver", "w/o ECC"): 4.32,
}

#: Table I: total area of each interface side, um^2.
PAPER_TABLE1_AREA_UM2 = {
    "transmitter": 2013.0,
    "receiver": 3050.0,
}


def relative_error(measured: float, reference: float) -> float:
    """Signed relative error of a measured value against the paper's value."""
    if reference == 0:
        raise ZeroDivisionError("reference value is zero; relative error undefined")
    return (measured - reference) / reference


@dataclass(frozen=True)
class Comparison:
    """A single measured-vs-paper comparison entry."""

    quantity: str
    measured: float
    reference: float
    unit: str = ""

    @property
    def relative_error(self) -> float:
        """Signed relative deviation from the paper's value."""
        return relative_error(self.measured, self.reference)

    def render(self) -> str:
        """One-line textual rendering of the comparison."""
        return (
            f"{self.quantity:<45s} measured={self.measured:10.3f} {self.unit:<5s} "
            f"paper={self.reference:10.3f} {self.unit:<5s} "
            f"({self.relative_error * 100.0:+.1f}%)"
        )
