"""Selection policies of the link energy/performance manager.

A policy looks at the candidate configurations (one per available coding
scheme, each already solved into a channel-power breakdown) and picks the
one best matching the request.  The paper motivates two application classes:
real-time traffic with deadlines (favour low communication time) and
throughput/multimedia traffic where energy matters more (favour low power or
low energy per bit, possibly degrading the BER); the policies below cover
both plus a laser-power-budget variant for thermally constrained scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError, InfeasibleDesignError
from ..power.channel import ChannelPowerBreakdown
from ..power.energy import energy_metrics

__all__ = [
    "ConfigurationDecision",
    "SelectionPolicy",
    "MinimumPowerPolicy",
    "MinimumEnergyPolicy",
    "DeadlineConstrainedPolicy",
    "LaserBudgetPolicy",
    "margin_levels",
    "FailureRateMonitor",
    "HysteresisSwitchingPolicy",
    "DegradationAction",
    "DegradationLadder",
]


@dataclass(frozen=True)
class ConfigurationDecision:
    """The configuration a policy selected, with its justification."""

    breakdown: ChannelPowerBreakdown
    policy_name: str
    reason: str

    @property
    def code_name(self) -> str:
        """Selected coding scheme."""
        return self.breakdown.code_name

    @property
    def channel_power_w(self) -> float:
        """Per-wavelength channel power of the selected configuration."""
        return self.breakdown.total_power_w

    @property
    def communication_time(self) -> float:
        """Communication-time overhead of the selected configuration."""
        return self.breakdown.communication_time


class SelectionPolicy(Protocol):
    """Protocol implemented by every selection policy."""

    name: str

    def select(
        self, candidates: Sequence[ChannelPowerBreakdown], *, config: PaperConfig
    ) -> ConfigurationDecision:
        """Pick one candidate; raise InfeasibleDesignError if none qualifies."""
        ...


def _feasible(candidates: Sequence[ChannelPowerBreakdown]) -> list[ChannelPowerBreakdown]:
    feasible = [c for c in candidates if c.feasible]
    if not feasible:
        raise InfeasibleDesignError("no candidate configuration is feasible for this request")
    return feasible


@dataclass
class MinimumPowerPolicy:
    """Pick the feasible configuration with the lowest channel power."""

    name: str = "min-power"

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the candidate minimising per-wavelength channel power."""
        best = min(_feasible(candidates), key=lambda c: c.total_power_w)
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=f"lowest channel power ({best.total_power_mw:.2f} mW per wavelength)",
        )


@dataclass
class MinimumEnergyPolicy:
    """Pick the feasible configuration with the lowest energy per useful bit."""

    name: str = "min-energy"
    ip_referenced: bool = False

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the candidate minimising energy per bit."""

        def energy(c: ChannelPowerBreakdown) -> float:
            metrics = energy_metrics(c, config=config)
            return (
                metrics.energy_per_bit_ip_j
                if self.ip_referenced
                else metrics.energy_per_bit_modulation_j
            )

        best = min(_feasible(candidates), key=energy)
        picked_energy = energy(best) * 1e12
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=f"lowest energy per bit ({picked_energy:.2f} pJ/bit)",
        )


@dataclass
class DeadlineConstrainedPolicy:
    """Lowest-power configuration whose communication time meets a deadline.

    The deadline is expressed as the maximum tolerable communication-time
    overhead (e.g. 1.2 means "at most 20% slower than an uncoded transfer"),
    which is how the paper frames real-time constraints.
    """

    max_communication_time: float
    name: str = "deadline"

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the lowest-power candidate within the deadline."""
        feasible = _feasible(candidates)
        within = [c for c in feasible if c.communication_time <= self.max_communication_time]
        if not within:
            raise InfeasibleDesignError(
                f"no configuration meets the communication-time bound {self.max_communication_time:.2f}"
            )
        best = min(within, key=lambda c: c.total_power_w)
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=(
                f"lowest power among CT <= {self.max_communication_time:.2f} "
                f"({best.total_power_mw:.2f} mW, CT = {best.communication_time:.2f})"
            ),
        )


# ------------------------------------------------------------------ adaptation
def margin_levels(worst_case_multiplier: float, *, ratio: float = 2.0) -> list[float]:
    """Geometric ladder of drift margins from nominal to the worst case.

    The online controller switches the link between these margin levels: a
    configuration provisioned for margin ``m`` keeps the post-decoding BER at
    or below target while the channel's raw BER is degraded by up to ``m``.
    The ladder always starts at ``1.0`` (today's static design) and ends at
    exactly ``worst_case_multiplier`` (the static worst-case design).
    """
    if worst_case_multiplier < 1.0:
        raise ConfigurationError("worst-case multiplier must be at least 1")
    if ratio <= 1.0:
        raise ConfigurationError("margin ladder ratio must exceed 1")
    levels = [1.0]
    while levels[-1] * ratio < worst_case_multiplier:
        levels.append(levels[-1] * ratio)
    if levels[-1] < worst_case_multiplier:
        levels.append(float(worst_case_multiplier))
    return levels


@dataclass
class FailureRateMonitor:
    """Windowed packet-failure monitor estimating the channel's BER drift.

    The receiver-visible failure telemetry of every transmission attempt —
    ECC blocks the decoder had to correct plus CRC-detected packet failures —
    is accumulated against the number expected at the configuration's design
    raw BER; once a window's worth of blocks has been observed, the
    observed/expected ratio is emitted as the estimated raw-BER drift
    multiplier (disturb probabilities are linear in the raw BER at the
    operating points the links design for).  One monitor watches one channel.
    """

    window_blocks: int = 4096
    _blocks: int = 0
    _observed: float = 0.0
    _expected: float = 0.0

    def __post_init__(self) -> None:
        if self.window_blocks < 1:
            raise ConfigurationError("monitor window must cover at least one block")

    def observe(
        self, blocks: int, observed_events: float, expected_events: float
    ) -> float | None:
        """Feed one attempt's telemetry; returns the drift estimate at window end."""
        if blocks < 0 or observed_events < 0 or expected_events < 0:
            raise ConfigurationError("monitor observations cannot be negative")
        self._blocks += int(blocks)
        self._observed += float(observed_events)
        self._expected += float(expected_events)
        if self._blocks < self.window_blocks:
            return None
        # A window with no expected events carries no information: report the
        # neutral estimate 1.0 (never triggers an upgrade or a downgrade).
        # Otherwise the raw ratio is returned unclamped — estimates *below* 1
        # are exactly what lets the controller step back down to level 0 once
        # a drifted channel returns to nominal.
        estimate = self._observed / self._expected if self._expected > 0.0 else 1.0
        self._blocks = 0
        self._observed = 0.0
        self._expected = 0.0
        return estimate

    def reset(self) -> None:
        """Forget the partial window (start of a new simulation run)."""
        self._blocks = 0
        self._observed = 0.0
        self._expected = 0.0


@dataclass
class HysteresisSwitchingPolicy:
    """Hysteresis rule mapping drift estimates to margin-level moves.

    Upgrades are eager — one window estimating the drift above
    ``upgrade_headroom`` times the current margin steps the level up (the
    channel has outgrown the provisioned headroom and the link is about to
    miss its BER target).  Downgrades are conservative — the estimate must
    stay below ``downgrade_fraction`` of the *lower* level's margin for
    ``hold_windows`` consecutive windows before stepping down.  The deadband
    between ``downgrade_fraction * margins[level-1]`` and
    ``upgrade_headroom * margins[level]`` is what keeps the controller from
    oscillating on monitor noise: a nominal channel (estimate ~ 1) sits
    strictly below the level-0 upgrade threshold.
    """

    upgrade_headroom: float = 1.2
    downgrade_fraction: float = 0.6
    hold_windows: int = 2

    def __post_init__(self) -> None:
        if self.upgrade_headroom <= 1.0:
            raise ConfigurationError(
                "upgrade headroom must exceed 1 (a nominal channel must not trigger)"
            )
        if not 0.0 < self.downgrade_fraction <= 1.0:
            raise ConfigurationError("downgrade fraction must lie in (0, 1]")
        if self.hold_windows < 1:
            raise ConfigurationError("downgrades need at least one calm window")

    def qualifies_for_downgrade(
        self, estimated_multiplier: float, margins: Sequence[float], level: int
    ) -> bool:
        """Whether one window's estimate counts towards a downgrade streak."""
        return level > 0 and estimated_multiplier < (
            self.downgrade_fraction * margins[level - 1]
        )

    def decide(
        self,
        estimated_multiplier: float,
        margins: Sequence[float],
        level: int,
        calm_windows: int,
    ) -> int:
        """Level delta (-1, 0, +1) for one window's drift estimate.

        ``calm_windows`` counts how many consecutive windows (excluding this
        one) that already qualified for a downgrade.
        """
        if not 0 <= level < len(margins):
            raise ConfigurationError("current level outside the margin ladder")
        if level + 1 < len(margins) and estimated_multiplier > (
            self.upgrade_headroom * margins[level]
        ):
            return 1
        if self.qualifies_for_downgrade(estimated_multiplier, margins, level):
            if calm_windows + 1 >= self.hold_windows:
                return -1
        return 0


# ------------------------------------------------------------------ degradation
@dataclass(frozen=True)
class DegradationAction:
    """What the degradation ladder decided for one transfer.

    ``rung`` names the most severe measure applied: ``"nominal"`` (healthy
    channel, no measure), ``"remap"`` (traffic remapped onto the surviving
    wavelengths), ``"margin"`` (ECC margin escalated to absorb a raw-BER
    penalty), ``"derate"`` (data rate lowered on top of the full margin),
    ``"blackout"`` (channel temporarily dark — the engine defers and
    retries) or ``"down"`` (channel declared down, the transfer is dropped).
    """

    serve: bool
    margin_multiplier: float = 1.0
    wavelengths: int = 0
    derate_factor: float = 1.0
    rung: str = "nominal"


@dataclass
class DegradationLadder:
    """Graceful-degradation policy mapping hard-fault health to an action.

    The ladder reacts to a channel's hard-fault condition
    (:class:`~repro.netsim.failures.ChannelHealth`) with the mildest measure
    that keeps the BER contract, escalating in order:

    1. **remap** — stuck rings took wavelengths away: serialise over the
       survivors (slower, but the BER contract holds untouched).
    2. **escalate ECC margin** — a laser-droop raw-BER penalty is absorbed
       by provisioning the smallest margin level covering it (the same
       ladder the adaptive controller switches on).
    3. **derate the data rate** — the penalty exceeds the top margin level:
       halve the rate (each halving buys a 2x raw-BER allowance from the
       energy-per-bit gain) until the remaining penalty fits under the top
       margin.
    4. **declare the channel down** — hard-failed, below the minimum viable
       wavelength count, or the derate cap is exhausted: refuse the
       transfer instead of burning energy on a dead lane.

    A transient blackout is *not* a rung: the ladder reports
    ``rung="blackout"`` with ``serve=True`` and the engine defers the
    attempt with backoff until the window passes (or the retry budget and
    timeout drop it).
    """

    margins: Sequence[float]
    num_wavelengths: int
    min_wavelengths: int = 1
    max_derate_factor: float = 8.0

    def __post_init__(self) -> None:
        margins = [float(margin) for margin in self.margins]
        if not margins or any(m < 1.0 for m in margins):
            raise ConfigurationError("the margin ladder needs levels >= 1")
        if sorted(margins) != margins or len(set(margins)) != len(margins):
            raise ConfigurationError("margin levels must be strictly increasing")
        if self.num_wavelengths < 1:
            raise ConfigurationError("the ladder needs at least one wavelength")
        if not 1 <= self.min_wavelengths <= self.num_wavelengths:
            raise ConfigurationError(
                "minimum viable wavelengths must lie in [1, num_wavelengths]"
            )
        if self.max_derate_factor < 1.0:
            raise ConfigurationError("the derate cap must be at least 1")
        self.margins = margins

    @property
    def top_margin(self) -> float:
        """Largest margin level the ladder can provision."""
        return self.margins[-1]

    def action_for(self, health) -> DegradationAction:
        """The mildest sufficient measure for one channel's health."""
        if health.failed or health.wavelengths_available < self.min_wavelengths:
            return DegradationAction(serve=False, rung="down")
        wavelengths = int(health.wavelengths_available)
        penalty = float(health.ber_penalty_multiplier)
        derate = 1.0
        while penalty / derate > self.top_margin * (1.0 + 1e-12):
            derate *= 2.0
            if derate > self.max_derate_factor:
                return DegradationAction(serve=False, rung="down")
        margin = next(
            (level for level in self.margins if level >= penalty / derate),
            self.top_margin,
        )
        if health.blacked_out:
            rung = "blackout"
        elif derate > 1.0:
            rung = "derate"
        elif margin > 1.0:
            rung = "margin"
        elif wavelengths < self.num_wavelengths:
            rung = "remap"
        else:
            rung = "nominal"
        return DegradationAction(
            serve=True,
            margin_multiplier=margin,
            wavelengths=wavelengths,
            derate_factor=derate,
            rung=rung,
        )


@dataclass
class LaserBudgetPolicy:
    """Fastest configuration whose laser power fits a per-wavelength budget.

    Useful for hot-spot management: the budget caps the laser electrical
    power (thermal headroom), and within it the policy favours performance.
    """

    max_laser_power_w: float
    name: str = "laser-budget"

    def select(
        self,
        candidates: Sequence[ChannelPowerBreakdown],
        *,
        config: PaperConfig = DEFAULT_CONFIG,
    ) -> ConfigurationDecision:
        """Select the fastest candidate under the laser power budget."""
        feasible = _feasible(candidates)
        within = [c for c in feasible if c.laser_power_w <= self.max_laser_power_w]
        if not within:
            raise InfeasibleDesignError(
                f"no configuration keeps the laser under {self.max_laser_power_w * 1e3:.2f} mW"
            )
        best = min(within, key=lambda c: (c.communication_time, c.total_power_w))
        return ConfigurationDecision(
            breakdown=best,
            policy_name=self.name,
            reason=(
                f"fastest scheme with P_laser <= {self.max_laser_power_w * 1e3:.2f} mW "
                f"(CT = {best.communication_time:.2f})"
            ),
        )
