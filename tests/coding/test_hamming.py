"""Tests for Hamming and shortened Hamming codes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.hamming import (
    HammingCode,
    ShortenedHammingCode,
    hamming_parameters_for_message_length,
)
from repro.exceptions import CodewordLengthError, ConfigurationError


class TestHammingParameters:
    def test_h74(self):
        code = HammingCode(3)
        assert (code.n, code.k) == (7, 4)
        assert code.num_parity_bits == 3
        assert code.minimum_distance == 3
        assert code.correctable_errors == 1
        assert code.name == "H(7,4)"

    def test_h1511(self):
        code = HammingCode(4)
        assert (code.n, code.k) == (15, 11)

    def test_h6357(self):
        code = HammingCode(6)
        assert (code.n, code.k) == (63, 57)

    def test_code_rate_and_ct(self):
        code = HammingCode(3)
        assert code.code_rate == pytest.approx(4.0 / 7.0)
        assert code.communication_time_overhead == pytest.approx(1.75)

    def test_rejects_m_below_two(self):
        with pytest.raises(ConfigurationError):
            HammingCode(1)

    def test_generator_is_systematic(self):
        code = HammingCode(3)
        generator = code.generator_matrix
        assert np.array_equal(generator[:, :4], np.eye(4, dtype=np.uint8))

    def test_parity_check_annihilates_generator(self):
        code = HammingCode(4)
        product = (code.generator_matrix @ code.parity_check_matrix.T) % 2
        assert not product.any()


class TestHammingEncodingDecoding:
    def test_zero_message_maps_to_zero_codeword(self):
        code = HammingCode(3)
        assert not code.encode_block(np.zeros(4, dtype=np.uint8)).any()

    def test_round_trip_without_errors(self, rng):
        code = HammingCode(3)
        for _ in range(20):
            message = rng.integers(0, 2, size=4, dtype=np.uint8)
            result = code.decode_block(code.encode_block(message))
            assert np.array_equal(result.message_bits, message)
            assert not result.detected_error

    def test_corrects_every_single_bit_error(self, rng):
        code = HammingCode(3)
        message = rng.integers(0, 2, size=4, dtype=np.uint8)
        codeword = code.encode_block(message)
        for position in range(code.n):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode_block(corrupted)
            assert result.corrected
            assert np.array_equal(result.message_bits, message)
            assert np.array_equal(result.corrected_codeword, codeword)

    def test_double_errors_are_miscorrected_not_fixed(self, rng):
        # A distance-3 code cannot correct 2 errors; the decoder lands on a
        # different codeword (this is why Eq. 2 has the (n-1)p^2 behaviour).
        code = HammingCode(3)
        message = rng.integers(0, 2, size=4, dtype=np.uint8)
        codeword = code.encode_block(message)
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        corrupted[5] ^= 1
        result = code.decode_block(corrupted)
        assert result.detected_error
        assert not np.array_equal(result.corrected_codeword, codeword)
        assert code.is_codeword(result.corrected_codeword)

    def test_stream_encode_decode(self, rng):
        code = HammingCode(3)
        stream = rng.integers(0, 2, size=4 * 10, dtype=np.uint8)
        encoded = code.encode(stream)
        assert encoded.size == 7 * 10
        assert np.array_equal(code.decode(encoded), stream)

    def test_stream_length_validation(self):
        code = HammingCode(3)
        with pytest.raises(CodewordLengthError):
            code.encode(np.zeros(5, dtype=np.uint8))
        with pytest.raises(CodewordLengthError):
            code.decode(np.zeros(8, dtype=np.uint8))

    def test_block_length_validation(self):
        code = HammingCode(3)
        with pytest.raises(CodewordLengthError):
            code.encode_block(np.zeros(5, dtype=np.uint8))
        with pytest.raises(CodewordLengthError):
            code.decode_block(np.zeros(6, dtype=np.uint8))

    def test_all_codewords_have_weight_zero_or_at_least_three(self):
        code = HammingCode(3)
        weights = {int(cw.code_bits.sum()) for cw in code.codewords()}
        assert 1 not in weights
        assert 2 not in weights


class TestShortenedHamming:
    def test_h7164_parameters(self):
        code = ShortenedHammingCode(64)
        assert (code.n, code.k) == (71, 64)
        assert code.name == "H(71,64)"
        assert code.m == 7
        assert code.parent_parameters == (127, 120)
        assert code.communication_time_overhead == pytest.approx(71.0 / 64.0)

    def test_shortening_to_full_payload_matches_full_code_size(self):
        code = ShortenedHammingCode(57)
        assert (code.n, code.k) == (63, 57)

    def test_round_trip_and_single_error_correction(self, rng):
        code = ShortenedHammingCode(64)
        message = rng.integers(0, 2, size=64, dtype=np.uint8)
        codeword = code.encode_block(message)
        for position in rng.choice(code.n, size=12, replace=False):
            corrupted = codeword.copy()
            corrupted[position] ^= 1
            result = code.decode_block(corrupted)
            assert result.corrected
            assert np.array_equal(result.message_bits, message)

    def test_minimum_distance_is_still_three(self):
        # Shortening cannot decrease the distance; check a small shortened code
        # exhaustively.
        from repro.coding.matrices import minimum_distance_exhaustive

        code = ShortenedHammingCode(8)
        assert minimum_distance_exhaustive(code.generator_matrix) >= 3

    def test_rejects_non_positive_payload(self):
        with pytest.raises(ConfigurationError):
            ShortenedHammingCode(0)


class TestParameterHelper:
    def test_for_64_bits(self):
        assert hamming_parameters_for_message_length(64) == (7, 120)

    def test_for_4_bits(self):
        assert hamming_parameters_for_message_length(4) == (3, 4)

    def test_for_11_bits(self):
        assert hamming_parameters_for_message_length(11) == (4, 11)

    def test_for_boundary_values(self):
        assert hamming_parameters_for_message_length(1) == (2, 1)
        assert hamming_parameters_for_message_length(120) == (7, 120)
        assert hamming_parameters_for_message_length(121) == (8, 247)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            hamming_parameters_for_message_length(0)
