"""Binary BCH codes with configurable error-correction capability.

The paper chose Hamming codes "for their simplicity, but other coding
techniques can be used".  BCH codes are the natural next step: they keep the
same algebraic structure (cyclic, defined by a generator polynomial over
GF(2)) but correct ``t >= 2`` errors per block, allowing even lower laser
power at the cost of more parity bits and a more complex decoder.  They are
used by the extension experiments and the design-space sweeps.

The implementation constructs the generator polynomial as the least common
multiple of the minimal polynomials of ``alpha, alpha^2, ..., alpha^{2t}``
and decodes with the Berlekamp–Massey / Chien-search procedure, which is
adequate for the small ``t`` (2 or 3) relevant on-chip.

Batch decoding computes the ``2t`` power-sum syndromes of every block in
the batch at once through an antilog-table lookup matrix (``alpha^{j·i}``
precomputed as a NumPy array); only the rare blocks with a non-zero
syndrome fall back to the scalar Berlekamp–Massey + Chien path, so at the
low raw BERs the link designs operate at, the whole batch is effectively
decoded in array code.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .base import BatchDecodeResult, DecodeResult, LinearBlockCode
from .galois import GaloisField, get_field
from .matrices import as_gf2

__all__ = ["BCHCode"]

#: Blocks per chunk when evaluating batched syndromes; bounds the size of the
#: intermediate (chunk, 2t, n) product array.
_SYNDROME_CHUNK_BLOCKS = 4096


def _poly_mul_gf2(a: List[int], b: List[int]) -> List[int]:
    """Multiply two GF(2) polynomials given lowest-order-first."""
    result = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if not ca:
            continue
        for j, cb in enumerate(b):
            result[i + j] ^= ca & cb
    return result


def _poly_divmod_gf2(dividend: List[int], divisor: List[int]) -> tuple[List[int], List[int]]:
    """Polynomial division over GF(2); returns (quotient, remainder)."""
    if not any(divisor):
        # Without this guard an all-zero divisor degenerates the
        # trailing-zero strip loop to the zero polynomial and the division
        # silently produces garbage.
        raise ZeroDivisionError("polynomial division by the zero polynomial")
    remainder = list(dividend)
    deg_divisor = len(divisor) - 1
    while len(divisor) > 1 and divisor[-1] == 0:
        divisor = divisor[:-1]
        deg_divisor -= 1
    quotient = [0] * max(1, len(dividend) - deg_divisor)
    for shift in range(len(remainder) - 1, deg_divisor - 1, -1):
        if remainder[shift]:
            quotient[shift - deg_divisor] = 1
            for i, c in enumerate(divisor):
                remainder[shift - deg_divisor + i] ^= c
    while len(remainder) > 1 and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder


class BCHCode(LinearBlockCode):
    """Primitive binary BCH code of length ``2^m - 1`` correcting ``t`` errors."""

    def __init__(self, m: int, t: int):
        if t < 1:
            raise ConfigurationError("BCH correction capability t must be >= 1")
        field = get_field(m)
        n = field.order
        generator_poly = self._build_generator_polynomial(field, t)
        num_parity = len(generator_poly) - 1
        k = n - num_parity
        if k <= 0:
            raise ConfigurationError(
                f"BCH(m={m}, t={t}) has no payload bits (n={n}, parity={num_parity})"
            )
        generator_matrix = self._systematic_generator(generator_poly, n, k)
        super().__init__(
            generator_matrix,
            name=f"BCH({n},{k},t={t})",
            minimum_distance=2 * t + 1,
        )
        self._field = field
        self._t = t
        self._generator_poly = generator_poly
        self._syndrome_eval: np.ndarray | None = None

    # ------------------------------------------------------------------ construction
    @staticmethod
    def _build_generator_polynomial(field: GaloisField, t: int) -> List[int]:
        """LCM of the minimal polynomials of alpha^1 .. alpha^{2t}."""
        generator = [1]
        seen_roots: set[int] = set()
        for exponent in range(1, 2 * t + 1):
            element = field.alpha_power(exponent)
            if element in seen_roots:
                continue
            minimal = field.minimal_polynomial(element)
            # Record the conjugacy class so each minimal polynomial enters once.
            conjugate = element
            while conjugate not in seen_roots:
                seen_roots.add(conjugate)
                conjugate = field.multiply(conjugate, conjugate)
            generator = _poly_mul_gf2(generator, minimal)
        return generator

    @staticmethod
    def _systematic_generator(generator_poly: List[int], n: int, k: int) -> np.ndarray:
        """Systematic generator matrix of the cyclic code.

        Row ``i`` encodes the message monomial ``x^i``: the codeword is
        ``[message | parity]`` where parity is the remainder of
        ``x^{n-k} * x^i`` divided by the generator polynomial.
        """
        num_parity = n - k
        rows = np.zeros((k, n), dtype=np.uint8)
        for i in range(k):
            shifted = [0] * (num_parity + i) + [1]
            _, remainder = _poly_divmod_gf2(shifted, generator_poly)
            rows[i, i] = 1
            for degree, coefficient in enumerate(remainder):
                rows[i, k + degree] = coefficient
        return rows

    # ------------------------------------------------------------------ metadata
    @property
    def field(self) -> GaloisField:
        """The GF(2^m) field the code is defined over."""
        return self._field

    @property
    def t(self) -> int:
        """Designed error-correction capability."""
        return self._t

    @property
    def generator_polynomial(self) -> List[int]:
        """GF(2) generator polynomial, lowest-order coefficient first."""
        return list(self._generator_poly)

    # ------------------------------------------------------------------ decoding
    def _codeword_polynomial(self, received: np.ndarray) -> List[int]:
        """Map the systematic word [message | parity] onto the cyclic polynomial.

        The systematic encoder produced ``x^{n-k} m(x) + r(x)``; in our matrix
        layout the message occupies positions ``0..k-1`` and parity positions
        ``k..n-1``, so polynomial coefficient ``x^j`` is parity bit ``j`` for
        ``j < n-k`` and message bit ``j-(n-k)`` otherwise.
        """
        num_parity = self.n - self.k
        coefficients = [0] * self.n
        for j in range(num_parity):
            coefficients[j] = int(received[self.k + j])
        for i in range(self.k):
            coefficients[num_parity + i] = int(received[i])
        return coefficients

    def _syndrome_eval_matrix(self) -> np.ndarray:
        """``alpha^{j·i}`` evaluation matrix of shape ``(2t, n)``.

        Row ``j-1``, column ``i`` holds ``alpha^{j·i mod (2^m - 1)}``, so the
        power-sum syndrome ``S_j = r(alpha^j)`` of every block reduces to an
        XOR-reduction of the selected matrix entries.
        """
        if self._syndrome_eval is None:
            exponents = (
                np.outer(np.arange(1, 2 * self._t + 1), np.arange(self.n))
                % self._field.order
            )
            self._syndrome_eval = self._field.exp_table[exponents]
        return self._syndrome_eval

    def _batch_syndromes(self, blocks: np.ndarray) -> np.ndarray:
        """Power-sum syndromes ``S_1 .. S_2t`` for a whole ``(B, n)`` batch."""
        eval_matrix = self._syndrome_eval_matrix()
        out = np.zeros((blocks.shape[0], 2 * self._t), dtype=np.int64)
        for start in range(0, blocks.shape[0], _SYNDROME_CHUNK_BLOCKS):
            chunk = blocks[start : start + _SYNDROME_CHUNK_BLOCKS]
            # Permute [message | parity] into cyclic-polynomial coefficient
            # order (parity bits are the low-degree coefficients).
            poly = np.concatenate([chunk[:, self.k :], chunk[:, : self.k]], axis=1)
            terms = poly[:, np.newaxis, :].astype(np.int64) * eval_matrix[np.newaxis, :, :]
            out[start : start + chunk.shape[0]] = np.bitwise_xor.reduce(terms, axis=2)
        return out

    def decode_batch(self, received, *, strict: bool = False) -> BatchDecodeResult:
        """Batch algebraic decoding.

        The expensive part — the ``2t`` syndromes of every block — is
        computed for the whole batch with array lookups; only blocks whose
        syndrome vector is non-zero (rare at operating raw BERs) run the
        scalar Berlekamp–Massey + Chien correction.
        """
        blocks = self._require_blocks(received)
        syndromes = self._batch_syndromes(blocks)
        detected = syndromes.any(axis=1)
        corrected_words = blocks.copy()
        corrected = np.zeros(blocks.shape[0], dtype=bool)
        failure = np.zeros(blocks.shape[0], dtype=bool)
        for index in np.nonzero(detected)[0]:
            result = self._correct_with_syndromes(
                blocks[index], [int(s) for s in syndromes[index]], strict=strict
            )
            corrected_words[index] = result.corrected_codeword
            corrected[index] = result.corrected
            failure[index] = result.failure
        return BatchDecodeResult(
            message_bits=corrected_words[:, : self.k].copy(),
            corrected_codewords=corrected_words,
            detected_error=detected,
            corrected=corrected,
            failure=failure,
        )

    def _correct_with_syndromes(
        self, received: np.ndarray, syndromes: List[int], *, strict: bool
    ) -> DecodeResult:
        """Berlekamp–Massey + Chien correction of one block with known non-zero syndromes."""
        locator = self._berlekamp_massey(syndromes)
        error_positions = self._chien_search(locator)
        if error_positions is None or len(error_positions) != len(locator) - 1:
            if strict:
                from ..exceptions import DecodingFailure

                raise DecodingFailure(f"{self.name}: uncorrectable error pattern")
            return DecodeResult(
                message_bits=received[: self.k].copy(),
                corrected_codeword=received.copy(),
                detected_error=True,
                corrected=False,
                failure=True,
            )
        corrected = received.copy()
        num_parity = self.n - self.k
        for position in error_positions:
            # Polynomial coefficient `position` is parity bit `position` when
            # below n-k and message bit `position - (n-k)` otherwise.
            if position < num_parity:
                corrected[self.k + position] ^= 1
            else:
                corrected[position - num_parity] ^= 1
        return DecodeResult(
            message_bits=corrected[: self.k].copy(),
            corrected_codeword=corrected,
            detected_error=True,
            corrected=True,
        )

    def _decode_block_reference(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Scalar algebraic decoder (syndromes via Horner evaluation).

        The pre-batching reference path; used by the equivalence tests and
        as the correction engine behind :meth:`decode_batch` for errored
        blocks (with the syndromes computed in batch instead).
        """
        received = as_gf2(received_bits).ravel()
        if received.size != self.n:
            raise CodewordLengthError(
                f"{self.name}: expected a {self.n}-bit block, got {received.size} bits"
            )
        field = self._field
        poly = self._codeword_polynomial(received)
        syndromes = [
            field.poly_eval(poly, field.alpha_power(exponent))
            for exponent in range(1, 2 * self._t + 1)
        ]
        if not any(syndromes):
            return DecodeResult(
                message_bits=received[: self.k].copy(),
                corrected_codeword=received.copy(),
                detected_error=False,
                corrected=False,
            )
        return self._correct_with_syndromes(received, syndromes, strict=strict)

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Berlekamp–Massey over GF(2^m); returns the error-locator polynomial."""
        field = self._field
        locator = [1]
        previous = [1]
        length = 0
        shift = 1
        previous_discrepancy = 1
        for index, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for j in range(1, length + 1):
                if j < len(locator):
                    discrepancy ^= field.multiply(locator[j], syndromes[index - j])
            if discrepancy == 0:
                shift += 1
                continue
            coefficient = field.divide(discrepancy, previous_discrepancy)
            correction = [0] * shift + [field.multiply(coefficient, c) for c in previous]
            updated = list(locator) + [0] * max(0, len(correction) - len(locator))
            for j, value in enumerate(correction):
                updated[j] ^= value
            if 2 * length <= index:
                previous = list(locator)
                previous_discrepancy = discrepancy
                length = index + 1 - length
                shift = 1
            else:
                shift += 1
            locator = updated
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: List[int]) -> List[int] | None:
        """Find error positions as roots of the locator polynomial."""
        field = self._field
        degree = len(locator) - 1
        if degree == 0:
            return []
        if degree > self._t:
            return None
        positions = []
        for position in range(self.n):
            # The locator roots are alpha^{-i} for error positions i.
            x = field.alpha_power((-position) % field.order)
            if field.poly_eval(locator, x) == 0:
                positions.append(position)
        if len(positions) != degree:
            return None
        return positions
