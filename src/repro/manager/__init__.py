"""Optical Link Energy/Performance Manager (paper Section III-C).

The paper leaves the manager's implementation "out of scope" but describes
its job precisely: given a communication request with its requirements (BER
target, deadline/priority, power budget), pick the communication scheme
(with or without ECC, and which code) and the laser output power, then
configure both the source and destination interfaces.  This package
implements that decision layer:

* :mod:`repro.manager.pareto` — Pareto-front extraction over
  (communication time, channel power), the structure behind Figure 6b.
* :mod:`repro.manager.policies` — selection policies: minimum power,
  minimum energy per bit, deadline-constrained, and a laser-power-budget
  policy.
* :mod:`repro.manager.manager` — the runtime manager object handling
  configuration requests for the channels of an interconnect.
* :mod:`repro.manager.runtime` — a small discrete-time simulation where
  applications issue transfer requests against the manager.
"""

from .pareto import ParetoPoint, pareto_front, dominates
from .policies import (
    ConfigurationDecision,
    DeadlineConstrainedPolicy,
    LaserBudgetPolicy,
    MinimumEnergyPolicy,
    MinimumPowerPolicy,
    SelectionPolicy,
)
from .manager import CommunicationRequest, LinkConfiguration, OpticalLinkManager
from .runtime import RuntimeSimulation, TransferOutcome

__all__ = [
    "ParetoPoint",
    "pareto_front",
    "dominates",
    "ConfigurationDecision",
    "SelectionPolicy",
    "MinimumPowerPolicy",
    "MinimumEnergyPolicy",
    "DeadlineConstrainedPolicy",
    "LaserBudgetPolicy",
    "CommunicationRequest",
    "LinkConfiguration",
    "OpticalLinkManager",
    "RuntimeSimulation",
    "TransferOutcome",
]
