"""Durable job queue: one atomic, checksummed JSON file per job.

Durability model — each job lives at ``<spool>/<job_id>.json`` and every
state transition rewrites the file atomically (write-to-temp, rename), so
the on-disk queue is consistent after a crash at *any* instant.  On
startup :meth:`DurableJobQueue.recover` replays the spool directory:

* records that fail their checksum (truncation, bit flips, garbage) are
  quarantined to ``*.corrupt`` and forgotten — the job is simply gone,
  which is safe because submission is idempotent;
* jobs found ``running`` were interrupted mid-flight by the previous
  process's death: they are re-queued (their partial shard checkpoints
  remain on disk and the orchestrator's ``resume=True`` salvages them);
* ``failed`` jobs whose retry backoff was pending are re-queued too.

Submission is keyed by the sweep's grid fingerprint
(:attr:`repro.experiments.orchestrator.ExperimentGrid.fingerprint`):
submitting an identical request returns the existing job — a cache hit if
it is ``done``, a join onto the in-flight job otherwise.  Admission is
bounded: when ``queued + running + failed`` reaches ``max_depth`` new work
is rejected with :class:`~repro.exceptions.QueueFullError` carrying a
``Retry-After`` hint.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from typing import Dict, List

from ..exceptions import ConfigurationError, JobNotFoundError, QueueFullError
from .models import Job, JobState, job_checksum
from .store import quarantine

__all__ = ["DurableJobQueue"]

logger = logging.getLogger("repro.service.queue")


class DurableJobQueue:
    """Thread-safe durable queue over a spool directory of job records."""

    def __init__(self, spool_dir: str, *, max_depth: int = 64):
        if max_depth < 1:
            raise ConfigurationError("queue depth bound must be at least 1")
        self.spool_dir = spool_dir
        self.max_depth = int(max_depth)
        os.makedirs(spool_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        #: Signalled whenever a job becomes claimable (submit, retry, recover).
        self.work_available = threading.Event()
        self.recover()

    # ------------------------------------------------------------- persistence
    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.spool_dir, f"{job_id}.json")

    def _persist(self, job: Job) -> None:
        """Atomically rewrite one job's record (caller holds the lock)."""
        payload = job.to_dict()
        document = {
            "kind": "job",
            "job": payload,
            "checksum": job_checksum(payload),
        }
        path = self._job_path(job.job_id)
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        os.replace(temp_path, path)

    def recover(self) -> List[str]:
        """Replay the spool directory; returns the ids of re-queued jobs.

        Damaged records are quarantined; interrupted (``running``) and
        backoff-pending (``failed``) jobs return to ``queued`` so the
        supervisor picks them up again.  Safe to call on a live queue
        (it is invoked from ``__init__`` and by restart tests).
        """
        requeued: List[str] = []
        with self._lock:
            self._jobs.clear()
            for name in sorted(os.listdir(self.spool_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.spool_dir, name)
                job = self._read_record(path)
                if job is None:
                    continue
                if job.state in (JobState.RUNNING, JobState.FAILED):
                    job = job.transitioned(
                        JobState.QUEUED, error=job.error, not_before_s=0.0
                    )
                    self._persist(job)
                    requeued.append(job.job_id)
                    logger.info(
                        "recovered interrupted job %s (%s) -> queued",
                        job.job_id,
                        job.experiment,
                    )
                elif job.state == JobState.QUEUED and job.not_before_s:
                    # Backoff deadlines are monotonic-clock values of the
                    # process that wrote them — meaningless (and possibly
                    # starving) in this process.  Forgetting the pending
                    # backoff on restart is safe: one immediate retry.
                    job = job.rescheduled(0.0)
                    self._persist(job)
                self._jobs[job.job_id] = job
            if any(job.state == JobState.QUEUED for job in self._jobs.values()):
                self.work_available.set()
        return requeued

    def _read_record(self, path: str) -> Job | None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            return None
        except ValueError:
            quarantine(path)
            return None
        if (
            not isinstance(document, dict)
            or document.get("kind") != "job"
            or not isinstance(document.get("job"), dict)
            or document.get("checksum") != job_checksum(document["job"])
        ):
            quarantine(path)
            return None
        try:
            job = Job.from_dict(document["job"])
        except (ConfigurationError, KeyError, TypeError, ValueError):
            quarantine(path)
            return None
        expected = os.path.basename(path)[: -len(".json")]
        if job.job_id != expected:
            quarantine(path)
            return None
        return job

    # -------------------------------------------------------------- submission
    def depth(self) -> int:
        """Jobs occupying queue capacity (everything non-terminal)."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if not job.terminal)

    def submit(self, job: Job) -> tuple[Job, bool]:
        """Admit ``job`` (or join the existing one); returns ``(job, created)``.

        Idempotent on ``job_id``: an existing non-terminal or ``done`` job
        is returned as-is (``created=False``); a ``dead`` job stays dead —
        poison grids are not resurrected by resubmission.  A full queue
        raises :class:`~repro.exceptions.QueueFullError` whose
        ``retry_after_s`` scales with the backlog.
        """
        with self._lock:
            existing = self._jobs.get(job.job_id)
            if existing is not None:
                return existing, False
            occupancy = sum(1 for item in self._jobs.values() if not item.terminal)
            if occupancy >= self.max_depth:
                raise QueueFullError(
                    occupancy, self.max_depth, retry_after_s=float(max(1, occupancy))
                )
            self._persist(job)
            self._jobs[job.job_id] = job
            if job.state == JobState.QUEUED:
                self.work_available.set()
            return job, True

    def resubmit(self, job_id: str) -> Job:
        """Re-queue a terminal job whose stored result was lost or corrupt."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(job_id)
            job = job.requeued()
            self._persist(job)
            self._jobs[job_id] = job
            self.work_available.set()
            return job

    # --------------------------------------------------------------- lifecycle
    def claim_next(self, now_s: float | None = None) -> Job | None:
        """Move the oldest eligible ``queued`` job to ``running`` and return it.

        Jobs whose retry backoff has not elapsed (``not_before_s`` in the
        future) are skipped; ``None`` means nothing is claimable right now.
        Deadlines live on the **monotonic** clock (``time.monotonic``), so
        an NTP step or wall-clock jump can neither fire a backoff early
        nor starve it; :meth:`recover` resets deadlines written by a dead
        process, whose monotonic epoch was different.
        """
        now = time.monotonic() if now_s is None else now_s
        with self._lock:
            eligible = [
                job
                for job in self._jobs.values()
                if job.state == JobState.QUEUED and job.not_before_s <= now
            ]
            if not eligible:
                if not any(
                    job.state == JobState.QUEUED for job in self._jobs.values()
                ):
                    self.work_available.clear()
                return None
            job = min(eligible, key=lambda item: (item.created_s, item.job_id))
            job = job.transitioned(JobState.RUNNING)
            self._persist(job)
            self._jobs[job.job_id] = job
            return job

    def next_retry_delay_s(self, now_s: float | None = None) -> float | None:
        """Seconds until the earliest backoff-pending queued job is ready."""
        now = time.monotonic() if now_s is None else now_s
        with self._lock:
            pending = [
                job.not_before_s - now
                for job in self._jobs.values()
                if job.state == JobState.QUEUED and job.not_before_s > now
            ]
        return min(pending) if pending else None

    def transition(
        self,
        job_id: str,
        state: str,
        *,
        error: str | None = None,
        not_before_s: float | None = None,
        charge_attempt: bool = False,
        charge_deterministic: bool = False,
    ) -> Job:
        """Persist one state transition and return the updated record."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(job_id)
            job = job.transitioned(
                state,
                error=error,
                not_before_s=not_before_s,
                charge_attempt=charge_attempt,
                charge_deterministic=charge_deterministic,
            )
            self._persist(job)
            self._jobs[job_id] = job
            if state == JobState.QUEUED:
                self.work_available.set()
            return job

    # ------------------------------------------------------------------ queries
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def jobs(self) -> List[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: (job.created_s, job.job_id))

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled, so consumers see every state)."""
        counts = {state: 0 for state in JobState.ALL}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts
