"""Unit tests of the metrics registry: exactness, merging, deferral."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_is_exact_and_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(10**18)
        assert counter.value == 10**18 + 1
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0

    def test_histogram_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        histogram.observe_many([0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0])
        # (-inf,1], (1,2], (2,4], (4,inf): edge hits land in their bucket.
        assert histogram.counts == [2, 2, 2, 1]
        assert histogram.count == 7

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_observe_counts_matches_observe_many(self):
        loop = Histogram("h", bounds=(1.0, 2.0))
        batch = Histogram("h", bounds=(1.0, 2.0))
        loop.observe_many([0.5, 1.5, 1.5, 7.0])
        batch.observe_counts([1, 2, 1])
        assert loop.counts == batch.counts
        assert loop.count == batch.count

    def test_observe_counts_rejects_misaligned_or_negative(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            histogram.observe_counts([1, 2])  # needs len(bounds) + 1 entries
        with pytest.raises(ConfigurationError):
            histogram.observe_counts([1, -1, 0])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_bounds_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_keys_are_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]

    def test_deferred_publication_runs_at_snapshot_once(self):
        registry = MetricsRegistry()
        calls = []

        def publish(target):
            calls.append(1)
            target.inc("late", 5)

        registry.defer(publish)
        assert calls == []  # nothing runs at defer time
        assert registry.snapshot()["counters"]["late"] == 5
        registry.snapshot()
        assert calls == [1]  # drained exactly once

    def test_deferred_callback_may_defer_more(self):
        registry = MetricsRegistry()

        def outer(target):
            target.inc("outer")
            target.defer(lambda inner_target: inner_target.inc("inner"))

        registry.defer(outer)
        counters = registry.snapshot()["counters"]
        assert counters == {"outer": 1, "inner": 1}


class TestActivation:
    def test_disabled_by_default(self):
        assert obs_metrics.ACTIVE is None

    def test_collecting_scopes_and_restores(self):
        with collecting() as registry:
            assert obs_metrics.ACTIVE is registry
            with collecting() as nested:
                assert obs_metrics.ACTIVE is nested
            assert obs_metrics.ACTIVE is registry
        assert obs_metrics.ACTIVE is None

    def test_enable_disable_roundtrip(self):
        registry = obs_metrics.enable_metrics()
        try:
            assert obs_metrics.active_registry() is registry
        finally:
            obs_metrics.disable_metrics()
        assert obs_metrics.active_registry() is None


class TestMerge:
    def test_split_observations_merge_to_the_serial_totals(self):
        serial = MetricsRegistry()
        shard_a = MetricsRegistry()
        shard_b = MetricsRegistry()
        for registry in (serial, shard_a):
            registry.inc("events", 3)
            registry.histogram("lat", bounds=(1.0, 2.0)).observe_many([0.5, 1.5])
        for registry in (serial, shard_b):
            registry.inc("events", 4)
            registry.histogram("lat", bounds=(1.0, 2.0)).observe_many([5.0])
            registry.gauge("energy").add(1.25)
        merged = merge_snapshots([shard_a.snapshot(), shard_b.snapshot()])
        assert merged == serial.snapshot()

    def test_merge_order_is_deterministic_for_gauges(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        first.gauge("g").set(1.0)
        second.gauge("g").set(2.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["gauges"]["g"] == 2.0

    def test_merge_rejects_mismatched_histogram_bounds(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        first.histogram("h", bounds=(1.0,)).observe(0.5)
        second.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ConfigurationError):
            merge_snapshots([first.snapshot(), second.snapshot()])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}
