"""Run-manifest tests: provenance content and the serial == parallel merge."""

from __future__ import annotations

import json

import pytest

from repro.experiments.orchestrator import run_experiment
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    load_manifest,
    manifest_path,
    write_manifest,
)

#: Small but multi-shard network grid so ``--jobs 4`` actually fans out.
NETWORK_OPTIONS = {
    "patterns": ["uniform", "hotspot"],
    "loads": [0.25, 0.7],
    "policies": ["min-power"],
    "num_requests": 80,
    "payload_bits": 2048,
    "seed": 5,
    "rings": 2,
}


def _identity_sections(manifest: dict) -> str:
    """The manifest content covered by the identity guarantee, serialized."""
    return json.dumps(
        {key: manifest[key] for key in ("fingerprint", "metrics", "shards")},
        sort_keys=True,
    )


class TestDocumentShape:
    def test_build_manifest_merges_in_grid_order(self):
        shard_metrics = {
            0: {"counters": {"n": 1}, "gauges": {}, "histograms": {}},
            1: {"counters": {"n": 2}, "gauges": {}, "histograms": {}},
        }
        manifest = build_manifest(
            experiment="demo",
            fingerprint="abc",
            options={"seed": 1},
            shard_params=[{"shard": 0}, {"shard": 1}],
            shard_metrics=shard_metrics,
        )
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["metrics"]["counters"]["n"] == 3
        assert [shard["index"] for shard in manifest["shards"]] == [0, 1]
        assert manifest["environment"]["package"] == "repro"

    def test_resumed_shards_carry_null_metrics(self):
        manifest = build_manifest(
            experiment="demo",
            fingerprint="abc",
            options=None,
            shard_params=[{"shard": 0}, {"shard": 1}],
            shard_metrics={0: None, 1: {"counters": {"n": 5}, "gauges": {}, "histograms": {}}},
            resumed=[0],
        )
        assert manifest["resumed_shards"] == [0]
        assert manifest["shards"][0]["metrics"] is None
        assert manifest["metrics"]["counters"]["n"] == 5

    def test_write_and_load_roundtrip(self, tmp_path):
        path = manifest_path(str(tmp_path), "demo")
        manifest = build_manifest(
            experiment="demo",
            fingerprint="abc",
            options=None,
            shard_params=[],
            shard_metrics={},
        )
        assert write_manifest(path, manifest) == path
        assert load_manifest(path) == manifest
        assert not list(tmp_path.glob("*.tmp"))  # atomic write left no debris

    def test_load_rejects_damage(self, tmp_path):
        path = manifest_path(str(tmp_path), "demo")
        with pytest.raises(OSError):
            load_manifest(path)
        (tmp_path / "demo.manifest.json").write_text("{truncated")
        with pytest.raises(ValueError):
            load_manifest(path)


class TestParallelIdentity:
    def test_jobs4_manifest_metrics_equal_serial_byte_for_byte(self, tmp_path):
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        serial = run_experiment(
            "network", options=NETWORK_OPTIONS, manifest_dir=str(serial_dir)
        )
        pooled = run_experiment(
            "network", options=NETWORK_OPTIONS, manifest_dir=str(pooled_dir), jobs=4
        )
        assert serial[0] == pooled[0]  # the reports themselves agree too
        serial_manifest = load_manifest(manifest_path(str(serial_dir), "network"))
        pooled_manifest = load_manifest(manifest_path(str(pooled_dir), "network"))
        assert _identity_sections(serial_manifest) == _identity_sections(pooled_manifest)
        assert serial_manifest["invocation"]["jobs"] == 1
        assert pooled_manifest["invocation"]["jobs"] == 4
        events = serial_manifest["metrics"]["counters"]["netsim.events.total"]
        assert events > 0
        per_shard = sum(
            shard["metrics"]["counters"]["netsim.events.total"]
            for shard in serial_manifest["shards"]
        )
        assert per_shard == events  # the merge is exact, not approximate

    def test_resumed_run_reuses_checkpoint_and_marks_shards(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        first_dir = str(tmp_path / "first")
        resumed_dir = str(tmp_path / "resumed")
        run_experiment(
            "network",
            options=NETWORK_OPTIONS,
            checkpoint_dir=checkpoint,
            manifest_dir=first_dir,
        )
        run_experiment(
            "network",
            options=NETWORK_OPTIONS,
            checkpoint_dir=checkpoint,
            resume=True,
            manifest_dir=resumed_dir,
        )
        manifest = load_manifest(manifest_path(resumed_dir, "network"))
        assert manifest["resumed_shards"] == list(range(manifest["num_shards"]))
        assert all(shard["metrics"] is None for shard in manifest["shards"])
        assert manifest["metrics"]["counters"] == {}
        assert manifest["orchestrator"]["shards_resumed"] == manifest["num_shards"]
