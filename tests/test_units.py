"""Tests for unit conversions and numeric helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import units


class TestDecibelConversions:
    def test_db_to_linear_of_zero_is_one(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_of_ten_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_to_linear_of_three_is_about_two(self):
        assert units.db_to_linear(3.0) == pytest.approx(2.0, rel=1e-2)

    def test_linear_to_db_round_trip(self):
        for value in (0.01, 0.5, 1.0, 4.898, 123.4):
            assert units.db_to_linear(units.linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_linear_to_db_array_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(np.array([1.0, 0.0]))

    def test_db_loss_to_transmission_three_db_is_half(self):
        assert units.db_loss_to_transmission(3.0103) == pytest.approx(0.5, rel=1e-4)

    def test_db_loss_rejects_negative(self):
        with pytest.raises(ValueError):
            units.db_loss_to_transmission(-0.1)

    def test_transmission_to_db_loss_round_trip(self):
        for loss in (0.0, 0.5, 3.0, 8.7):
            transmission = units.db_loss_to_transmission(loss)
            assert units.transmission_to_db_loss(transmission) == pytest.approx(loss, abs=1e-9)

    def test_transmission_to_db_loss_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            units.transmission_to_db_loss(0.0)
        with pytest.raises(ValueError):
            units.transmission_to_db_loss(1.5)


class TestUnitScaling:
    def test_to_mw(self):
        assert units.to_mw(0.0143) == pytest.approx(14.3)

    def test_to_uw(self):
        assert units.to_uw(700e-6) == pytest.approx(700.0)

    def test_to_pj(self):
        assert units.to_pj(3.92e-12) == pytest.approx(3.92)

    def test_prefixes_are_consistent(self):
        assert units.milli * units.kilo == pytest.approx(1.0)
        assert units.micro * units.mega == pytest.approx(1.0)
        assert units.nano * units.giga == pytest.approx(1.0)


class TestQFunction:
    def test_q_function_at_zero_is_half(self):
        assert units.q_function(0.0) == pytest.approx(0.5)

    def test_q_function_decreases(self):
        assert units.q_function(1.0) > units.q_function(2.0) > units.q_function(3.0)

    def test_inverse_q_round_trip(self):
        for p in (0.4, 0.1, 1e-3, 1e-6):
            assert units.q_function(units.inverse_q_function(p)) == pytest.approx(p, rel=1e-6)

    def test_inverse_q_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            units.inverse_q_function(0.0)
        with pytest.raises(ValueError):
            units.inverse_q_function(1.0)


class TestMonotonicHelper:
    def test_increasing_sequence(self):
        assert units.ensure_monotonic([1.0, 2.0, 3.0])

    def test_decreasing_sequence(self):
        assert units.ensure_monotonic([3.0, 2.0, 1.0], increasing=False)

    def test_non_monotonic_sequence(self):
        assert not units.ensure_monotonic([1.0, 3.0, 2.0])

    def test_short_sequences_are_monotonic(self):
        assert units.ensure_monotonic([])
        assert units.ensure_monotonic([5.0])
