"""Run manifests: per-invocation provenance records for sweeps.

A manifest is written next to a sweep's checkpoint (one JSON document per
experiment) and records everything needed to audit or reproduce the run:
the grid fingerprint and options (which carry the seeds and engine
selection), the package/NumPy/Python versions, wall and CPU time, the
orchestrator's shard-lifecycle accounting, and the per-shard metric
snapshots together with their exact merge.

The document is split into *identity* sections and *timing* sections:

* ``metrics`` and ``shards`` are pure functions of the grid — a
  ``--jobs 4`` sweep produces byte-identical content to the serial run
  (pinned by ``tests/obs/test_obs_manifest.py``);
* ``timing``, ``environment`` and ``invocation`` carry wall-clock and
  host facts and are explicitly excluded from any identity claim.

Monotonic/wall timings live only here and in trace files — never in a
result or checkpoint field.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
from typing import Any, Dict, Sequence

from .metrics import merge_snapshots

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "build_job_manifest",
    "build_manifest",
    "environment_info",
    "job_manifest_path",
    "load_manifest",
    "manifest_path",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 1


def manifest_path(directory: str, experiment: str) -> str:
    """Location of one experiment's run manifest inside a directory."""
    return os.path.join(directory, f"{experiment}.manifest.json")


def job_manifest_path(directory: str, job_id: str) -> str:
    """Location of one service job's lifecycle manifest inside a directory."""
    return os.path.join(directory, f"job-{job_id}.manifest.json")


def build_job_manifest(
    *,
    job: dict,
    attempts: Sequence[dict],
    result_path: str | None,
    timing: dict | None = None,
) -> dict:
    """Assemble one service job's lifecycle manifest.

    Complements the per-run sweep manifest the orchestrator writes inside
    the job's working directory: the job manifest records what the
    *supervisor* saw — every attempt with its outcome (``done``, ``killed``,
    ``timeout``, ``error``, ``cancelled``), the retry/backoff history and
    where the verified result landed — so a job that needed three attempts
    leaves an auditable trail even though its final result is
    byte-identical to a first-try run.
    """
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "job-manifest",
        "job": dict(job),
        "attempts": [dict(attempt) for attempt in attempts],
        "result_path": result_path,
        "environment": environment_info(),
        "timing": timing or {},
    }


def environment_info() -> dict:
    """Versions and host facts that identify the software environment."""
    import numpy

    import repro

    return {
        "package": "repro",
        "package_version": repro.__version__,
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def build_manifest(
    *,
    experiment: str,
    fingerprint: str,
    options: dict | None,
    shard_params: Sequence[Any],
    shard_metrics: Dict[int, dict | None],
    resumed: Sequence[int] = (),
    invocation: dict | None = None,
    orchestrator: dict | None = None,
    timing: dict | None = None,
) -> dict:
    """Assemble one run's manifest document.

    ``shard_metrics`` maps shard index to its metric snapshot (``None`` for
    shards replayed from a checkpoint, whose metrics were never observed).
    The merged ``metrics`` section folds the available snapshots in grid
    order — the order that makes parallel merges exactly equal serial ones.
    """
    indices = range(len(shard_params))
    merged = merge_snapshots(
        snapshot
        for snapshot in (shard_metrics.get(index) for index in indices)
        if snapshot is not None
    )
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "run-manifest",
        "experiment": experiment,
        "fingerprint": fingerprint,
        "options": options,
        "num_shards": len(shard_params),
        "resumed_shards": sorted(int(index) for index in resumed),
        "metrics": merged,
        "shards": [
            {
                "index": index,
                "params": shard_params[index],
                "metrics": shard_metrics.get(index),
            }
            for index in indices
        ],
        "invocation": invocation or {},
        "orchestrator": orchestrator or {},
        "environment": environment_info(),
        "timing": timing or {},
    }


def write_manifest(path: str, manifest: dict) -> str:
    """Atomically persist a manifest (write-to-temp, then rename)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return path


def load_manifest(path: str) -> dict:
    """Read a manifest back; raises ``OSError``/``ValueError`` on damage."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
