"""Tests for the parallel sweep orchestrator: determinism, checkpoints, CLI."""

from __future__ import annotations

import json

import pytest

from repro.coding.montecarlo import shard_seed_sequences
from repro.exceptions import ConfigurationError
from repro.experiments.orchestrator import (
    available_experiments,
    checkpoint_path,
    describe_grid,
    run_experiment,
)
from repro.experiments.report import rows_to_csv

#: Small validation workload so the Monte-Carlo experiments stay test-fast.
FAST_VALIDATION = {"targets": [1e-3], "num_blocks": 2000, "seed": 7}


def _render(result: tuple[str, list[dict]]) -> str:
    """Text report + CSV rows as one string — the byte-identity criterion."""
    text, rows = result
    return text + "\n---\n" + rows_to_csv(rows)


class TestGridDescriptors:
    def test_every_runner_experiment_has_a_grid(self):
        from repro.experiments.runner import EXPERIMENTS

        assert set(available_experiments()) == set(EXPERIMENTS)

    def test_figure5_shards_chunk_the_ber_axis(self):
        grid = describe_grid("figure5", options={"target_bers": [1e-3] * 40, "shard_size": 16})
        per_code = {}
        for shard in grid.shard_params:
            per_code.setdefault(shard["code"], []).extend(shard["target_bers"])
        assert all(len(bers) == 40 for bers in per_code.values())

    def test_validation_shards_carry_their_own_seeds(self):
        grid = describe_grid("validation", options=FAST_VALIDATION)
        indices = [shard["spawn_index"] for shard in grid.shard_params]
        assert indices == list(range(len(grid.shard_params)))

    def test_fingerprint_tracks_the_options(self):
        base = describe_grid("figure5")
        dense = describe_grid("figure5", options={"target_bers": [1e-3, 1e-4]})
        assert base.fingerprint != dense.fingerprint
        assert base.fingerprint == describe_grid("figure5").fingerprint

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("not-an-experiment")
        with pytest.raises(ConfigurationError):
            run_experiment("figure5", jobs=0)


class TestShardSeedSequences:
    def test_children_match_numpy_spawn(self):
        import numpy as np

        spawned = np.random.SeedSequence(123).spawn(4)
        rebuilt = shard_seed_sequences(123, 4)
        for child, clone in zip(spawned, rebuilt):
            assert child.generate_state(4).tolist() == clone.generate_state(4).tolist()

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_seed_sequences(1, -1)


class TestByteIdenticalParallelism:
    def test_figure5_parallel_matches_serial(self):
        serial = run_experiment("figure5")
        parallel = run_experiment("figure5", jobs=2)
        assert _render(serial) == _render(parallel)

    def test_validation_parallel_matches_serial(self):
        serial = run_experiment("validation", options=FAST_VALIDATION)
        parallel = run_experiment("validation", options=FAST_VALIDATION, jobs=2)
        assert _render(serial) == _render(parallel)

    def test_run_validation_matches_orchestrated_grid(self):
        # The direct entry point and the sharded grid must agree exactly,
        # which is what makes the orchestrator transparent to callers.
        from repro.experiments.validation import run_validation

        direct = run_validation(targets=(1e-3,), num_blocks=2000, seed=7)
        text, _ = run_experiment("validation", options=FAST_VALIDATION)
        assert direct.render_text() == text


def _read_checkpoint_lines(path: str) -> tuple[dict, list[dict]]:
    """Parse a v2 JSON-lines checkpoint into (header, shard records)."""
    lines = open(path, encoding="utf-8").read().splitlines()
    header = json.loads(lines[0])
    records = [json.loads(line) for line in lines[1:]]
    return header, records


class TestCheckpointResume:
    def test_checkpoint_written_and_resumed(self, tmp_path):
        first = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path)
        )
        path = checkpoint_path(str(tmp_path), "validation")
        header, records = _read_checkpoint_lines(path)
        assert header["kind"] == "header"
        assert len(records) == header["num_shards"]
        assert all(record["kind"] == "shard" and "checksum" in record for record in records)

        resumed = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path), resume=True
        )
        assert _render(first) == _render(resumed)

    def test_partial_checkpoint_completes_missing_shards(self, tmp_path):
        full = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path)
        )
        path = checkpoint_path(str(tmp_path), "validation")
        lines = open(path, encoding="utf-8").read().splitlines()
        kept = [lines[0]] + [
            line
            for line in lines[1:]
            if json.loads(line)["index"] % 2 == 0
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(kept) + "\n")

        resumed = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path), resume=True
        )
        assert _render(full) == _render(resumed)

    def test_legacy_single_json_checkpoint_still_accepted(self, tmp_path):
        full = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path)
        )
        path = checkpoint_path(str(tmp_path), "validation")
        header, records = _read_checkpoint_lines(path)
        legacy = {
            "experiment": "validation",
            "fingerprint": header["fingerprint"],
            "num_shards": header["num_shards"],
            "shards": {str(record["index"]): record["payload"] for record in records},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(legacy, handle)
        resumed = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path), resume=True
        )
        assert _render(full) == _render(resumed)

    def test_stale_fingerprint_is_ignored(self, tmp_path):
        run_experiment("validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path))

        # A different grid (options changed) must not reuse those shards: the
        # resumed run must equal a fresh computation with the new options,
        # not the checkpointed payloads of the old grid.
        other = dict(FAST_VALIDATION, num_blocks=1000)
        resumed = run_experiment(
            "validation", options=other, checkpoint_dir=str(tmp_path), resume=True
        )
        fresh = run_experiment("validation", options=other)
        stale = run_experiment("validation", options=FAST_VALIDATION)
        assert _render(resumed) == _render(fresh)
        assert _render(resumed) != _render(stale)

    def test_corrupt_checkpoint_is_quarantined_and_recomputed(self, tmp_path):
        import os

        reference = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path)
        )
        path = checkpoint_path(str(tmp_path), "validation")

        # A bit flip inside one record invalidates its checksum: that shard
        # is recomputed, the rest are salvaged, and the damaged file is
        # quarantined as *.corrupt instead of being silently rewritten.
        lines = open(path, encoding="utf-8").read().splitlines()
        record = json.loads(lines[1])
        record["payload"], _ = {"bogus": True}, record["payload"]
        lines[1] = json.dumps(record)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        resumed = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path), resume=True
        )
        assert _render(reference) == _render(resumed)
        assert os.path.exists(path + ".corrupt")
        os.unlink(path + ".corrupt")

        # Unparseable garbage quarantines the whole file and recomputes.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        recomputed = run_experiment(
            "validation", options=FAST_VALIDATION, checkpoint_dir=str(tmp_path), resume=True
        )
        assert _render(reference) == _render(recomputed)
        assert os.path.exists(path + ".corrupt")

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("figure5", resume=True)


class TestRunnerCliFlags:
    def test_jobs_flag_produces_identical_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["figure5"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["figure5", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_resume_flag_roundtrip(self, capsys, tmp_path):
        from repro.experiments.runner import main

        checkpoint = str(tmp_path / "ckpt")
        assert main(["figure4", "--checkpoint-dir", checkpoint]) == 0
        first = capsys.readouterr().out
        assert main(["figure4", "--checkpoint-dir", checkpoint, "--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_bad_jobs_rejected(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["figure5", "--jobs", "0"])
