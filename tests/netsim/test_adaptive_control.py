"""Online adaptive-ECC control: parity, switching, penalties and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.manager.manager import (
    CommunicationRequest,
    OpticalLinkManager,
    derated_target_ber,
)
from repro.manager.policies import (
    FailureRateMonitor,
    HysteresisSwitchingPolicy,
    margin_levels,
)
from repro.manager.runtime import AdaptiveEccController
from repro.netsim import NetworkSimulator, make_drift_model
from repro.simulation.faults import IndependentErrorModel
from repro.traffic.generators import UniformTrafficGenerator

from repro.experiments.network import request_rate_for_load


def _requests(seed=7, count=300, load=0.4, payload_bits=4096):
    rate = request_rate_for_load(load, payload_bits=payload_bits)
    generator = UniformTrafficGenerator(
        12,
        mean_request_rate_hz=rate,
        payload_bits=payload_bits,
        seed=np.random.SeedSequence(seed),
    )
    return list(generator.generate(count))


class TestMarginLevels:
    def test_ladder_shape(self):
        assert margin_levels(16.0) == [1.0, 2.0, 4.0, 8.0, 16.0]
        assert margin_levels(1.0) == [1.0]
        assert margin_levels(10.0) == [1.0, 2.0, 4.0, 8.0, 10.0]
        assert margin_levels(9.0, ratio=3.0) == [1.0, 3.0, 9.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            margin_levels(0.5)
        with pytest.raises(ConfigurationError):
            margin_levels(4.0, ratio=1.0)


class TestDeratedTarget:
    def test_margin_one_is_bit_exact_identity(self):
        manager = OpticalLinkManager()
        for code in manager.codes:
            assert derated_target_ber(code, 1e-9, 1.0) == 1e-9

    def test_margin_tightens_the_target(self):
        manager = OpticalLinkManager()
        for code in manager.codes:
            derated = derated_target_ber(code, 1e-9, 8.0)
            assert 0.0 < derated < 1e-9

    def test_margin_rejects_below_one(self):
        manager = OpticalLinkManager()
        with pytest.raises(ConfigurationError):
            derated_target_ber(manager.codes[0], 1e-9, 0.5)

    def test_margined_configuration_costs_more_power(self):
        manager = OpticalLinkManager()
        request = CommunicationRequest(source=1, destination=0, target_ber=1e-9)
        nominal = manager.configure(request)
        margined = manager.configure(request, margin_multiplier=16.0)
        assert margined.margin_multiplier == 16.0
        assert margined.design_target_ber < nominal.design_target_ber
        assert margined.channel_power_w > nominal.channel_power_w

    def test_margin_one_matches_unmargined_configure(self):
        manager = OpticalLinkManager()
        request = CommunicationRequest(source=1, destination=0, target_ber=1e-9)
        plain = manager.configure(request)
        explicit = manager.configure(request, margin_multiplier=1.0)
        assert plain.code_name == explicit.code_name
        assert plain.design_target_ber == explicit.design_target_ber
        assert plain.laser_output_power_w == explicit.laser_output_power_w


class TestMonitorAndHysteresis:
    def test_monitor_emits_once_per_window(self):
        monitor = FailureRateMonitor(window_blocks=100)
        assert monitor.observe(60, 1.0, 0.5) is None
        estimate = monitor.observe(60, 2.0, 0.5)
        assert estimate == pytest.approx(3.0)  # (1+2)/(0.5+0.5)
        # The window reset: a fresh accumulation starts.
        assert monitor.observe(60, 0.0, 1.0) is None

    def test_monitor_reports_estimates_below_one(self):
        # Unclamped: a quiet window must be able to report a calm channel,
        # otherwise level 1 -> 0 downgrades are unreachable (the downgrade
        # threshold at level 1 is below 1.0).
        monitor = FailureRateMonitor(window_blocks=10)
        assert monitor.observe(10, 0.0, 5.0) == 0.0
        assert monitor.observe(10, 1.0, 4.0) == pytest.approx(0.25)

    def test_monitor_no_expectation_is_neutral(self):
        monitor = FailureRateMonitor(window_blocks=10)
        assert monitor.observe(10, 0.0, 0.0) == 1.0

    def test_policy_nominal_channel_never_upgrades(self):
        policy = HysteresisSwitchingPolicy()
        margins = [1.0, 2.0, 4.0]
        assert policy.decide(1.0, margins, 0, 0) == 0

    def test_policy_upgrades_past_headroom(self):
        policy = HysteresisSwitchingPolicy(upgrade_headroom=1.2)
        margins = [1.0, 2.0, 4.0]
        assert policy.decide(1.5, margins, 0, 0) == 1
        assert policy.decide(3.0, margins, 1, 0) == 1
        # top level cannot upgrade further
        assert policy.decide(100.0, margins, 2, 0) == 0

    def test_policy_downgrade_requires_calm_streak(self):
        policy = HysteresisSwitchingPolicy(downgrade_fraction=0.6, hold_windows=2)
        margins = [1.0, 2.0, 4.0]
        # estimate well below the lower level's margin, but only one window
        assert policy.decide(0.5, margins, 1, 0) == 0
        assert policy.decide(0.5, margins, 1, 1) == -1
        # level 0 has nothing to downgrade to
        assert policy.decide(0.5, margins, 0, 5) == 0


class TestController:
    def test_static_mode_always_top_level(self):
        controller = AdaptiveEccController(margins=[1.0, 4.0, 16.0], mode="static")
        margin, switched = controller.margin_for(3, 0.0, true_multiplier=1.0)
        assert margin == 16.0 and not switched
        assert not controller.wants_observations

    def test_oracle_tracks_the_true_multiplier(self):
        controller = AdaptiveEccController(
            margins=[1.0, 2.0, 4.0], mode="oracle", switch_energy_j=2e-9
        )
        assert controller.margin_for(0, 0.0, true_multiplier=1.0) == (1.0, False)
        margin, switched = controller.margin_for(0, 1.0, true_multiplier=3.0)
        assert margin == 4.0 and switched
        assert controller.blocked_until(0) == pytest.approx(1.0 + controller.switch_latency_s)
        margin, switched = controller.margin_for(0, 2.0, true_multiplier=1.5)
        assert margin == 2.0 and switched
        assert controller.switch_count == 2
        assert controller.reconfiguration_energy_j == pytest.approx(4e-9)
        # beyond-worst-case multipliers clamp to the top level
        assert controller.margin_for(0, 3.0, true_multiplier=100.0)[0] == 4.0

    def test_adaptive_mode_switches_on_monitor_estimate(self):
        controller = AdaptiveEccController(
            margins=[1.0, 2.0],
            mode="adaptive",
            monitor=FailureRateMonitor(window_blocks=10),
        )
        assert controller.wants_observations
        switched = controller.observe(
            0, 1.0, blocks=10, observed_events=30.0, expected_events=10.0
        )
        assert switched and controller.level(0) == 1
        assert controller.switch_count == 1

    def test_adaptive_channel_can_return_to_level_zero(self):
        """Regression: the bottom rung must not be sticky once upgraded."""
        controller = AdaptiveEccController(
            margins=[1.0, 2.0, 4.0],
            mode="adaptive",
            monitor=FailureRateMonitor(window_blocks=10),
            switching_policy=HysteresisSwitchingPolicy(hold_windows=2),
        )
        controller.observe(0, 0.0, blocks=10, observed_events=30.0, expected_events=10.0)
        assert controller.level(0) == 1
        # Quiet telemetry: zero observed events against a real expectation.
        for window in range(10):
            controller.observe(
                0, 1.0 + window, blocks=10, observed_events=0.0, expected_events=2.0
            )
            if controller.level(0) == 0:
                break
        assert controller.level(0) == 0
        assert controller.switch_count == 2

    def test_reset_clears_state(self):
        controller = AdaptiveEccController(margins=[1.0, 2.0], mode="oracle")
        controller.margin_for(0, 0.0, true_multiplier=2.0)
        assert controller.switch_count == 1
        controller.reset()
        assert controller.switch_count == 0
        assert controller.level(0) == 0
        assert controller.blocked_until(0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveEccController(margins=[1.0], mode="psychic")
        with pytest.raises(ConfigurationError):
            AdaptiveEccController(margins=[])
        with pytest.raises(ConfigurationError):
            AdaptiveEccController(margins=[2.0, 1.0])
        with pytest.raises(ConfigurationError):
            AdaptiveEccController(margins=[1.0, 2.0], switch_latency_s=-1.0)


class TestEngineIntegration:
    def test_zero_drift_adaptive_reproduces_static_netsim_exactly(self):
        """The zero-drift parity guard: controller on, drift none == today."""
        plain = NetworkSimulator(seed=np.random.SeedSequence(11)).run(_requests())
        controller = AdaptiveEccController(margins=margin_levels(1.0), mode="adaptive")
        managed = NetworkSimulator(
            seed=np.random.SeedSequence(11),
            controller=controller,
            telemetry_seed=np.random.SeedSequence(99),
        ).run(_requests())
        assert plain.records == managed.records
        assert managed.configuration_switches == 0
        assert plain.metrics().as_dict() == managed.metrics().as_dict()

    def test_dynamics_require_probabilistic_mode(self):
        drift = make_drift_model("thermal", 12, seed=0, timescale_s=1e-6)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(mode="bit-exact", dynamics=drift)

    def test_adaptive_controller_requires_probabilistic_mode(self):
        controller = AdaptiveEccController(margins=margin_levels(4.0), mode="adaptive")
        with pytest.raises(ConfigurationError):
            NetworkSimulator(mode="bit-exact", controller=controller)
        # Observation-free modes are fine bit-exactly (margins still apply).
        static = AdaptiveEccController(margins=margin_levels(4.0), mode="static")
        NetworkSimulator(mode="bit-exact", controller=static)

    def test_dynamics_refuse_custom_fault_model(self):
        drift = make_drift_model("thermal", 12, seed=0, timescale_s=1e-6)
        with pytest.raises(ConfigurationError):
            NetworkSimulator(
                dynamics=drift, fault_model=IndependentErrorModel(1e-4, rng=np.random.default_rng(0))
            )

    def test_static_worst_case_beats_nothing_but_meets_margin(self):
        """Static worst-case pays more energy than the unmargined baseline."""
        requests = _requests(count=200)
        baseline = NetworkSimulator(seed=np.random.SeedSequence(3)).run(requests)
        controller = AdaptiveEccController(margins=margin_levels(16.0), mode="static")
        margined = NetworkSimulator(
            seed=np.random.SeedSequence(3), controller=controller, telemetry_seed=1
        ).run(requests)
        assert margined.metrics().total_energy_j > baseline.metrics().total_energy_j

    def test_adaptive_beats_static_under_drift(self):
        requests = _requests(count=500)
        horizon = max(r.arrival_time_s for r in requests)
        energies = {}
        for mode in ("static", "adaptive", "oracle"):
            drift = make_drift_model(
                "aging", 12, seed=np.random.SeedSequence(5), timescale_s=horizon
            )
            controller = AdaptiveEccController(
                margins=margin_levels(drift.worst_case_multiplier), mode=mode
            )
            result = NetworkSimulator(
                seed=np.random.SeedSequence(11),
                dynamics=drift,
                controller=controller,
                telemetry_seed=np.random.SeedSequence(13),
            ).run(requests)
            energies[mode] = result.metrics().total_energy_j
        assert energies["adaptive"] < energies["static"]
        assert energies["oracle"] < energies["static"]

    def test_switch_latency_blocks_the_channel(self):
        """A freshly switched channel cannot start a transfer mid-reconfig."""
        controller = AdaptiveEccController(
            margins=[1.0, 2.0], mode="oracle", switch_latency_s=5e-6
        )
        drift = make_drift_model(
            "aging", 12, seed=1, worst_case_multiplier=2.0, timescale_s=1e-7
        )
        requests = _requests(count=120)
        with_latency = NetworkSimulator(
            seed=np.random.SeedSequence(2), dynamics=drift, controller=controller
        ).run(requests)
        assert with_latency.configuration_switches > 0
        fast_controller = AdaptiveEccController(
            margins=[1.0, 2.0], mode="oracle", switch_latency_s=0.0
        )
        drift2 = make_drift_model(
            "aging", 12, seed=1, worst_case_multiplier=2.0, timescale_s=1e-7
        )
        without_latency = NetworkSimulator(
            seed=np.random.SeedSequence(2), dynamics=drift2, controller=fast_controller
        ).run(requests)
        assert (
            with_latency.metrics().latency.mean_s
            > without_latency.metrics().latency.mean_s
        )

    def test_interval_trace_accounts_for_run_totals(self):
        requests = _requests(count=200)
        horizon = max(r.arrival_time_s for r in requests)
        drift = make_drift_model("thermal", 12, seed=4, timescale_s=horizon)
        controller = AdaptiveEccController(
            margins=margin_levels(drift.worst_case_multiplier), mode="oracle"
        )
        result = NetworkSimulator(
            seed=np.random.SeedSequence(6),
            dynamics=drift,
            controller=controller,
            trace_interval_s=horizon / 10,
        ).run(requests)
        trace = result.interval_trace
        assert trace is not None and len(trace) >= 10
        assert sum(row.transfers_completed for row in trace) == len(
            [r for r in result.records if not r.rejected]
        )
        assert sum(row.switches for row in trace) == result.configuration_switches
        metrics = result.metrics()
        assert sum(row.energy_j for row in trace) == pytest.approx(
            metrics.total_energy_j, rel=1e-9
        )
        assert all(row.start_s == pytest.approx(row.interval * horizon / 10) for row in trace)

    def test_trace_disabled_by_default(self):
        result = NetworkSimulator(seed=np.random.SeedSequence(1)).run(_requests(count=50))
        assert result.interval_trace is None
