"""Tests for the top-level public API surface."""

from __future__ import annotations

import pytest

import repro


class TestPublicExports:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_paper_code_set_contents(self):
        codes = repro.paper_code_set()
        names = [code.name for code in codes]
        assert names == ["w/o ECC", "H(71,64)", "H(7,4)"]

    def test_designer_is_constructible_from_top_level(self):
        designer = repro.OpticalLinkDesigner()
        point = designer.design_point(repro.HammingCode(3), 1e-9)
        assert point.feasible

    def test_exceptions_share_base_class(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.InfeasibleDesignError, repro.ReproError)
        assert issubclass(repro.LaserPowerExceededError, repro.ReproError)

    def test_get_code_from_top_level(self):
        code = repro.get_code("H(7,4)")
        assert (code.n, code.k) == (7, 4)

    def test_default_config_exposed(self):
        assert repro.DEFAULT_CONFIG.num_onis == 12


class TestExceptionBehaviour:
    def test_laser_power_exceeded_carries_values(self):
        error = repro.LaserPowerExceededError(required_w=800e-6, maximum_w=700e-6)
        assert error.required_w == pytest.approx(800e-6)
        assert error.maximum_w == pytest.approx(700e-6)
        assert "700" in str(error)

    def test_laser_power_exceeded_custom_message(self):
        error = repro.LaserPowerExceededError(1e-3, 7e-4, message="custom")
        assert str(error) == "custom"
