"""Experiment ``table1``: synthesis results of the TX/RX interfaces (Table I).

Regenerates the paper's Table I from the technology library and, optionally,
from the parametric block estimators, then compares per-mode totals and
areas against the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..config import DEFAULT_CONFIG, PaperConfig
from ..interfaces.synthesis import PAPER_MODES, SynthesisReport, synthesize_interfaces
from .gridlib import single_merge_sweep as merge_sweep, single_sweep_shards as sweep_shards
from .paperdata import Comparison, PAPER_TABLE1_AREA_UM2, PAPER_TABLE1_TOTALS_UW

__all__ = ["Table1Result", "run_table1", "sweep_shards", "run_sweep_shard", "merge_sweep"]


@dataclass
class Table1Result:
    """Outcome of the Table I reproduction."""

    report: SynthesisReport
    parametric_report: SynthesisReport
    comparisons: List[Comparison] = field(default_factory=list)

    @property
    def max_abs_relative_error(self) -> float:
        """Largest absolute relative error across all compared quantities."""
        return max(abs(c.relative_error) for c in self.comparisons)

    def render_text(self) -> str:
        """Text rendering: the regenerated table followed by the comparison."""
        lines = [
            "Table I - synthesis results (28 nm FDSOI, Ndata=64, FIP=1 GHz, Fmod=10 Gb/s)",
            self.report.render_text(),
            "",
            "Comparison against the paper's totals:",
        ]
        lines.extend(comparison.render() for comparison in self.comparisons)
        return "\n".join(lines)


def run_table1(config: PaperConfig = DEFAULT_CONFIG) -> Table1Result:
    """Regenerate Table I and compare its totals with the paper."""
    report = synthesize_interfaces(config=config, parametric=False)
    parametric = synthesize_interfaces(config=config, parametric=True)

    comparisons: List[Comparison] = []
    for (side, mode), reference in PAPER_TABLE1_TOTALS_UW.items():
        measured = report.mode_totals(side, mode).total_power_uw
        comparisons.append(
            Comparison(
                quantity=f"{side} total power [{mode}]",
                measured=measured,
                reference=reference,
                unit="uW",
            )
        )
    comparisons.append(
        Comparison(
            quantity="transmitter area",
            measured=report.transmitter_area_um2,
            reference=PAPER_TABLE1_AREA_UM2["transmitter"],
            unit="um2",
        )
    )
    comparisons.append(
        Comparison(
            quantity="receiver area",
            measured=report.receiver_area_um2,
            reference=PAPER_TABLE1_AREA_UM2["receiver"],
            unit="um2",
        )
    )
    # Cross-check: the parametric estimators should stay in the same ballpark
    # as the library for the modes the paper synthesised.
    for mode in PAPER_MODES:
        measured = parametric.mode_totals("transmitter", mode).total_power_uw
        reference = report.mode_totals("transmitter", mode).total_power_uw
        comparisons.append(
            Comparison(
                quantity=f"parametric transmitter power [{mode}]",
                measured=measured,
                reference=reference,
                unit="uW",
            )
        )
    return Table1Result(report=report, parametric_report=parametric, comparisons=comparisons)
# ------------------------------------------------------------------ grid API
def run_sweep_shard(params, config=DEFAULT_CONFIG):
    """Worker: regenerate Table I; returns the rendered payload."""
    result = run_table1(config)
    return {"text": result.render_text(), "rows": result.report.to_rows()}
