"""A single MWSR (Multiple Writer Single Reader) channel.

Every ONI except the reader owns a bank of modulators on the channel's
waveguides; the reader owns the drop rings and photodetectors.  The channel
object knows, for every writer, the loss of its path to the reader (which
depends on the distance and on how many intermediate modulator banks are
crossed) and can therefore answer both worst-case questions (used by the
link designer, which must guarantee the BER for the farthest writer) and
per-writer questions (used by distance-aware laser-scaling studies, an
extension the paper lists as complementary work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..photonics.crosstalk import CrosstalkModel
from ..units import db_loss_to_transmission, db_to_linear
from .topology import RingTopology

__all__ = ["WriterPath", "MWSRChannel"]


@dataclass(frozen=True)
class WriterPath:
    """Loss budget of one writer's path to the channel reader."""

    writer: int
    reader: int
    distance_m: float
    intermediate_writers: int
    loss_db: float

    @property
    def transmission(self) -> float:
        """Linear power transmission of the path (useful signal)."""
        return db_loss_to_transmission(self.loss_db)


@dataclass
class MWSRChannel:
    """An MWSR channel: one reader ONI, every other ONI writes to it."""

    reader: int
    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    topology: RingTopology | None = None

    def __post_init__(self) -> None:
        if self.topology is None:
            self.topology = RingTopology.from_config(self.config)
        if not 0 <= self.reader < self.topology.num_onis:
            raise ConfigurationError(
                f"reader index {self.reader} outside [0, {self.topology.num_onis - 1}]"
            )

    # ------------------------------------------------------------------ structure
    @property
    def writers(self) -> List[int]:
        """Indices of the ONIs writing on this channel."""
        return [i for i in range(self.topology.num_onis) if i != self.reader]

    @property
    def num_wavelengths(self) -> int:
        """Wavelengths carried by each of the channel's waveguides."""
        return self.config.num_wavelengths

    # ------------------------------------------------------------------ losses
    def _path_loss_db(self, distance_m: float, intermediate_writers: int) -> float:
        """Loss of a writer→reader path given its geometry.

        Mirrors :class:`repro.link.power_budget.LinkPowerBudget` but with the
        actual distance and intermediate-writer count of the specific writer
        instead of the worst case.
        """
        cfg = self.config
        waveguide_db = cfg.waveguide_loss_db_per_cm * distance_m * 100.0
        own_writer_db = (
            (cfg.num_wavelengths - 1) * cfg.ring_through_loss_db
            + cfg.modulator_insertion_loss_db
        )
        intermediate_db = intermediate_writers * cfg.num_wavelengths * cfg.ring_through_loss_db
        reader_db = (cfg.num_wavelengths - 1) * cfg.ring_through_loss_db + cfg.ring_drop_loss_db
        er = db_to_linear(cfg.extinction_ratio_db)
        er_penalty_db = -10.0 * math.log10(1.0 - 1.0 / er)
        return (
            cfg.mux_insertion_loss_db
            + waveguide_db
            + own_writer_db
            + intermediate_db
            + reader_db
            + er_penalty_db
        )

    def writer_path(self, writer: int) -> WriterPath:
        """Loss budget of one writer's path to the reader."""
        if writer == self.reader:
            raise ConfigurationError("the reader does not write on its own channel")
        distance = self.topology.downstream_distance(writer, self.reader)
        crossed = self.topology.onis_crossed(writer, self.reader)
        intermediate = len(crossed)
        loss = self._path_loss_db(distance, intermediate)
        return WriterPath(
            writer=writer,
            reader=self.reader,
            distance_m=distance,
            intermediate_writers=intermediate,
            loss_db=loss,
        )

    def all_writer_paths(self) -> Dict[int, WriterPath]:
        """Loss budgets of every writer on the channel."""
        return {writer: self.writer_path(writer) for writer in self.writers}

    def worst_case_path(self) -> WriterPath:
        """The highest-loss writer path (the one the laser must be sized for)."""
        return max(self.all_writer_paths().values(), key=lambda path: path.loss_db)

    @property
    def crosstalk_ratio(self) -> float:
        """Worst-case crosstalk ratio at the reader (same for every writer)."""
        return CrosstalkModel.from_config(self.config).worst_case_ratio()

    # ------------------------------------------------------------------ bandwidth
    @property
    def raw_bandwidth_bits_per_s(self) -> float:
        """Raw channel bandwidth over all waveguides and wavelengths."""
        return (
            self.config.num_waveguides_per_channel
            * self.config.num_wavelengths
            * self.config.modulation_rate_hz
        )

    def effective_bandwidth_bits_per_s(self, code) -> float:
        """Useful bandwidth when the channel runs a given coding scheme."""
        return self.raw_bandwidth_bits_per_s * code.code_rate
