"""Tests for the BER/SNR relations (paper Eq. 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.ber import (
    raw_ber_from_snr,
    required_raw_ber,
    required_snr,
    snr_from_ber,
    snr_margin_db,
)
from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.coding.uncoded import UncodedScheme
from repro.exceptions import ConfigurationError


class TestEquationThree:
    def test_zero_snr_gives_half(self):
        assert raw_ber_from_snr(0.0) == pytest.approx(0.5)

    def test_known_value_snr_nine(self):
        # erfc(3) / 2 ~ 1.1045e-5.
        assert raw_ber_from_snr(9.0) == pytest.approx(1.1045e-5, rel=1e-3)

    def test_monotonically_decreasing(self):
        snrs = np.linspace(0.0, 25.0, 50)
        bers = raw_ber_from_snr(snrs)
        assert np.all(np.diff(bers) < 0)

    def test_vectorised(self):
        result = raw_ber_from_snr(np.array([1.0, 4.0, 9.0]))
        assert result.shape == (3,)

    def test_rejects_negative_snr(self):
        with pytest.raises(ConfigurationError):
            raw_ber_from_snr(-1.0)


class TestEquationOneInversion:
    @pytest.mark.parametrize("ber", [1e-3, 1e-6, 1e-9, 1e-11, 1e-12, 1e-15])
    def test_round_trip(self, ber):
        assert raw_ber_from_snr(snr_from_ber(ber)) == pytest.approx(ber, rel=1e-6)

    def test_lower_ber_needs_higher_snr(self):
        assert snr_from_ber(1e-12) > snr_from_ber(1e-9) > snr_from_ber(1e-6)

    def test_ber_1e11_requires_about_22_5(self):
        # The operating point behind the paper's Figure 5 uncoded curve.
        assert snr_from_ber(1e-11) == pytest.approx(22.5, abs=0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            snr_from_ber(0.0)
        with pytest.raises(ConfigurationError):
            snr_from_ber(0.5)


class TestRequiredSnrWithCodes:
    def test_uncoded_matches_direct_inversion(self):
        assert required_snr(UncodedScheme(64), 1e-11) == pytest.approx(snr_from_ber(1e-11))

    def test_coding_lowers_the_required_snr(self):
        target = 1e-11
        uncoded = required_snr(UncodedScheme(64), target)
        h71 = required_snr(ShortenedHammingCode(64), target)
        h74 = required_snr(HammingCode(3), target)
        assert h74 < h71 < uncoded

    def test_snr_reduction_is_roughly_half_at_1e11(self):
        # This is the mechanism behind the ~50% laser power reduction.
        target = 1e-11
        ratio = required_snr(HammingCode(3), target) / required_snr(UncodedScheme(64), target)
        assert 0.4 < ratio < 0.6

    def test_required_raw_ber_ordering(self):
        target = 1e-9
        assert (
            required_raw_ber(HammingCode(3), target)
            > required_raw_ber(ShortenedHammingCode(64), target)
            > required_raw_ber(UncodedScheme(64), target)
        )


class TestSnrMargin:
    def test_positive_margin(self):
        assert snr_margin_db(20.0, 10.0) == pytest.approx(3.0103, rel=1e-3)

    def test_zero_margin(self):
        assert snr_margin_db(10.0, 10.0) == pytest.approx(0.0, abs=1e-9)

    def test_negative_margin(self):
        assert snr_margin_db(5.0, 10.0) < 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            snr_margin_db(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            snr_margin_db(10.0, 0.0)
