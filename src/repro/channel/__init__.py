"""Channel abstractions and BER/SNR mathematics.

* :mod:`repro.channel.ber` — the paper's Eq. 1–3: conversions between raw
  bit error probability and electrical SNR for OOK detection, plus the
  required-SNR solver for coded transmissions.
* :mod:`repro.channel.bsc` — binary symmetric channel used by the
  Monte-Carlo validation.
* :mod:`repro.channel.awgn` — OOK-over-AWGN channel with finite extinction
  ratio; bridges the photonic power levels and the bit-level simulators.
"""

from .ber import (
    raw_ber_from_snr,
    required_raw_ber,
    required_snr,
    snr_from_ber,
    snr_margin_db,
)
from .bsc import BinarySymmetricChannel
from .awgn import OOKAWGNChannel

__all__ = [
    "raw_ber_from_snr",
    "snr_from_ber",
    "required_raw_ber",
    "required_snr",
    "snr_margin_db",
    "BinarySymmetricChannel",
    "OOKAWGNChannel",
]
