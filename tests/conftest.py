"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, PaperConfig
from repro.interfaces.synthesis import synthesize_interfaces
from repro.link.design import OpticalLinkDesigner


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def paper_config() -> PaperConfig:
    """The paper's default evaluation configuration."""
    return DEFAULT_CONFIG


@pytest.fixture(scope="session")
def designer() -> OpticalLinkDesigner:
    """A link designer built on the paper configuration (session-cached)."""
    return OpticalLinkDesigner()


@pytest.fixture(scope="session")
def synthesis_report():
    """The Table I synthesis report (session-cached, it never changes)."""
    return synthesize_interfaces()
