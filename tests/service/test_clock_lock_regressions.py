"""Regression tests for the monotonic-clock and lock-discipline fixes.

The ``repro-lint`` RPR201 analyzer flagged several unguarded accesses to
lock-protected state in the service layer, and the backoff/lease machinery
used wall-clock time for in-process deadlines.  Each fix gets a test here
so the bugs cannot quietly come back:

* retry backoff and claim eligibility run on ``time.monotonic()`` — a
  wall-clock step (NTP, DST) must neither fire a retry early nor starve it;
* monotonic deadlines are meaningless across a process boundary, so queue
  recovery resets any persisted ``not_before_s`` from the dead process;
* :class:`PersistentDesignCache` and :class:`ResultsStore` internals are
  consistent under concurrent hammering (the racy reads ran fine when
  single-threaded, which is exactly why chaos tests missed them).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.service.models import Job, JobState
from repro.service.queue import DurableJobQueue
from repro.service.store import PersistentDesignCache


def _job(job_id: str = "a" * 16, **overrides) -> Job:
    defaults = dict(job_id=job_id, experiment="table1", options=None)
    defaults.update(overrides)
    return Job(**defaults)


@dataclass
class _FakePoint:
    """Stands in for LinkDesignPoint in cache-hammer tests (any dataclass
    with the right shape round-trips through the JSON spool)."""

    launch_power_dbm: float


class TestMonotonicBackoff:
    def test_default_claim_clock_is_monotonic(self, tmp_path, monkeypatch):
        """A huge wall-clock jump must not make a backed-off job eligible."""
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(_job())
        queue.transition("a" * 16, JobState.RUNNING)
        queue.transition("a" * 16, JobState.FAILED, error="x", charge_attempt=True)
        queue.transition(
            "a" * 16, JobState.QUEUED, error="x", not_before_s=time.monotonic() + 3600.0
        )
        # Jump the wall clock a year ahead; the monotonic deadline is
        # unaffected, so the job stays in backoff.
        monkeypatch.setattr(time, "time", lambda: time.monotonic() + 365 * 86400.0)
        assert queue.claim_next() is None
        assert queue.next_retry_delay_s() > 3500.0

    def test_deadline_passes_on_the_monotonic_clock(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(_job(not_before_s=time.monotonic() + 0.05))
        assert queue.claim_next() is None
        deadline = time.monotonic() + 5.0
        while queue.claim_next() is None:
            assert time.monotonic() < deadline, "backoff never expired"
            time.sleep(0.01)

    def test_wall_clock_fields_remain_wall_clock(self, tmp_path):
        """created_s/updated_s are human-facing and must stay near time.time()."""
        queue = DurableJobQueue(str(tmp_path))
        job, _ = queue.submit(_job())
        now = time.time()
        assert abs(job.created_s - now) < 60.0
        assert abs(job.updated_s - now) < 60.0


class TestRecoveryResetsMonotonicDeadlines:
    def test_backed_off_job_is_immediately_eligible_after_restart(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(_job())
        queue.transition("a" * 16, JobState.RUNNING)
        queue.transition("a" * 16, JobState.FAILED, error="x", charge_attempt=True)
        # A deadline far in this process's monotonic future.  In a new
        # process the monotonic epoch restarts, so the raw value could
        # mean "wait a week" — recovery must zero it instead.
        queue.transition(
            "a" * 16, JobState.QUEUED, error="x", not_before_s=time.monotonic() + 1e6
        )

        reborn = DurableJobQueue(str(tmp_path))
        job = reborn.get("a" * 16)
        assert job.state == JobState.QUEUED
        assert job.not_before_s == 0.0
        assert job.attempts == 1  # history still survives recovery
        assert reborn.claim_next() is not None

    def test_rescheduled_is_not_a_state_transition(self):
        job = _job(not_before_s=123.0).transitioned(JobState.RUNNING)
        job = job.transitioned(JobState.QUEUED, not_before_s=500.0)
        moved = job.rescheduled(0.0)
        assert moved.state == JobState.QUEUED
        assert moved.not_before_s == 0.0
        assert moved.attempts == job.attempts
        assert moved.updated_s >= job.updated_s


class TestCacheLockDiscipline:
    def test_concurrent_store_and_load_stay_consistent(self, tmp_path):
        """Hammer the cache from many threads; the RPR201 fix put ``_points``
        reads (``load``/``__len__``) under the same lock as writes."""
        path = str(tmp_path / "cache.jsonl")
        cache = PersistentDesignCache(path)
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(worker_id: int) -> None:
            try:
                barrier.wait()
                for i in range(50):
                    key = ("code", worker_id, i, 1e-12)
                    cache.store(key, _FakePoint(launch_power_dbm=float(i)))
                    len(cache)
                    loaded = cache.load(("code", worker_id, i, 1e-12))
                    # Schema drift makes load() return None; absence of the
                    # record would too — either way no exception may escape.
                    assert loaded is None or loaded.launch_power_dbm == float(i)
            except BaseException as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) == 8 * 50
        # Every record hit the spool exactly once (store holds the lock
        # across the membership check and the append).
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 8 * 50
