"""Parallel sweep orchestrator: shard, fan out, checkpoint, merge.

Every experiment module exposes a *grid descriptor* — three functions that
decompose its sweep into independent, JSON-serializable shards:

* ``sweep_shards(config, options)`` lists the shard parameter dicts (the
  grid: BER chunks for Figure 5, (code, target) Monte-Carlo points for the
  validation sweep, a single ``{}`` for indivisible experiments);
* ``run_sweep_shard(params, config)`` computes one shard and returns a
  JSON payload;
* ``merge_sweep(payloads, config, options)`` assembles the ordered payloads
  into the final ``(text report, CSV rows)`` pair.

:func:`run_experiment` drives those descriptors either serially or through
a process pool (``jobs > 1``).  Three properties make the parallel run
byte-identical to the serial one:

1. shards never share state — stochastic shards rebuild their generator
   from ``SeedSequence(seed, spawn_key=(index,))`` (see
   :func:`repro.coding.montecarlo.shard_seed_sequences`), so the outcome
   depends only on the grid position, not on scheduling;
2. payloads are reduced to plain JSON types the moment they are produced,
   so the in-process, pickled-over-a-pipe and reloaded-from-checkpoint
   paths all carry exactly the same values (JSON round-trips floats
   losslessly);
3. merging consumes payloads in grid order regardless of completion order.

When a ``checkpoint_dir`` is given, completed shards are flushed to
``<dir>/<experiment>.json`` (atomically, after every shard) together with a
fingerprint of the grid; ``resume=True`` reloads any checkpoint whose
fingerprint still matches and only runs the missing shards.  An interrupted
eight-hour sweep therefore restarts where it stopped, and a finished one
merges instantly.

The pooled path is additionally hardened against the two ways long sweeps
die in practice:

* **worker death** (OOM killer, segfault, operator ``kill -9``) breaks the
  process pool; the orchestrator rebuilds it, charges every interrupted
  shard one attempt and re-runs them — shard seeds are position-keyed, so a
  re-run is byte-identical to an uninterrupted one;
* **worker hangs** are bounded by an optional per-shard wall-clock timeout
  (``shard_timeout_s``): overdue workers are terminated, the overdue shards
  charged an attempt and requeued, innocent in-flight shards requeued for
  free.

A shard whose attempts exceed ``max_shard_retries``, or that raises a
deterministic exception, aborts the sweep with a
:class:`~repro.exceptions.ShardExecutionError` naming the failing shard's
parameters.  Checkpoints are written as a checksummed JSON-lines file
(header + one record per shard); a truncated or bit-flipped checkpoint is
quarantined (renamed to ``*.corrupt``) and its surviving records resumed.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import multiprocessing
import os
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError, ShardExecutionError, SweepCancelled
from ..obs import manifest as obs_manifest
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.logutil import shard_logging_context
from . import (
    adaptive,
    availability,
    calibration,
    figure3,
    figure4,
    figure5,
    figure6,
    headline,
    network,
    table1,
    validation,
)

__all__ = [
    "GridFunctions",
    "ExperimentGrid",
    "SweepProgress",
    "available_experiments",
    "describe_grid",
    "register_experiment",
    "run_experiment",
    "checkpoint_path",
]

logger = logging.getLogger("repro.experiments.orchestrator")


@dataclass(frozen=True)
class SweepProgress:
    """One progress heartbeat, emitted after every shard that lands.

    ``events_processed`` sums the ``netsim.events.total`` counters of the
    shard snapshots collected so far (zero when metric collection is off or
    the experiment runs no simulator), so a consumer can derive an events/s
    rate; ``elapsed_s`` is monotonic time since the sweep started;
    ``retries`` counts the failed attempts (worker deaths, timeouts)
    charged so far, which the ETA must account for — their wall-clock cost
    sits in ``elapsed_s`` without producing a shard.
    """

    experiment: str
    shards_total: int
    shards_done: int
    shards_resumed: int
    events_processed: int
    elapsed_s: float
    retries: int = 0

    @property
    def eta_s(self) -> float | None:
        """Remaining-time estimate from the mean *attempt* rate so far.

        ``None`` means "no basis for an estimate yet": nothing has executed
        in this process (everything done so far was resumed from a
        checkpoint) or no time has elapsed.  A finished sweep reports
        ``0.0`` even when every shard was resumed.  Failed attempts count
        in the denominator — they consumed elapsed time like a completed
        shard did — so a sweep that retried heavily projects the per-attempt
        cost instead of inflating the per-success cost (the pre-fix skew).
        """
        remaining = self.shards_total - self.shards_done
        if remaining <= 0:
            return 0.0
        fresh = self.shards_done - self.shards_resumed
        if fresh <= 0 or self.elapsed_s <= 0.0:
            return None
        attempts = fresh + max(0, self.retries)
        return remaining * (self.elapsed_s / attempts)


@dataclass(frozen=True)
class GridFunctions:
    """The three grid-descriptor callables of one experiment."""

    shards: Callable[..., List[dict]]
    run_shard: Callable[..., dict]
    merge: Callable[..., tuple]


#: Registry mapping experiment names to their grid descriptors.  Populated at
#: import time so worker processes (which re-import this module) can dispatch
#: shards by experiment name alone.
_GRIDS: Dict[str, GridFunctions] = {
    "table1": GridFunctions(table1.sweep_shards, table1.run_sweep_shard, table1.merge_sweep),
    "validation": GridFunctions(
        validation.sweep_shards, validation.run_sweep_shard, validation.merge_sweep
    ),
    "figure3": GridFunctions(figure3.sweep_shards, figure3.run_sweep_shard, figure3.merge_sweep),
    "figure4": GridFunctions(figure4.sweep_shards, figure4.run_sweep_shard, figure4.merge_sweep),
    "figure5": GridFunctions(figure5.sweep_shards, figure5.run_sweep_shard, figure5.merge_sweep),
    "figure6a": GridFunctions(
        figure6.figure6a_sweep_shards,
        figure6.run_figure6a_sweep_shard,
        figure6.merge_figure6a_sweep,
    ),
    "figure6b": GridFunctions(
        figure6.figure6b_sweep_shards,
        figure6.run_figure6b_sweep_shard,
        figure6.merge_figure6b_sweep,
    ),
    "headline": GridFunctions(headline.sweep_shards, headline.run_sweep_shard, headline.merge_sweep),
    "calibration": GridFunctions(
        calibration.sweep_shards, calibration.run_sweep_shard, calibration.merge_sweep
    ),
    "network": GridFunctions(network.sweep_shards, network.run_sweep_shard, network.merge_sweep),
    "adaptive": GridFunctions(adaptive.sweep_shards, adaptive.run_sweep_shard, adaptive.merge_sweep),
    "availability": GridFunctions(
        availability.sweep_shards, availability.run_sweep_shard, availability.merge_sweep
    ),
}


def available_experiments() -> list[str]:
    """Sorted names of the experiments the orchestrator can run."""
    return sorted(_GRIDS)


def register_experiment(name: str, functions: GridFunctions, *, replace: bool = False) -> None:
    """Register an extra grid descriptor under ``name``.

    Meant for test harnesses and out-of-tree experiments.  Workers dispatch
    shards by experiment name through this registry, so with the default
    ``fork`` start method a registration made before the pool spins up is
    visible inside the workers too.
    """
    if name in _GRIDS and not replace:
        raise ConfigurationError(f"experiment {name!r} is already registered")
    _GRIDS[name] = functions


@dataclass(frozen=True)
class ExperimentGrid:
    """A fully described sweep: the shard list plus its identity fingerprint."""

    experiment: str
    shard_params: tuple
    options: dict | None

    @property
    def fingerprint(self) -> str:
        """Hash identifying the grid; a checkpoint is only valid if it matches."""
        canonical = json.dumps(
            {
                "experiment": self.experiment,
                "shards": list(self.shard_params),
                "options": self.options,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def describe_grid(
    experiment: str,
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> ExperimentGrid:
    """Build the grid descriptor of one experiment (without running it)."""
    functions = _grid_functions(experiment)
    shards = tuple(_jsonable(params) for params in functions.shards(config, options))
    return ExperimentGrid(experiment=experiment, shard_params=shards, options=options)


def checkpoint_path(checkpoint_dir: str, experiment: str) -> str:
    """Location of one experiment's checkpoint inside a checkpoint directory."""
    return os.path.join(checkpoint_dir, f"{experiment}.json")


def run_experiment(
    experiment: str,
    *,
    config: PaperConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    options: dict | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    shard_timeout_s: float | None = None,
    max_shard_retries: int = 2,
    collect_metrics: bool | None = None,
    manifest_dir: str | None = None,
    progress: "Callable[[SweepProgress], None] | None" = None,
    cancel: "Callable[[], bool] | None" = None,
) -> tuple[str, list[dict]]:
    """Run one experiment's full grid and return ``(text report, CSV rows)``.

    Parameters
    ----------
    experiment:
        A name from :func:`available_experiments`.
    config:
        Evaluation parameters; must be picklable when ``jobs > 1``.
    jobs:
        Number of worker processes.  ``1`` (the default) runs the shards
        in-process; the report is byte-identical either way.
    options:
        Experiment-specific grid overrides (e.g. ``{"target_bers": [...]}``
        for ``figure5``); must be JSON-serializable since they are part of
        the checkpoint fingerprint.
    checkpoint_dir:
        When given, completed shards are persisted there after every shard,
        so an interrupted sweep loses at most one shard of work.
    resume:
        Reuse the payloads of a matching checkpoint and run only the
        missing shards.  Requires ``checkpoint_dir``.
    shard_timeout_s:
        Pooled runs only: wall-clock budget per shard attempt.  Overdue
        workers are terminated and their shards retried on a fresh pool.
    max_shard_retries:
        Pooled runs only: how many times one shard may be re-attempted
        after its worker died or timed out before the sweep aborts with a
        :class:`~repro.exceptions.ShardExecutionError`.
    collect_metrics:
        Collect a per-shard metrics snapshot (an isolated registry scoped
        around each shard, so collection never perturbs shard results).
        Defaults to ``True`` exactly when a ``manifest_dir`` is given.
    manifest_dir:
        When given, a run manifest (provenance record + exactly merged
        shard metrics; see :mod:`repro.obs.manifest`) is written there
        after the sweep completes.
    progress:
        Callback invoked with a :class:`SweepProgress` after every shard
        that lands (and once for the resumed batch).
    cancel:
        Cooperative cancellation hook, polled between shards (serial) or
        between pool waits (pooled).  When it returns true the sweep stops
        cleanly: in-flight work is abandoned, the checkpoint holds every
        shard that landed, and :class:`~repro.exceptions.SweepCancelled`
        is raised — rerunning with ``resume=True`` picks up exactly where
        the cancellation struck.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    if resume and checkpoint_dir is None:
        raise ConfigurationError("resume requires a checkpoint directory")
    if shard_timeout_s is not None and shard_timeout_s <= 0.0:
        raise ConfigurationError("shard timeout must be positive")
    if max_shard_retries < 0:
        raise ConfigurationError("shard retry budget cannot be negative")
    functions = _grid_functions(experiment)
    grid = describe_grid(experiment, config, options)
    collect = collect_metrics if collect_metrics is not None else manifest_dir is not None
    wall_start = time.perf_counter()
    cpu_start = _cpu_seconds()

    completed: Dict[int, Any] = {}
    if resume and checkpoint_dir is not None:
        completed = _load_checkpoint(checkpoint_dir, grid)
        if completed:
            logger.info(
                "%s: resumed %d/%d shards from checkpoint",
                experiment,
                len(completed),
                len(grid.shard_params),
            )
    resumed = sorted(completed)
    pending = [index for index in range(len(grid.shard_params)) if index not in completed]
    #: Shard index -> metrics snapshot (``None`` for resumed shards, whose
    #: execution was never observed).
    shard_metrics: Dict[int, dict | None] = {index: None for index in resumed}
    stats = {
        "shards_total": len(grid.shard_params),
        "shards_completed": 0,
        "shards_resumed": len(resumed),
        "retries": 0,
        "timeouts": 0,
        "pool_rebuilds": 0,
        "checkpoint_writes": 0,
        "checkpoint_bytes": 0,
    }
    _notify_progress(progress, grid, stats, shard_metrics, wall_start)

    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            if cancel is not None and cancel():
                raise SweepCancelled(
                    experiment,
                    stats["shards_completed"] + stats["shards_resumed"],
                    len(grid.shard_params),
                )
            payload, snapshot = _execute_shard(
                experiment, grid.shard_params[index], config, index=index, collect=collect
            )
            completed[index] = payload
            shard_metrics[index] = snapshot
            stats["shards_completed"] += 1
            logger.debug("%s: shard %d landed", experiment, index)
            if checkpoint_dir is not None:
                _write_checkpoint(checkpoint_dir, grid, completed, stats)
            _notify_progress(progress, grid, stats, shard_metrics, wall_start)
    else:
        _run_shards_pooled(
            grid,
            pending,
            completed,
            config,
            jobs,
            checkpoint_dir,
            shard_timeout_s=shard_timeout_s,
            max_shard_retries=max_shard_retries,
            collect=collect,
            shard_metrics=shard_metrics,
            stats=stats,
            progress=progress,
            wall_start=wall_start,
            cancel=cancel,
        )

    payloads = [completed[index] for index in range(len(grid.shard_params))]
    merged = functions.merge(payloads, config, options)
    parent_registry = obs_metrics.ACTIVE
    if parent_registry is not None:
        _publish_orchestrator_stats(parent_registry, stats)
    if manifest_dir is not None:
        _write_run_manifest(
            manifest_dir,
            grid,
            shard_metrics,
            resumed=resumed,
            stats=stats,
            invocation={
                "jobs": jobs,
                "resume": bool(resume),
                "checkpointed": checkpoint_dir is not None,
                "collect_metrics": bool(collect),
            },
            timing={
                "wall_s": round(time.perf_counter() - wall_start, 6),
                "cpu_s": round(_cpu_seconds() - cpu_start, 6),
            },
        )
    return merged


# ------------------------------------------------------------------ internals
def _grid_functions(experiment: str) -> GridFunctions:
    try:
        return _GRIDS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment!r}; available: {available_experiments()}"
        ) from None


def _execute_shard(
    experiment: str,
    params: dict,
    config: PaperConfig,
    index: int = 0,
    collect: bool = False,
) -> tuple[Any, dict | None]:
    """Worker entry point: run one shard and reduce it to JSON types.

    Module-level so it pickles by reference into worker processes, which
    re-import this module and dispatch through the same registry.  Returns
    ``(payload, metrics snapshot or None)`` — the snapshot is a side
    channel that never enters the payload, so checkpoints stay
    byte-identical whether collection is on or off.  Each shard observes an
    isolated registry (scoped via :func:`repro.obs.metrics.collecting`), so
    serial and pooled runs produce the same per-shard snapshots.
    """
    tracer = obs_tracing.ACTIVE
    span = (
        tracer.span("orchestrator.shard", experiment=experiment, index=index)
        if tracer is not None
        else contextlib.nullcontext()
    )
    with shard_logging_context(index), span:
        if not collect:
            return _jsonable(_GRIDS[experiment].run_shard(params, config)), None
        with obs_metrics.collecting() as registry:
            payload = _jsonable(_GRIDS[experiment].run_shard(params, config))
        return payload, registry.snapshot()


def _cpu_seconds() -> float:
    """Process CPU time including reaped children (pooled shard workers)."""
    times = os.times()
    return times.user + times.system + times.children_user + times.children_system


def _notify_progress(
    progress: "Callable[[SweepProgress], None] | None",
    grid: ExperimentGrid,
    stats: Dict[str, int],
    shard_metrics: Dict[int, dict | None],
    wall_start: float,
) -> None:
    if progress is None:
        return
    events = 0
    for snapshot in shard_metrics.values():
        if snapshot is not None:
            events += snapshot.get("counters", {}).get("netsim.events.total", 0)
    progress(
        SweepProgress(
            experiment=grid.experiment,
            shards_total=len(grid.shard_params),
            shards_done=stats["shards_completed"] + stats["shards_resumed"],
            shards_resumed=stats["shards_resumed"],
            events_processed=events,
            elapsed_s=time.perf_counter() - wall_start,
            retries=stats.get("retries", 0),
        )
    )


def _publish_orchestrator_stats(registry, stats: Dict[str, int]) -> None:
    """Fold one sweep's lifecycle accounting into an ambient registry."""
    registry.inc("orchestrator.sweeps")
    for name in (
        "shards_completed",
        "shards_resumed",
        "retries",
        "timeouts",
        "pool_rebuilds",
        "checkpoint_writes",
        "checkpoint_bytes",
    ):
        registry.inc(f"orchestrator.{name}", stats[name])


def _write_run_manifest(
    manifest_dir: str,
    grid: ExperimentGrid,
    shard_metrics: Dict[int, dict | None],
    *,
    resumed: Sequence[int],
    stats: Dict[str, int],
    invocation: dict,
    timing: dict,
) -> str:
    manifest = obs_manifest.build_manifest(
        experiment=grid.experiment,
        fingerprint=grid.fingerprint,
        options=grid.options,
        shard_params=list(grid.shard_params),
        shard_metrics=shard_metrics,
        resumed=resumed,
        invocation=invocation,
        orchestrator=dict(stats),
        timing=timing,
    )
    path = obs_manifest.manifest_path(manifest_dir, grid.experiment)
    tracer = obs_tracing.ACTIVE
    if tracer is None:
        obs_manifest.write_manifest(path, manifest)
    else:
        with tracer.span("orchestrator.manifest_write", experiment=grid.experiment):
            obs_manifest.write_manifest(path, manifest)
    logger.info("%s: run manifest written to %s", grid.experiment, path)
    return path


def _pool_context():
    if "fork" in multiprocessing.get_all_start_methods():
        # Fork keeps worker start-up in the millisecond range (no numpy/scipy
        # re-import), which is what makes parallelism pay off even for
        # sub-second analytic sweeps.
        return multiprocessing.get_context("fork")
    return None


def _terminate_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly kill a pool's workers (a hung worker never exits by itself)."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:  # already gone
            pass


def _charge_attempt(
    attempts: Dict[int, int],
    index: int,
    grid: ExperimentGrid,
    max_shard_retries: int,
    reason: str,
) -> None:
    """Charge one failed attempt against a shard's retry budget."""
    attempts[index] = attempts.get(index, 0) + 1
    if attempts[index] > max_shard_retries:
        raise ShardExecutionError(
            grid.experiment,
            index,
            grid.shard_params[index],
            f"{reason}; gave up after {max_shard_retries} retries",
        )


def _run_shards_pooled(
    grid: ExperimentGrid,
    pending: Sequence[int],
    completed: Dict[int, Any],
    config: PaperConfig,
    jobs: int,
    checkpoint_dir: str | None,
    *,
    shard_timeout_s: float | None = None,
    max_shard_retries: int = 2,
    collect: bool = False,
    shard_metrics: Dict[int, "dict | None"] | None = None,
    stats: Dict[str, int] | None = None,
    progress: "Callable[[SweepProgress], None] | None" = None,
    wall_start: float = 0.0,
    cancel: "Callable[[], bool] | None" = None,
) -> None:
    """Fan the pending shards out over a process pool, checkpointing as they land.

    At most ``workers`` shards are in flight at once (a sliding window, so
    a shard's wall-clock age is the age of its *own* attempt, not of the
    whole submission batch).  A broken pool (worker death) or an overdue
    shard rebuilds the pool and requeues the interrupted work; shard seeds
    are position-keyed, so re-runs are byte-identical.  Deterministic
    in-shard exceptions abort immediately — retrying cannot change them.
    """
    queue = deque(sorted(pending))
    attempts: Dict[int, int] = {}
    if stats is None:
        stats = {
            "shards_total": len(grid.shard_params),
            "shards_completed": 0,
            "shards_resumed": 0,
            "retries": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "checkpoint_writes": 0,
            "checkpoint_bytes": 0,
        }
    workers = min(jobs, len(queue))
    context = _pool_context()
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    in_flight: Dict[Any, tuple[int, float]] = {}
    try:
        while queue or in_flight:
            if cancel is not None and cancel():
                # Abandon in-flight work without waiting for it: the last
                # checkpoint already holds every landed shard, and hung
                # workers must not be able to stall the drain.
                _terminate_pool_workers(pool)
                raise SweepCancelled(
                    grid.experiment,
                    stats["shards_completed"] + stats["shards_resumed"],
                    len(grid.shard_params),
                )
            while queue and len(in_flight) < workers:
                index = queue.popleft()
                future = pool.submit(
                    _execute_shard,
                    grid.experiment,
                    grid.shard_params[index],
                    config,
                    index,
                    collect,
                )
                in_flight[future] = (index, time.monotonic())
            poll_s = (
                min(0.1, shard_timeout_s / 4.0) if shard_timeout_s is not None else None
            )
            if cancel is not None:
                # Keep the cancellation hook responsive even with no shard
                # timeout configured (wait() would otherwise block until a
                # shard lands, which can be minutes).
                poll_s = min(poll_s, 0.1) if poll_s is not None else 0.1
            done, _ = wait(set(in_flight), timeout=poll_s, return_when=FIRST_COMPLETED)
            landed = False
            broken: List[int] = []
            for future in done:
                index, _started = in_flight.pop(future)
                error = future.exception()
                if error is None:
                    payload, snapshot = future.result()
                    completed[index] = payload
                    if shard_metrics is not None:
                        shard_metrics[index] = snapshot
                    stats["shards_completed"] += 1
                    logger.debug("%s: shard %d landed", grid.experiment, index)
                    landed = True
                elif isinstance(error, BrokenExecutor):
                    # The worker died out from under the pool (OOM kill,
                    # segfault, kill -9); which in-flight shard was guilty
                    # is unknowable, so each interrupted one is charged an
                    # attempt and re-run.
                    broken.append(index)
                else:
                    raise ShardExecutionError(
                        grid.experiment,
                        index,
                        grid.shard_params[index],
                        f"shard raised {type(error).__name__}: {error}",
                    ) from error
            if landed:
                if checkpoint_dir is not None:
                    _write_checkpoint(checkpoint_dir, grid, completed, stats)
                if shard_metrics is not None:
                    _notify_progress(progress, grid, stats, shard_metrics, wall_start)
            if broken:
                # The pool is unusable once broken: requeue everything still
                # in flight (those futures are doomed too) and rebuild.
                broken.extend(index for index, _started in in_flight.values())
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                logger.warning(
                    "%s: worker process died; retrying shards %s on a fresh pool",
                    grid.experiment,
                    sorted(broken),
                )
                for index in sorted(broken, reverse=True):
                    _charge_attempt(
                        attempts, index, grid, max_shard_retries, "worker process died"
                    )
                    stats["retries"] += 1
                    queue.appendleft(index)
                pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
                stats["pool_rebuilds"] += 1
                continue
            if shard_timeout_s is not None and in_flight:
                now = time.monotonic()
                overdue = [
                    (future, index)
                    for future, (index, started) in in_flight.items()
                    if now - started > shard_timeout_s
                ]
                if overdue:
                    # A future cannot be cancelled once running; the only way
                    # to reclaim a hung worker is to kill the pool.  Innocent
                    # in-flight shards are requeued without a charge.
                    logger.warning(
                        "%s: shards %s exceeded the %gs timeout; rebuilding the pool",
                        grid.experiment,
                        sorted(index for _future, index in overdue),
                        shard_timeout_s,
                    )
                    _terminate_pool_workers(pool)
                    pool.shutdown(wait=True, cancel_futures=True)
                    for future, index in overdue:
                        del in_flight[future]
                    survivors = [index for index, _started in in_flight.values()]
                    in_flight.clear()
                    for index in sorted(survivors, reverse=True):
                        queue.appendleft(index)
                    for _future, index in sorted(overdue, key=lambda item: -item[1]):
                        _charge_attempt(
                            attempts,
                            index,
                            grid,
                            max_shard_retries,
                            f"shard exceeded the {shard_timeout_s:g}s timeout",
                        )
                        stats["retries"] += 1
                        stats["timeouts"] += 1
                        queue.appendleft(index)
                    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
                    stats["pool_rebuilds"] += 1
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _jsonable(value: Any) -> Any:
    """Reduce a payload to plain JSON types (dict/list/str/float/int/bool/None).

    Numpy scalars are converted with ``.item()``; tuples become lists.  This
    runs on every shard payload — pooled or not — so all execution paths
    carry identical values and a checkpoint round-trip changes nothing.
    """
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise ConfigurationError(f"shard payload value {value!r} is not JSON-serializable")


def _shard_checksum(index: int, payload: Any) -> str:
    """Integrity hash of one checkpoint record (canonical JSON of its content)."""
    canonical = json.dumps({"index": index, "payload": payload}, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _quarantine_checkpoint(path: str) -> str:
    """Move a damaged checkpoint aside (``*.corrupt``) so it is never reread.

    The rename keeps the evidence for a post-mortem while guaranteeing the
    next write starts from a fresh file.  Returns the quarantine path.
    """
    quarantined = path + ".corrupt"
    try:
        os.replace(path, quarantined)
        logger.warning("quarantined damaged checkpoint %s -> %s", path, quarantined)
    except OSError:
        # Racing writer or permissions: the reload already ignores it.
        logger.warning("could not quarantine damaged checkpoint %s", path)
    return quarantined


def _load_checkpoint(checkpoint_dir: str, grid: ExperimentGrid) -> Dict[int, Any]:
    """Payloads of a previous run, or ``{}`` if absent, corrupt or stale.

    Understands two formats: the current checksummed JSON-lines layout
    (header record + one record per shard) and the legacy single-JSON
    document.  A damaged file is quarantined (renamed to ``*.corrupt``) and
    every record that still checksums clean is salvaged — a truncated tail,
    a bit flip or an interleaved write costs only the damaged shards.  A
    stale fingerprint (the grid changed) is not damage: the checkpoint is
    simply ignored.
    """
    path = checkpoint_path(checkpoint_dir, grid.experiment)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return {}
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        _quarantine_checkpoint(path)
        return {}
    try:
        first = json.loads(lines[0])
    except ValueError:
        first = None
    if isinstance(first, dict) and first.get("kind") == "header":
        return _load_checkpoint_records(path, lines, first, grid)
    # Legacy layout: the whole file is one JSON document.
    try:
        stored = json.loads(text)
    except ValueError:
        _quarantine_checkpoint(path)
        return {}
    if not isinstance(stored, dict):
        _quarantine_checkpoint(path)
        return {}
    if stored.get("fingerprint") != grid.fingerprint:
        return {}
    shards = stored.get("shards", {})
    try:
        return {
            int(index): payload
            for index, payload in shards.items()
            if 0 <= int(index) < len(grid.shard_params)
        }
    except (AttributeError, TypeError, ValueError):
        _quarantine_checkpoint(path)
        return {}


def _load_checkpoint_records(
    path: str, lines: List[str], header: dict, grid: ExperimentGrid
) -> Dict[int, Any]:
    """Salvage the shard records of a JSON-lines checkpoint."""
    if header.get("fingerprint") != grid.fingerprint:
        return {}
    completed: Dict[int, Any] = {}
    damaged = False
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except ValueError:
            damaged = True
            continue
        if not isinstance(record, dict) or record.get("kind") != "shard":
            damaged = True
            continue
        index = record.get("index")
        payload = record.get("payload")
        if (
            not isinstance(index, int)
            or not 0 <= index < len(grid.shard_params)
            or record.get("checksum") != _shard_checksum(index, payload)
        ):
            damaged = True
            continue
        completed[index] = payload
    if damaged:
        _quarantine_checkpoint(path)
    return completed


def _write_checkpoint(
    checkpoint_dir: str,
    grid: ExperimentGrid,
    completed: Dict[int, Any],
    stats: Dict[str, int] | None = None,
) -> None:
    """Atomically persist the completed shards (write-to-temp, then rename).

    JSON-lines layout: a header record identifying the grid, then one
    checksummed record per completed shard, so partial damage is detectable
    and repairable per record on reload.  ``stats`` (when given) accounts
    the write and its byte volume — telemetry only, never file content, so
    checkpoints stay byte-identical with observability on or off.
    """
    os.makedirs(checkpoint_dir, exist_ok=True)
    path = checkpoint_path(checkpoint_dir, grid.experiment)
    lines = [
        json.dumps(
            {
                "kind": "header",
                "experiment": grid.experiment,
                "fingerprint": grid.fingerprint,
                "num_shards": len(grid.shard_params),
            }
        )
    ]
    for index in sorted(completed):
        lines.append(
            json.dumps(
                {
                    "kind": "shard",
                    "index": index,
                    "payload": completed[index],
                    "checksum": _shard_checksum(index, completed[index]),
                }
            )
        )
    body = "\n".join(lines) + "\n"
    tracer = obs_tracing.ACTIVE
    span = (
        tracer.span("orchestrator.checkpoint_write", experiment=grid.experiment, bytes=len(body))
        if tracer is not None
        else contextlib.nullcontext()
    )
    descriptor, temp_path = tempfile.mkstemp(
        dir=checkpoint_dir, prefix=f".{grid.experiment}.", suffix=".tmp"
    )
    try:
        with span:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    if stats is not None:
        stats["checkpoint_writes"] += 1
        stats["checkpoint_bytes"] += len(body)
    logger.debug(
        "%s: checkpoint (%d shards, %d bytes) -> %s",
        grid.experiment,
        len(completed),
        len(body),
        path,
    )
