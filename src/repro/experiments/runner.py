"""Command-line runner regenerating every table and figure of the paper.

Usage::

    python -m repro.experiments.runner             # run everything
    python -m repro.experiments.runner figure5     # run one experiment
    repro-experiments table1 figure6a              # via the console script
    repro-experiments figure5 --jobs 4             # parallel sweep shards
    repro-experiments validation --jobs 4 --checkpoint-dir ckpt
    repro-experiments validation --resume --checkpoint-dir ckpt
    repro-experiments network --progress --metrics # live heartbeat + summary
    repro-experiments obs-report network           # render a run's manifest

Each experiment prints a text report; ``--csv DIR`` additionally writes the
raw series as CSV files for external plotting.  Execution is delegated to
:mod:`repro.experiments.orchestrator`, which shards each experiment's
parameter grid, optionally fans the shards out over ``--jobs`` worker
processes, and — thanks to per-shard deterministic seeding — produces
byte-identical reports at any parallelism.  With ``--checkpoint-dir`` the
completed shards are persisted after each one, so an interrupted sweep
rerun with ``--resume`` picks up where it stopped.

Every invocation also writes a *run manifest* (grid fingerprint, software
versions, wall/CPU time, exactly merged per-shard metrics; see
:mod:`repro.obs.manifest`) next to its checkpoint — into
``--manifest-dir``, the checkpoint directory, or ``.repro-obs`` in that
order of preference.  ``obs-report`` renders those manifests back into
human-readable run reports.  ``--trace FILE`` appends one JSON line per
timed span (shard executions, link-design solves, epoch flushes,
checkpoint writes); none of this instrumentation perturbs any simulation
observable.
"""

from __future__ import annotations

import argparse
import functools
import glob
import logging
import os
import signal
import sys
from typing import Callable, Mapping

from ..exceptions import SweepCancelled
from ..obs import manifest as obs_manifest
from ..obs import tracing as obs_tracing
from ..obs.logutil import setup_logging
from ..obs.report import render_run_report
from .orchestrator import SweepProgress, available_experiments, run_experiment
from .report import rows_to_csv, section

__all__ = ["main", "EXPERIMENTS"]

logger = logging.getLogger("repro.experiments.runner")


class _ExperimentMapping(Mapping):
    """Live read-only view of the orchestrator's experiment registry.

    A snapshot dict taken at import time would go stale the moment
    :func:`~repro.experiments.orchestrator.register_experiment` adds a
    grid (test harnesses and out-of-tree experiments do), and *when* this
    module is first imported relative to those registrations is not under
    our control.
    """

    def __getitem__(self, name: str) -> Callable[..., tuple[str, list[dict]]]:
        if name not in available_experiments():
            raise KeyError(name)
        return functools.partial(run_experiment, name)

    def __iter__(self):
        return iter(available_experiments())

    def __len__(self) -> int:
        return len(available_experiments())


EXPERIMENTS: Mapping = _ExperimentMapping()
"""Mapping from experiment name to a runner producing ``(text, csv rows)``.

Kept for programmatic use (and API compatibility with the pre-orchestrator
runner); each entry executes the experiment's full grid serially.
"""

#: Manifest directory used when neither --manifest-dir nor --checkpoint-dir
#: is given.
DEFAULT_MANIFEST_DIR = ".repro-obs"


def _print_progress(update: SweepProgress) -> None:
    """Heartbeat line on stderr: shards done, event rate, remaining-time guess."""
    rate = update.events_processed / update.elapsed_s if update.elapsed_s > 0 else 0.0
    eta = update.eta_s
    eta_text = f", eta {eta:.0f}s" if eta is not None else ""
    print(
        f"[{update.experiment}] {update.shards_done}/{update.shards_total} shards, "
        f"{rate:,.0f} events/s{eta_text}",
        file=sys.stderr,
        flush=True,
    )


def _metrics_summary(manifest: dict) -> str:
    """Compact post-run counter dump for ``--metrics``."""
    counters = manifest.get("metrics", {}).get("counters", {})
    lines = [f"[metrics] {manifest.get('experiment', '?')}"]
    if not counters:
        lines.append("  (no counters recorded)")
    for name in sorted(counters):
        lines.append(f"  {name} = {counters[name]:,}")
    return "\n".join(lines)


def _obs_report_main(argv: list[str]) -> int:
    """``repro-experiments obs-report``: render run manifests as text."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs-report",
        description="Render the run manifests written by repro-experiments "
        "into human-readable run reports.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiments whose manifests to render (default: every manifest "
        "in the manifest directory)",
    )
    parser.add_argument(
        "--manifest-dir",
        metavar="DIR",
        default=DEFAULT_MANIFEST_DIR,
        help=f"directory holding the manifests (default: {DEFAULT_MANIFEST_DIR})",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="operational log verbosity on stderr (default: warning)",
    )
    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    if args.experiments:
        paths = [
            obs_manifest.manifest_path(args.manifest_dir, name) for name in args.experiments
        ]
    else:
        paths = sorted(glob.glob(os.path.join(args.manifest_dir, "*.manifest.json")))
    if not paths:
        print(f"no run manifests found in {args.manifest_dir!r}", file=sys.stderr)
        return 1
    status = 0
    for path in paths:
        try:
            manifest = obs_manifest.load_manifest(path)
        except (OSError, ValueError) as error:
            logger.error("cannot read manifest %s: %s", path, error)
            status = 1
            continue
        print(render_run_report(manifest))
        print()
    return status


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-experiments``."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs-report":
        return _obs_report_main(list(argv[1:]))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all); available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="directory in which to write one CSV file per experiment",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per experiment (default: 1; reports are "
        "byte-identical at any parallelism)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist completed sweep shards to DIR after each shard",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse matching shards from --checkpoint-dir (default: "
        ".repro-checkpoints) and run only the missing ones",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="pooled runs: kill and retry any shard attempt exceeding this "
        "wall-clock budget",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        metavar="N",
        help="pooled runs: re-attempts per shard after a worker death or "
        "timeout before the sweep aborts (default: 2)",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="operational log verbosity on stderr (default: warning); "
        "reports stay on stdout",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="append one JSON line per timed span (shards, link-design "
        "solves, epoch flushes, checkpoint writes) to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print each experiment's merged counters after its report",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream a per-shard progress heartbeat (shards done, events/s, "
        "ETA) to stderr",
    )
    parser.add_argument(
        "--manifest-dir",
        metavar="DIR",
        default=None,
        help="directory for run manifests (default: --checkpoint-dir if "
        f"given, else {DEFAULT_MANIFEST_DIR})",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        parser.error("--shard-timeout must be positive")
    if args.shard_retries < 0:
        parser.error("--shard-retries cannot be negative")
    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        checkpoint_dir = ".repro-checkpoints"
    manifest_dir = args.manifest_dir
    if manifest_dir is None:
        manifest_dir = checkpoint_dir if checkpoint_dir is not None else DEFAULT_MANIFEST_DIR

    available = available_experiments()
    names = args.experiments if args.experiments else list(available)
    unknown = [name for name in names if name not in available]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; available: {', '.join(available)}"
        )
    setup_logging(args.log_level)
    if args.trace is not None:
        obs_tracing.enable_tracing(args.trace)

    # Graceful interruption: the first SIGTERM/SIGINT flips a flag the
    # orchestrator polls between shards, so the sweep stops at a shard
    # boundary *after* finalizing its checkpoint instead of dying mid-write.
    interrupted: list[int] = []

    def _request_stop(signum, frame) -> None:
        interrupted.append(signum)

    previous_handlers = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    try:
        for name in names:
            try:
                text, rows = run_experiment(
                    name,
                    jobs=args.jobs,
                    checkpoint_dir=checkpoint_dir,
                    resume=args.resume,
                    shard_timeout_s=args.shard_timeout,
                    max_shard_retries=args.shard_retries,
                    manifest_dir=manifest_dir,
                    progress=_print_progress if args.progress else None,
                    cancel=lambda: bool(interrupted),
                )
            except SweepCancelled as stopped:
                signum = interrupted[0] if interrupted else signal.SIGINT
                if checkpoint_dir is not None:
                    hint = (
                        f"resume with: repro-experiments {name} --resume "
                        f"--checkpoint-dir {checkpoint_dir}"
                    )
                else:
                    hint = (
                        "no --checkpoint-dir was given, so completed shards "
                        "were not persisted; a rerun starts fresh"
                    )
                print(
                    f"interrupted by signal {signum}: {stopped}; {hint}",
                    file=sys.stderr,
                    flush=True,
                )
                return 130
            print(section(f"Experiment {name}", text))
            if args.metrics:
                manifest = obs_manifest.load_manifest(
                    obs_manifest.manifest_path(manifest_dir, name)
                )
                print(_metrics_summary(manifest))
            if args.csv:
                os.makedirs(args.csv, exist_ok=True)
                path = os.path.join(args.csv, f"{name}.csv")
                with open(path, "w", encoding="utf-8", newline="") as handle:
                    handle.write(rows_to_csv(rows))
                logger.info("wrote %s", path)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        if args.trace is not None:
            obs_tracing.disable_tracing()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
