"""Operating-point solver: (ECC, target BER) → laser powers.

This is the computational core of the paper's evaluation (Figures 5 and 6):

1. the target post-decoding BER and the selected code fix the raw channel
   BER the link may exhibit (inversion of Eq. 2),
2. the raw BER fixes the required SNR at the photodetector (inversion of
   Eq. 3),
3. the SNR, the worst-case crosstalk and the dark current fix the required
   received signal power (inversion of Eq. 4),
4. the MWSR power budget maps that back to the laser output power
   ``OP_laser``, and
5. the thermally-limited VCSEL model converts ``OP_laser`` into the
   electrical laser power ``P_laser`` — or declares the target unreachable
   when ``OP_laser`` exceeds the 700 uW rating (the paper's BER=1e-12
   "w/o ECC" case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..channel.ber import required_raw_ber, required_snr
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError, InfeasibleDesignError, LaserPowerExceededError
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..photonics.laser import VCSELModel
from ..photonics.photodetector import Photodetector
from .power_budget import LinkPowerBudget

__all__ = ["LinkDesignPoint", "OpticalLinkDesigner"]


@dataclass(frozen=True)
class LinkDesignPoint:
    """A fully solved optical-link operating point for one coding scheme."""

    code_name: str
    target_ber: float
    raw_channel_ber: float
    required_snr: float
    signal_power_w: float
    crosstalk_power_w: float
    laser_output_power_w: float
    laser_electrical_power_w: float
    feasible: bool
    communication_time: float
    code_rate: float

    @property
    def laser_power_mw(self) -> float:
        """Electrical laser power in milliwatts (P_laser as plotted in Fig. 5)."""
        return self.laser_electrical_power_w * 1e3

    @property
    def laser_output_power_uw(self) -> float:
        """Laser optical output power in microwatts (OP_laser of Fig. 4)."""
        return self.laser_output_power_w * 1e6


@dataclass
class OpticalLinkDesigner:
    """Solves link operating points for the paper's MWSR channel.

    Parameters
    ----------
    config:
        Evaluation parameters; defaults to the paper's Section V setup.
    laser:
        Laser model; defaults to the PCM-VCSEL model built from ``config``.
    budget:
        Optical power budget; defaults to the worst-case MWSR budget built
        from ``config``.
    persistent_cache:
        Optional durable tier behind the in-memory design-point cache: any
        object with ``load(key) -> LinkDesignPoint | None`` and
        ``store(key, point)`` where ``key`` is the memoization tuple
        ``(code name, n, k, target_ber)``.  Consulted only on in-memory
        misses and populated after each solve, so a process shared across
        requests (the simulation service) answers repeat queries without
        re-running the crosstalk/brentq chain even across restarts.  See
        :class:`repro.service.store.PersistentDesignCache`.
    """

    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    laser: VCSELModel | None = None
    budget: LinkPowerBudget | None = None
    persistent_cache: object | None = None

    def __post_init__(self) -> None:
        if self.laser is None:
            self.laser = VCSELModel.from_config(self.config)
        if self.budget is None:
            self.budget = LinkPowerBudget(config=self.config)
        self._detector = Photodetector.from_config(self.config)
        # Solved operating points, keyed by code identity and target.  The
        # solve chain (crosstalk scan + two brentq inversions) costs
        # milliseconds, and request-rate consumers (the runtime manager, the
        # network simulator) ask for the same handful of (code, target)
        # pairs millions of times; LinkDesignPoint is frozen, so sharing the
        # instance is safe.
        self._point_cache: dict = {}

    # ------------------------------------------------------------------ solving
    def required_laser_output_power(self, code, target_ber: float) -> float:
        """OP_laser needed for ``code`` to meet ``target_ber`` (ignores rating).

        Because the worst-case crosstalk scales with the common per-channel
        laser power, Eq. 4 becomes

        ``SNR = R * OP_laser * G_sig * (1 - xt) / i_n``

        with ``G_sig`` the signal-path transmission and ``xt`` the crosstalk
        ratio, which is inverted directly.
        """
        return self.design_point(code, target_ber).laser_output_power_w

    def _solve_laser_output_power(self, code, target_ber: float) -> float:
        snr = required_snr(code, target_ber)
        transmission = self.budget.signal_transmission
        crosstalk_ratio = self.budget.crosstalk_ratio
        effective = transmission * (1.0 - crosstalk_ratio)
        if effective <= 0:
            raise ConfigurationError("crosstalk exceeds the signal; link is unusable")
        required_received = self._detector.required_signal_power(snr)
        return required_received / effective

    def cached_point(self, code, target_ber: float) -> "LinkDesignPoint | None":
        """The already-solved point for ``(code, target_ber)``, or ``None``.

        Probes the in-memory tier only — never solves and never touches the
        persistent tier, so it is safe on a latency budget (the service's
        overload ladder uses it to decide whether a query is a cache hit it
        can still serve while shedding).
        """
        key = (getattr(code, "name", type(code).__name__), code.n, code.k, float(target_ber))
        return self._point_cache.get(key)

    def design_point(self, code, target_ber: float) -> LinkDesignPoint:
        """Solve the full operating point for one code and target BER (memoized).

        Infeasible points (laser rating exceeded) are returned with
        ``feasible=False`` and the electrical power the laser *would* need
        according to the droop model, so sweeps can still plot them.
        """
        key = (getattr(code, "name", type(code).__name__), code.n, code.k, float(target_ber))
        cached = self._point_cache.get(key)
        registry = obs_metrics.ACTIVE
        if cached is not None:
            if registry is not None:
                registry.inc("link.design_point.cache_hits")
            return cached
        if self.persistent_cache is not None:
            persisted = self.persistent_cache.load(key)
            if persisted is not None:
                if registry is not None:
                    registry.inc("link.design_point.persistent_hits")
                self._point_cache[key] = persisted
                return persisted
        if registry is not None:
            registry.inc("link.design_point.cache_misses")
        tracer = obs_tracing.ACTIVE
        if tracer is None:
            point = self._solve_design_point(code, target_ber)
        else:
            with tracer.span("link.design_point", code=key[0], target_ber=key[3]):
                point = self._solve_design_point(code, target_ber)
        self._point_cache[key] = point
        if self.persistent_cache is not None:
            self.persistent_cache.store(key, point)
        return point

    def _solve_design_point(self, code, target_ber: float) -> LinkDesignPoint:
        if not 0.0 < target_ber < 0.5:
            raise ConfigurationError("target BER must lie in (0, 0.5)")
        raw = required_raw_ber(code, target_ber)
        snr = required_snr(code, target_ber)
        op_laser = self._solve_laser_output_power(code, target_ber)
        signal = self.budget.received_signal_power(op_laser)
        crosstalk = self.budget.received_crosstalk_power(op_laser)
        feasible = self.laser.can_deliver(op_laser)
        electrical = self.laser.electrical_power(
            op_laser, activity=self.config.chip_activity, enforce_limit=False
        )
        return LinkDesignPoint(
            code_name=getattr(code, "name", type(code).__name__),
            target_ber=float(target_ber),
            raw_channel_ber=float(raw),
            required_snr=float(snr),
            signal_power_w=float(signal),
            crosstalk_power_w=float(crosstalk),
            laser_output_power_w=float(op_laser),
            laser_electrical_power_w=float(electrical),
            feasible=bool(feasible),
            communication_time=float(code.communication_time_overhead),
            code_rate=float(code.code_rate),
        )

    def design_point_strict(self, code, target_ber: float) -> LinkDesignPoint:
        """Like :meth:`design_point` but raise when the laser cannot deliver."""
        point = self.design_point(code, target_ber)
        if not point.feasible:
            raise LaserPowerExceededError(
                point.laser_output_power_w, self.laser.max_output_power_w
            )
        return point

    def sweep_ber(self, code, target_bers: Sequence[float]) -> list[LinkDesignPoint]:
        """Solve operating points over a list of target BERs (Figure 5 axis)."""
        return [self.design_point(code, ber) for ber in target_bers]

    def best_code_for_power_budget(
        self, codes: Sequence, target_ber: float, max_laser_power_w: float
    ) -> LinkDesignPoint:
        """Lowest-CT feasible code whose P_laser fits a power budget.

        Used by the runtime manager: among codes meeting the BER target
        within the laser power budget, prefer the one with the smallest
        communication-time overhead (fastest transmission).
        """
        candidates = []
        for code in codes:
            point = self.design_point(code, target_ber)
            if point.feasible and point.laser_electrical_power_w <= max_laser_power_w:
                candidates.append(point)
        if not candidates:
            raise InfeasibleDesignError(
                f"no code meets BER {target_ber:g} within {max_laser_power_w * 1e3:.2f} mW of laser power"
            )
        return min(candidates, key=lambda p: (p.communication_time, p.laser_electrical_power_w))
