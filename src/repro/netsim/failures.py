"""Hard-fault processes for the network simulator.

:mod:`repro.netsim.dynamics` models *soft* degradation — a raw-BER
multiplier that drifts but never takes the channel away.  Real
silicon-photonic rings also suffer *hard* faults, and this module models the
four the literature reports most often, one deterministic timeline per
destination channel:

* **lane hard-fail** — a microring (or its driver) dies permanently at a
  random instant; the channel never recovers.
* **stuck-ring wavelength loss** — individual wavelengths drop out one at a
  time as rings detune beyond the trimming range; the surviving wavelengths
  keep working.
* **laser aging power droop** — the laser's output power sags with age,
  which at a fixed operating point is a growing raw-BER penalty (a stepwise
  log2-quantised ramp, so the engine's sampler caches stay bounded).
* **transient link blackout** — the channel goes completely dark for a
  bounded interval (e.g. a thermal trip or a re-lock cycle) and then
  returns.

Determinism: every channel's timeline is *compiled once at construction*
from the channel's own ``SeedSequence`` child, exactly like
:class:`~repro.netsim.dynamics.ChannelDriftModel` spawns its processes.
Queries (:meth:`HardFaultModel.health`) are pure bisections into the
compiled timeline — independent of query order, event interleaving or sweep
sharding — and the full transition list is available up front so the engine
can schedule one ``LINK_FAULT`` event per transition and account
availability without polling.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "ChannelHealth",
    "FaultTransition",
    "ChannelFaultTimeline",
    "HardFaultModel",
    "make_fault_model",
    "FAULT_SCENARIOS",
]

#: Quantisation of the droop penalty: 16 steps per octave, matching the
#: drift model's grid so per-sampler failure-probability caches stay small.
_QUANTIZATION_STEPS_PER_OCTAVE = 16


@dataclass(frozen=True, slots=True)
class ChannelHealth:
    """Hard-fault condition of one channel at one instant."""

    #: Wavelengths still usable on the channel (``num_wavelengths`` when
    #: nothing is stuck; 0 only together with ``failed``).
    wavelengths_available: int
    #: Multiplicative raw-BER penalty from laser power droop (>= 1).
    ber_penalty_multiplier: float = 1.0
    #: The channel is inside a transient blackout window (fully dark, but
    #: will recover).
    blacked_out: bool = False
    #: The lane hard-failed; it never carries traffic again.
    failed: bool = False

    @property
    def down(self) -> bool:
        """Whether the channel can carry any traffic right now."""
        return self.failed or self.blacked_out or self.wavelengths_available == 0


@dataclass(frozen=True, slots=True)
class FaultTransition:
    """One health change of one channel (the engine's ``LINK_FAULT`` payload)."""

    time_s: float
    channel: int
    kind: str
    description: str


class ChannelFaultTimeline:
    """The compiled, queryable hard-fault history of one channel.

    Built from primitive fault instants (fail time, per-wavelength loss
    times, droop steps, blackout windows); :meth:`health_at` bisects the
    compiled step function.  Channels are healthy at ``t = 0`` — hard
    faults develop, they are not manufacturing defects.
    """

    def __init__(
        self,
        num_wavelengths: int,
        *,
        fail_time_s: float | None = None,
        wavelength_loss_times_s: Sequence[float] = (),
        droop_steps: Sequence[tuple[float, float]] = (),
        blackout_windows_s: Sequence[tuple[float, float]] = (),
    ):
        if num_wavelengths < 1:
            raise ConfigurationError("a channel needs at least one wavelength")
        self.num_wavelengths = int(num_wavelengths)
        events: List[tuple[float, str, dict]] = []
        if fail_time_s is not None:
            if fail_time_s < 0.0:
                raise ConfigurationError("fault times cannot be negative")
            events.append((float(fail_time_s), "lane-fail", {}))
        for loss_time in sorted(wavelength_loss_times_s):
            if loss_time < 0.0:
                raise ConfigurationError("fault times cannot be negative")
            events.append((float(loss_time), "stuck-ring", {}))
        for step_time, penalty in droop_steps:
            if step_time < 0.0 or penalty < 1.0:
                raise ConfigurationError("droop steps need time >= 0 and penalty >= 1")
            events.append((float(step_time), "laser-droop", {"penalty": float(penalty)}))
        for start, end in _merge_windows(blackout_windows_s):
            events.append((start, "blackout-start", {}))
            events.append((end, "blackout-end", {}))
        # Stable sort keeps same-instant events in primitive order, which is
        # itself deterministic (construction order above).
        events.sort(key=lambda item: item[0])

        self._times: List[float] = []
        self._healths: List[ChannelHealth] = []
        self._transitions: List[FaultTransition] = []
        wavelengths = self.num_wavelengths
        penalty = 1.0
        blacked_out = False
        failed = False
        for time_s, kind, info in events:
            if failed:
                break  # nothing after a hard fail changes anything
            if kind == "lane-fail":
                failed = True
                description = "lane hard-failed (permanent)"
            elif kind == "stuck-ring":
                wavelengths = max(0, wavelengths - 1)
                description = (
                    f"stuck ring: {wavelengths}/{self.num_wavelengths} wavelengths left"
                )
            elif kind == "laser-droop":
                penalty = max(penalty, info["penalty"])
                description = f"laser droop: raw-BER penalty x{penalty:.3f}"
            elif kind == "blackout-start":
                blacked_out = True
                description = "transient blackout begins"
            else:  # blackout-end
                blacked_out = False
                description = "transient blackout ends"
            health = ChannelHealth(
                wavelengths_available=0 if failed else wavelengths,
                ber_penalty_multiplier=penalty,
                blacked_out=blacked_out,
                failed=failed,
            )
            if self._times and self._times[-1] == time_s:
                # Coalesce same-instant events into one step.
                self._healths[-1] = health
            else:
                self._times.append(time_s)
                self._healths.append(health)
            self._transitions.append(
                FaultTransition(time_s=time_s, channel=-1, kind=kind, description=description)
            )
        self._nominal = ChannelHealth(wavelengths_available=self.num_wavelengths)

    def health_at(self, time_s: float) -> ChannelHealth:
        """Health of the channel at ``time_s`` (nominal before the first fault)."""
        if time_s < 0.0:
            raise ConfigurationError("simulation time cannot be negative")
        index = bisect.bisect_right(self._times, time_s)
        if index == 0:
            return self._nominal
        return self._healths[index - 1]

    def transitions(self) -> List[FaultTransition]:
        """Every health change in time order (``channel`` filled by the model)."""
        return list(self._transitions)


def _merge_windows(windows: Sequence[tuple[float, float]]) -> List[tuple[float, float]]:
    """Sort and merge overlapping (start, end) intervals."""
    cleaned = []
    for start, end in windows:
        if start < 0.0 or end <= start:
            raise ConfigurationError("blackout windows need 0 <= start < end")
        cleaned.append((float(start), float(end)))
    cleaned.sort()
    merged: List[tuple[float, float]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class HardFaultModel:
    """Per-channel hard-fault timelines behind one query interface.

    The engine asks two things: :meth:`health` of a channel at a time (per
    attempt) and the global :meth:`transitions` list (scheduled as
    ``LINK_FAULT`` events at run start, driving availability accounting and
    the degradation ladder's reactions).
    """

    def __init__(self, timelines: Sequence[ChannelFaultTimeline]):
        if not timelines:
            raise ConfigurationError("a fault model needs at least one channel")
        wavelengths = {timeline.num_wavelengths for timeline in timelines}
        if len(wavelengths) != 1:
            raise ConfigurationError("every channel must have the same wavelength count")
        self._timelines = list(timelines)
        self.num_channels = len(self._timelines)
        self.num_wavelengths = self._timelines[0].num_wavelengths

    def health(self, channel: int, time_s: float) -> ChannelHealth:
        """Hard-fault condition of ``channel`` at ``time_s``."""
        return self._timelines[channel].health_at(time_s)

    def timeline(self, channel: int) -> ChannelFaultTimeline:
        """The compiled timeline of one channel."""
        return self._timelines[channel]

    def transitions(self) -> List[FaultTransition]:
        """Every channel's health changes, ordered by (time, channel)."""
        merged: List[FaultTransition] = []
        for channel, timeline in enumerate(self._timelines):
            for transition in timeline.transitions():
                merged.append(
                    FaultTransition(
                        time_s=transition.time_s,
                        channel=channel,
                        kind=transition.kind,
                        description=transition.description,
                    )
                )
        merged.sort(key=lambda item: (item.time_s, item.channel))
        return merged

    @property
    def worst_case_penalty(self) -> float:
        """Largest droop raw-BER penalty any channel ever reaches."""
        worst = 1.0
        for timeline in self._timelines:
            for health in timeline._healths:
                worst = max(worst, health.ber_penalty_multiplier)
        return worst


#: Built-in hard-fault scenarios selectable by name in the ``availability``
#: experiment.  ``"mixed"`` draws one of the four primitives per channel.
FAULT_SCENARIOS = ("none", "lane-fail", "stuck-ring", "laser-droop", "blackout", "mixed")


def _quantized_droop_steps(
    peak_penalty: float, droop_time_s: float
) -> List[tuple[float, float]]:
    """Stepwise log2-quantised ramp from nominal to ``peak_penalty``.

    The continuous ramp ``log2 m(t) = (t / T) * log2(peak)`` is emitted as
    one step per 1/16-octave level, so the penalty takes finitely many
    distinct values (bounded sampler caches) and each step is a clean
    transition the engine can schedule.
    """
    if peak_penalty <= 1.0:
        return []
    span = math.log2(peak_penalty)
    steps = max(1, round(span * _QUANTIZATION_STEPS_PER_OCTAVE))
    rows = []
    for step in range(1, steps + 1):
        level = span * step / steps
        rows.append((droop_time_s * step / steps, 2.0 ** level))
    return rows


def make_fault_model(
    scenario: str,
    num_channels: int,
    num_wavelengths: int,
    *,
    seed: int | np.random.SeedSequence | None = None,
    horizon_s: float = 1e-5,
    options: Optional[Dict] = None,
) -> Optional[HardFaultModel]:
    """Build a named hard-fault scenario (``None`` for ``"none"``).

    ``horizon_s`` anchors the fault process to the simulation horizon: fault
    onsets are drawn uniformly inside it, the droop ramp stretches over it
    and blackout windows last a fraction of it.  ``options`` may override
    the per-scenario knobs:

    ``fault_fraction``
        Fraction of channels that develop the scenario's fault at all
        (default 0.5 — the sweep compares degraded and healthy channels in
        one run).
    ``max_wavelength_losses``
        Cap on stuck rings per channel (default: half the wavelengths).
    ``peak_droop_penalty``
        Raw-BER penalty at the end of the droop ramp (default 8).
    ``blackout_duration_fraction``
        Blackout window length as a fraction of the horizon (default 0.1).
    ``blackouts_per_channel``
        Number of blackout windows per affected channel (default 1).

    Draw order per channel is fixed (affected? onset; scenario extras), so a
    given ``(seed, channel)`` always yields the same timeline regardless of
    how many other channels exist or which scenario parameters other
    channels drew.
    """
    if scenario not in FAULT_SCENARIOS:
        raise ConfigurationError(
            f"unknown fault scenario {scenario!r}; available: {FAULT_SCENARIOS}"
        )
    if scenario == "none":
        return None
    if num_channels < 1 or num_wavelengths < 1:
        raise ConfigurationError("a fault model needs channels and wavelengths")
    if horizon_s <= 0.0:
        raise ConfigurationError("fault horizon must be positive")
    options = dict(options or {})
    fault_fraction = float(options.pop("fault_fraction", 0.5))
    if not 0.0 <= fault_fraction <= 1.0:
        raise ConfigurationError("fault fraction must lie in [0, 1]")
    max_losses = int(options.pop("max_wavelength_losses", max(1, num_wavelengths // 2)))
    if not 1 <= max_losses <= num_wavelengths:
        raise ConfigurationError("wavelength losses must lie in [1, num_wavelengths]")
    peak_droop = float(options.pop("peak_droop_penalty", 8.0))
    if peak_droop < 1.0:
        raise ConfigurationError("droop penalty must be at least 1")
    blackout_fraction = float(options.pop("blackout_duration_fraction", 0.1))
    if not 0.0 < blackout_fraction <= 1.0:
        raise ConfigurationError("blackout duration fraction must lie in (0, 1]")
    blackouts = int(options.pop("blackouts_per_channel", 1))
    if blackouts < 1:
        raise ConfigurationError("affected channels need at least one blackout window")
    if options:
        raise ConfigurationError(f"unknown fault options {sorted(options)} for {scenario!r}")

    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = sequence.spawn(num_channels)
    primitives = ("lane-fail", "stuck-ring", "laser-droop", "blackout")

    timelines = []
    for channel in range(num_channels):
        rng = np.random.default_rng(children[channel])
        affected = bool(rng.random() < fault_fraction)
        onset_s = float(rng.uniform(0.0, horizon_s))
        kind = scenario
        if scenario == "mixed":
            kind = primitives[int(rng.integers(0, len(primitives)))]
        if not affected:
            timelines.append(ChannelFaultTimeline(num_wavelengths))
            continue
        if kind == "lane-fail":
            timelines.append(ChannelFaultTimeline(num_wavelengths, fail_time_s=onset_s))
        elif kind == "stuck-ring":
            losses = int(rng.integers(1, max_losses + 1))
            times = np.sort(rng.uniform(onset_s, horizon_s, size=losses))
            timelines.append(
                ChannelFaultTimeline(
                    num_wavelengths, wavelength_loss_times_s=[float(t) for t in times]
                )
            )
        elif kind == "laser-droop":
            # The droop ramps from the onset to the end of the horizon.
            ramp_s = max(horizon_s - onset_s, horizon_s * 1e-3)
            steps = [
                (onset_s + step_time, penalty)
                for step_time, penalty in _quantized_droop_steps(peak_droop, ramp_s)
            ]
            timelines.append(ChannelFaultTimeline(num_wavelengths, droop_steps=steps))
        else:  # blackout
            duration_s = blackout_fraction * horizon_s
            windows = []
            for _ in range(blackouts):
                start = float(rng.uniform(0.0, max(horizon_s - duration_s, horizon_s * 1e-3)))
                windows.append((start, start + duration_s))
            timelines.append(
                ChannelFaultTimeline(num_wavelengths, blackout_windows_s=windows)
            )
    return HardFaultModel(timelines)
