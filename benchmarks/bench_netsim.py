"""Throughput benchmark of the discrete-event network simulator.

Drives :class:`repro.netsim.NetworkSimulator` with uniform traffic at a
moderate load and reports how many simulated packet events and heap events
the engine retires per wall-clock second, writing the comparison to
``benchmarks/BENCH_netsim.json``.  The acceptance gates require the
default probabilistic mode — packet outcomes sampled batch-at-a-time from
the decoder's analytic frame-error probabilities — to clear 100k simulated
packet events per second, and the epoch-batched event engine to retire
>= 10x the reference engine's events/s on the same workload while staying
byte-identical to it; the bit-exact mode (real codewords through the batch
coding API) is timed on a smaller workload for the speedup ratio.
Run either way::

    PYTHONPATH=src python benchmarks/bench_netsim.py
    pytest benchmarks/bench_netsim.py -q
"""

from __future__ import annotations

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import benchlib  # noqa: E402
from repro.experiments.network import request_rate_for_load  # noqa: E402
from repro.netsim import NetworkSimulator  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs import tracing as obs_tracing  # noqa: E402
from repro.traffic.generators import UniformTrafficGenerator  # noqa: E402

NUM_REQUESTS = 2000
PAYLOAD_BITS = 65536
LOAD = 0.5
BITEXACT_REQUESTS = 60
PACKET_EVENT_GATE_PER_SEC = 100_000.0
#: The JSON artefact's acceptance gate: the epoch-batched engine must
#: retire >= 10x the reference engine's events/s on this workload.
ENGINE_SPEEDUP_GATE = 10.0
#: The pytest gate uses a deliberately conservative floor instead — CI
#: runners are noisy and the regression it guards against (losing the
#: batched layout) shows up as ~1x, not ~8x.
ENGINE_SPEEDUP_FLOOR = 4.0
#: Observability overhead gates: with metrics+tracing *disabled* the batched
#: engine must stay >= 0.95x of the stored baseline events/s (the no-op
#: guards must stay free; strict mode only — shared runners are noisy), and
#: with *full* instrumentation enabled it must keep >= 0.80x of the same
#: run's disabled throughput (always asserted — both legs share the noise).
OBS_DISABLED_RATIO_FLOOR = 0.95
OBS_ENABLED_RATIO_FLOOR = 0.80
_JSON_PATH = os.path.join(_HERE, "BENCH_netsim.json")


def _requests(num_requests: int, payload_bits: int, seed: int):
    rate = request_rate_for_load(LOAD, payload_bits=payload_bits)
    generator = UniformTrafficGenerator(
        12, mean_request_rate_hz=rate, payload_bits=payload_bits, seed=seed
    )
    return list(generator.generate(num_requests))


def _timed_run(simulator: NetworkSimulator, requests) -> dict:
    start = time.perf_counter()
    result = simulator.run(requests)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "transfers": len(result.records),
        "packets": result.packets_sent,
        "events": result.events_processed,
        "packets_per_sec": result.packets_sent / seconds,
        "events_per_sec": result.events_processed / seconds,
    }


def _timed_best(simulator: NetworkSimulator, requests, repeats: int) -> tuple[dict, object]:
    """Best-of-``repeats`` timing (rejects scheduler noise); returns a result too.

    Determinism makes the result of every repeat identical, so returning
    the last one is as good as returning the fastest one's.
    """
    best: dict | None = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulator.run(requests)
        seconds = time.perf_counter() - start
        if best is None or seconds < best["seconds"]:
            best = {
                "seconds": seconds,
                "transfers": len(result.records),
                "packets": result.packets_sent,
                "events": result.events_processed,
                "packets_per_sec": result.packets_sent / seconds,
                "events_per_sec": result.events_processed / seconds,
            }
    return best, result


def compare_engines(num_requests: int = NUM_REQUESTS, *, repeats: int = 5) -> dict:
    """Time both event engines on the identical workload and check parity.

    Returns per-engine timings plus the batched/reference events-per-second
    ratio; asserts (cheaply, as a dict field) that the two engines produced
    byte-identical records and metrics — the speedup claim is only
    meaningful if the batched engine is re-running the *same* simulation.
    """
    requests = _requests(num_requests, PAYLOAD_BITS, seed=7)
    timings: dict = {}
    results = {}
    for engine in ("reference", "batched"):
        simulator = NetworkSimulator(seed=11, engine=engine)
        # Warm the manager's candidate/laser caches so the timing measures
        # the event loop, not the one-off operating-point solves.
        simulator.run(requests[:20])
        # The batched engine's runs are an order of magnitude shorter, so
        # give it proportionally more repeats to sample past timer noise.
        engine_repeats = repeats if engine == "reference" else 3 * repeats
        timings[engine], results[engine] = _timed_best(simulator, requests, engine_repeats)
    reference, batched = results["reference"], results["batched"]
    identical = (
        reference.records == batched.records
        and reference.metrics().as_dict() == batched.metrics().as_dict()
        and reference.events_processed == batched.events_processed
    )
    speedup = timings["batched"]["events_per_sec"] / timings["reference"]["events_per_sec"]
    return {
        "num_requests": num_requests,
        "engines": timings,
        "byte_identical": identical,
        "events_per_sec_speedup_batched_vs_reference": speedup,
        "engine_speedup_gate": ENGINE_SPEEDUP_GATE,
        "engine_gate_met": identical and speedup >= ENGINE_SPEEDUP_GATE,
    }


def measure_obs_overhead(num_requests: int = NUM_REQUESTS, *, repeats: int = 5) -> dict:
    """Batched-engine throughput with observability off vs fully on.

    The *enabled* leg runs with an active metrics registry and a tracer
    sinking to ``/dev/null`` — the worst realistic instrumentation cost —
    and must stay within :data:`OBS_ENABLED_RATIO_FLOOR` of the same run's
    disabled throughput.  The disabled leg doubles as the stored-baseline
    probe: its events/s against the last ``BENCH_netsim.json`` guards the
    no-op fast path (strict mode only).  Byte-identity of the instrumented
    run's records is checked alongside — speed means nothing if the
    instrumentation perturbed the simulation.
    """
    requests = _requests(num_requests, PAYLOAD_BITS, seed=7)

    def timed(simulator: NetworkSimulator):
        # Warm the manager's candidate/laser caches so the comparison is
        # event-loop against event-loop.
        simulator.run(requests[:20])
        return _timed_best(simulator, requests, repeats)

    disabled, baseline = timed(NetworkSimulator(seed=11))
    with open(os.devnull, "w", encoding="utf-8") as sink:
        with obs_metrics.collecting(), obs_tracing.tracing_to(sink):
            enabled, instrumented = timed(NetworkSimulator(seed=11))
    stored = benchlib.read_bench_results(_JSON_PATH) or {}
    stored_events = (stored.get("probabilistic") or {}).get("events_per_sec")
    return {
        "num_requests": num_requests,
        "disabled": disabled,
        "enabled": enabled,
        "byte_identical": (
            baseline.records == instrumented.records
            and baseline.events_processed == instrumented.events_processed
            and baseline.metrics().as_dict() == instrumented.metrics().as_dict()
        ),
        "enabled_over_disabled_events_ratio": (
            enabled["events_per_sec"] / disabled["events_per_sec"]
        ),
        "disabled_over_stored_events_ratio": (
            disabled["events_per_sec"] / stored_events if stored_events else None
        ),
        "enabled_ratio_floor": OBS_ENABLED_RATIO_FLOOR,
        "disabled_ratio_floor": OBS_DISABLED_RATIO_FLOOR,
    }


def run_benchmark(
    num_requests: int = NUM_REQUESTS,
    bitexact_requests: int = BITEXACT_REQUESTS,
    *,
    include_probabilistic: bool = True,
    include_bit_exact: bool = True,
    include_engines: bool = False,
    include_obs_overhead: bool = False,
) -> dict:
    """Time the requested outcome modes; returns the comparison dict.

    Each pytest gate only asserts on one leg, so it excludes the other —
    ``main()`` runs both for the JSON artefact.
    """
    results: dict = {
        "load": LOAD,
        "payload_bits": PAYLOAD_BITS,
        "num_requests": num_requests,
        "packet_event_gate_per_sec": PACKET_EVENT_GATE_PER_SEC,
    }
    if include_probabilistic:
        requests = _requests(num_requests, PAYLOAD_BITS, seed=7)
        probabilistic = NetworkSimulator(seed=11)
        # Warm the manager's candidate/laser caches so the timing measures
        # the event loop, not the one-off operating-point solves.
        probabilistic.run(requests[:20])
        results["probabilistic"] = _timed_run(probabilistic, requests)
        results["gate_met"] = (
            results["probabilistic"]["packets_per_sec"] >= PACKET_EVENT_GATE_PER_SEC
        )
    if include_bit_exact:
        # The bit-exact leg runs CRC-free (the bit-serial CRC dominates
        # otherwise) on a smaller workload; the probabilistic reference for
        # the speedup ratio uses the identical configuration.
        small = _requests(bitexact_requests, 8192, seed=7)
        reference = NetworkSimulator(seed=11, crc=None, max_retries=0)
        reference.run(small[:5])
        results["probabilistic_small"] = _timed_run(reference, small)
        bitexact = NetworkSimulator(seed=11, mode="bit-exact", crc=None, max_retries=0)
        bitexact.run(small[:5])
        results["bit_exact"] = _timed_run(bitexact, small)
        results["probabilistic_speedup_vs_bit_exact"] = (
            results["probabilistic_small"]["packets_per_sec"]
            / results["bit_exact"]["packets_per_sec"]
        )
    if include_engines:
        results["engine_comparison"] = compare_engines(num_requests)
    if include_obs_overhead:
        results["observability"] = measure_obs_overhead(num_requests)
    return results


def test_probabilistic_mode_meets_packet_event_gate():
    """Acceptance gate: >= 100k simulated packet events/s in default mode."""
    results = run_benchmark(num_requests=600, include_bit_exact=False)
    assert results["probabilistic"]["packets_per_sec"] >= PACKET_EVENT_GATE_PER_SEC, results


def test_bit_exact_mode_completes_and_delivers():
    """Sanity: the bit-exact leg runs and delivers every packet at low BER."""
    results = run_benchmark(bitexact_requests=20, include_probabilistic=False)
    assert results["bit_exact"]["packets"] > 0
    assert results["bit_exact"]["transfers"] == 20


def test_observability_overhead_is_bounded():
    """CI gate: instrumentation stays cheap and changes no observable.

    The enabled/disabled ratio compares two timings from the same process
    seconds apart, so it is robust on shared runners and always asserted
    (best of three attempts rejects scheduler noise; the full 2000-request
    workload keeps each timed run well above the scheduler jitter that
    dominates sub-2ms measurements).  The disabled leg's ratio against the
    stored ``BENCH_netsim.json`` baseline guards the no-op fast path
    itself but compares across sessions, so — like the stored-ratio gate
    in ``bench_failures.py`` — it only arms under ``REPRO_BENCH_STRICT=1``.
    """
    best: dict | None = None
    for _ in range(3):
        comparison = measure_obs_overhead(repeats=3)
        assert comparison["byte_identical"], "instrumentation perturbed the simulation"
        if (
            best is None
            or comparison["enabled_over_disabled_events_ratio"]
            > best["enabled_over_disabled_events_ratio"]
        ):
            best = comparison
        if best["enabled_over_disabled_events_ratio"] >= OBS_ENABLED_RATIO_FLOOR:
            break
    assert best["enabled_over_disabled_events_ratio"] >= OBS_ENABLED_RATIO_FLOOR, best
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        ratio = best["disabled_over_stored_events_ratio"]
        assert ratio is None or ratio >= OBS_DISABLED_RATIO_FLOOR, best


def test_batched_engine_is_identical_and_faster():
    """The epoch-batched engine re-runs the same simulation, much faster.

    Byte-identity is asserted exactly; the speedup floor is conservative
    (the full >= 10x gate lives in the JSON artefact where timings come
    from a quiet host) so shared CI runners don't flake.
    """
    comparison = compare_engines(num_requests=600, repeats=3)
    assert comparison["byte_identical"], "engines diverged on the benchmark workload"
    assert (
        comparison["events_per_sec_speedup_batched_vs_reference"] >= ENGINE_SPEEDUP_FLOOR
    ), comparison


def main(argv: list[str] | None = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark(include_engines=True, include_obs_overhead=True)
    benchlib.write_bench_json(_JSON_PATH, "netsim", results)
    prob = results["probabilistic"]
    engines = results["engine_comparison"]
    obs = results["observability"]
    print(
        f"netsim probabilistic: {prob['packets_per_sec']:,.0f} packets/s, "
        f"{prob['events_per_sec']:,.0f} events/s over {prob['transfers']} transfers "
        f"({prob['packets']} packets); "
        f"bit-exact {results['bit_exact']['packets_per_sec']:,.0f} packets/s "
        f"({results['probabilistic_speedup_vs_bit_exact']:.1f}x slower), "
        f"gate >= {results['packet_event_gate_per_sec']:,.0f}: {results['gate_met']}"
    )
    print(
        f"engines: reference {engines['engines']['reference']['events_per_sec']:,.0f} ev/s, "
        f"batched {engines['engines']['batched']['events_per_sec']:,.0f} ev/s "
        f"({engines['events_per_sec_speedup_batched_vs_reference']:.2f}x, "
        f"byte-identical: {engines['byte_identical']}), "
        f"gate >= {engines['engine_speedup_gate']:.0f}x: {engines['engine_gate_met']}"
    )
    print(
        f"observability: instrumented/disabled events ratio "
        f"{obs['enabled_over_disabled_events_ratio']:.3f} "
        f"(floor {OBS_ENABLED_RATIO_FLOOR}), byte-identical: {obs['byte_identical']}"
    )
    if args.history:
        benchlib.append_history(
            args.history,
            "netsim",
            {
                "probabilistic_packets_per_sec": prob["packets_per_sec"],
                "probabilistic_events_per_sec": prob["events_per_sec"],
                "bit_exact_packets_per_sec": results["bit_exact"]["packets_per_sec"],
                "engine_speedup_batched_vs_reference": engines[
                    "events_per_sec_speedup_batched_vs_reference"
                ],
                "obs_enabled_over_disabled_events_ratio": obs[
                    "enabled_over_disabled_events_ratio"
                ],
            },
        )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
