"""Aggregate statistics of a network simulation run.

The engine records one :class:`~repro.netsim.engine.NetTransferRecord` per
transfer; this module reduces those records to the numbers a load sweep
plots: latency percentiles with warm-up trimming, per-channel utilisation,
offered vs delivered throughput, energy per delivered bit and the
packet-level error/retransmission accounting.  Everything returned is a
plain Python scalar so the results serialise straight into the sweep
orchestrator's JSON payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "LatencySummary",
    "NetworkMetrics",
    "IntervalTrace",
    "nearest_rank_percentile",
    "compute_metrics",
    "build_interval_trace",
    "EMPTY_TRACE_BUCKET",
]


def nearest_rank_percentile(sorted_samples: np.ndarray, percentile: float) -> float:
    """Nearest-rank percentile of an ascending sample vector.

    Deterministic and interpolation-free, so serial and sharded sweeps
    report byte-identical values.  The nearest-rank definition
    ``rank = ceil(p/100 * N)`` is undefined at ``p = 0`` (rank 0), so the
    percentile must lie in ``(0, 100]``; out-of-range arguments raise
    instead of silently clamping to the minimum sample.
    """
    if not 0.0 < percentile <= 100.0:
        raise ConfigurationError("percentile must lie in (0, 100]")
    if sorted_samples.size == 0:
        return 0.0
    rank = int(np.ceil(percentile / 100.0 * sorted_samples.size))
    return float(sorted_samples[rank - 1])


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution of the post-warm-up transfers."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    min_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarise a latency sample vector (empty vectors give zeros)."""
        values = np.sort(np.asarray(list(samples), dtype=float))
        if values.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(values.size),
            mean_s=float(values.mean()),
            p50_s=nearest_rank_percentile(values, 50.0),
            p95_s=nearest_rank_percentile(values, 95.0),
            p99_s=nearest_rank_percentile(values, 99.0),
            min_s=float(values[0]),
            max_s=float(values[-1]),
        )

    def as_dict(self) -> dict:
        """Plain-scalar view for JSON payloads."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class IntervalTrace:
    """Per-interval activity of a run (the adaptive experiment's time series).

    One row per fixed-width simulation-time interval: channel energy charged
    in the interval (reconfiguration energy included), packets sent,
    transfers completed, their mean latency, and how many configuration
    switches the controller performed.  Under a hard-fault model
    (:mod:`repro.netsim.failures`) each row also carries the interval's
    drop / fault / recovery counts and its channel availability, which is
    what the availability experiment plots as a time series.
    """

    interval: int
    start_s: float
    energy_j: float
    packets_sent: int
    transfers_completed: int
    mean_latency_s: float
    switches: int
    packets_dropped: int = 0
    fault_transitions: int = 0
    recoveries: int = 0
    mean_recovery_s: float = 0.0
    availability: float = 1.0

    def as_dict(self) -> dict:
        """Plain-scalar view for JSON payloads."""
        return {
            "interval": self.interval,
            "start_s": self.start_s,
            "energy_j": self.energy_j,
            "packets_sent": self.packets_sent,
            "transfers_completed": self.transfers_completed,
            "mean_latency_s": self.mean_latency_s,
            "switches": self.switches,
            "packets_dropped": self.packets_dropped,
            "fault_transitions": self.fault_transitions,
            "recoveries": self.recoveries,
            "mean_recovery_s": self.mean_recovery_s,
            "availability": self.availability,
        }


#: Zero-filled interval accumulator: ``[energy_j, packets_sent,
#: transfers_completed, latency_sum_s, switches, packets_dropped,
#: fault_transitions, recoveries, recovery_time_sum_s, channel_down_s]``.
EMPTY_TRACE_BUCKET = (0.0, 0, 0, 0.0, 0, 0, 0, 0, 0.0, 0.0)


def build_interval_trace(
    buckets: Mapping[int, Sequence[float]],
    interval_s: float,
    *,
    num_channels: int = 1,
) -> list[IntervalTrace]:
    """Reduce the engine's raw interval accumulators to trace rows.

    ``buckets`` maps interval index to accumulator lists laid out like
    :data:`EMPTY_TRACE_BUCKET`; shorter (pre-fault-model) five-element lists
    are accepted and padded with zeros.  Gaps between occupied intervals are
    filled with zero rows so the series plots contiguously.  ``num_channels``
    converts the interval's channel-down seconds into an availability
    fraction.
    """
    if interval_s <= 0.0:
        raise ConfigurationError("trace interval must be positive")
    if num_channels < 1:
        raise ConfigurationError("availability needs at least one channel")
    if not buckets:
        return []
    rows = []
    for index in range(max(buckets) + 1):
        bucket = list(buckets.get(index, EMPTY_TRACE_BUCKET))
        if len(bucket) < len(EMPTY_TRACE_BUCKET):
            bucket.extend(EMPTY_TRACE_BUCKET[len(bucket):])
        (energy, packets, completed, latency_sum, switches,
         dropped, faults, recoveries, recovery_sum, down_s) = bucket
        rows.append(
            IntervalTrace(
                interval=index,
                start_s=index * interval_s,
                energy_j=float(energy),
                packets_sent=int(packets),
                transfers_completed=int(completed),
                mean_latency_s=float(latency_sum / completed) if completed else 0.0,
                switches=int(switches),
                packets_dropped=int(dropped),
                fault_transitions=int(faults),
                recoveries=int(recoveries),
                mean_recovery_s=float(recovery_sum / recoveries) if recoveries else 0.0,
                availability=max(
                    0.0, 1.0 - float(down_s) / (num_channels * interval_s)
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class NetworkMetrics:
    """Network-level figures of one simulation run."""

    transfers_completed: int
    transfers_rejected: int
    warmup_transfers_trimmed: int
    latency: LatencySummary
    sim_end_time_s: float
    offered_payload_bits: int
    delivered_payload_bits: int
    offered_throughput_bits_per_s: float
    delivered_throughput_bits_per_s: float
    channel_utilization: Dict[int, float]
    total_energy_j: float
    packets_sent: int
    packets_delivered: int
    packets_dropped: int
    packets_with_residual_errors: int
    residual_bit_errors: int
    #: Online-control accounting: configuration switches performed by the
    #: adaptive controller and the reconfiguration energy they charged.
    #: ``total_energy_j`` already includes the reconfiguration energy.
    configuration_switches: int = 0
    reconfiguration_energy_j: float = 0.0
    #: Hard-fault accounting (all zero / one without a fault model):
    #: ARQ retransmissions, transfers that dropped packets, channel-seconds
    #: spent hard-down, the resulting availability fraction, health
    #: transitions, completed down->up recoveries and their mean duration.
    packets_retried: int = 0
    transfers_dropped: int = 0
    channel_downtime_s: float = 0.0
    availability: float = 1.0
    fault_transitions: int = 0
    recoveries: int = 0
    mean_time_to_recover_s: float = 0.0

    @property
    def mean_channel_utilization(self) -> float:
        """Average busy fraction over every channel of the ring."""
        if not self.channel_utilization:
            return 0.0
        return sum(self.channel_utilization.values()) / len(self.channel_utilization)

    @property
    def peak_channel_utilization(self) -> float:
        """Busy fraction of the most loaded channel (the hotspot's reader)."""
        if not self.channel_utilization:
            return 0.0
        return max(self.channel_utilization.values())

    @property
    def energy_per_delivered_bit_j(self) -> float:
        """Channel energy per delivered payload bit."""
        if self.delivered_payload_bits == 0:
            return 0.0
        return self.total_energy_j / self.delivered_payload_bits

    @property
    def retransmission_rate(self) -> float:
        """Fraction of packet transmissions that were ARQ retries."""
        if self.packets_sent == 0:
            return 0.0
        first_attempts = self.packets_delivered + self.packets_dropped
        return max(0, self.packets_sent - first_attempts) / self.packets_sent

    @property
    def delivered_packet_error_rate(self) -> float:
        """Fraction of delivered packets still carrying residual errors."""
        if self.packets_delivered == 0:
            return 0.0
        return self.packets_with_residual_errors / self.packets_delivered

    @property
    def delivered_bit_error_rate(self) -> float:
        """Residual payload-bit error rate over everything delivered."""
        if self.delivered_payload_bits == 0:
            return 0.0
        return self.residual_bit_errors / self.delivered_payload_bits

    @property
    def packet_drop_rate(self) -> float:
        """Fraction of unique packets that were ultimately dropped."""
        unique = self.packets_delivered + self.packets_dropped
        if unique == 0:
            return 0.0
        return self.packets_dropped / unique

    @property
    def crc_escape_rate(self) -> float:
        """Fraction of delivered packets whose corruption escaped the CRC.

        These are the undetected-corrupt deliveries — the CRC passed (or was
        disabled) while residual bit errors remained, so ARQ never fired.
        """
        if self.packets_delivered == 0:
            return 0.0
        return self.packets_with_residual_errors / self.packets_delivered

    def as_dict(self) -> dict:
        """Flat plain-scalar dictionary (JSON/CSV friendly)."""
        return {
            "transfers_completed": self.transfers_completed,
            "transfers_rejected": self.transfers_rejected,
            "warmup_transfers_trimmed": self.warmup_transfers_trimmed,
            "latency_mean_s": self.latency.mean_s,
            "latency_p50_s": self.latency.p50_s,
            "latency_p95_s": self.latency.p95_s,
            "latency_p99_s": self.latency.p99_s,
            "sim_end_time_s": self.sim_end_time_s,
            "offered_gbps": self.offered_throughput_bits_per_s / 1e9,
            "delivered_gbps": self.delivered_throughput_bits_per_s / 1e9,
            "mean_utilization": self.mean_channel_utilization,
            "peak_utilization": self.peak_channel_utilization,
            "energy_per_bit_pj": self.energy_per_delivered_bit_j * 1e12,
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "retransmission_rate": self.retransmission_rate,
            "delivered_packet_error_rate": self.delivered_packet_error_rate,
            "delivered_bit_error_rate": self.delivered_bit_error_rate,
            "configuration_switches": self.configuration_switches,
            "reconfiguration_energy_j": self.reconfiguration_energy_j,
            "total_energy_j": self.total_energy_j,
            "packets_retried": self.packets_retried,
            "transfers_dropped": self.transfers_dropped,
            "packet_drop_rate": self.packet_drop_rate,
            "undetected_corrupt_packets": self.packets_with_residual_errors,
            "crc_escape_rate": self.crc_escape_rate,
            "availability": self.availability,
            "channel_downtime_s": self.channel_downtime_s,
            "fault_transitions": self.fault_transitions,
            "recoveries": self.recoveries,
            "mean_time_to_recover_s": self.mean_time_to_recover_s,
        }


def compute_metrics(
    records: Sequence,
    *,
    busy_s_by_reader: Mapping[int, float],
    num_channels: int,
    warmup_fraction: float,
    configuration_switches: int = 0,
    reconfiguration_energy_j: float = 0.0,
    channel_downtime_s: float = 0.0,
    fault_transitions: int = 0,
    recoveries: int = 0,
    recovery_time_s: float = 0.0,
    fault_horizon_s: float = 0.0,
) -> NetworkMetrics:
    """Reduce the engine's transfer records to :class:`NetworkMetrics`.

    ``records`` is every :class:`~repro.netsim.engine.NetTransferRecord` of
    the run (rejected ones included); the first ``warmup_fraction`` of the
    completed transfers — in arrival order — are excluded from the latency
    summary but still count towards throughput, energy and packet totals.
    Transfers dropped without a single attempt (a hard-down channel refused
    them on arrival) are likewise excluded from the latency summary: they
    have no meaningful completion time.

    The hard-fault keywords are the engine's availability accounting:
    ``fault_horizon_s`` is the observed simulation span the downtime is
    measured against (0 — no fault model — reports availability 1).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warm-up fraction must lie in [0, 1)")
    completed = sorted(
        (record for record in records if not record.rejected),
        key=lambda record: (record.arrival_time_s, record.completion_time_s),
    )
    rejected = sum(1 for record in records if record.rejected)
    served = [record for record in completed if getattr(record, "attempts", 1) > 0]
    trimmed = int(len(served) * warmup_fraction)
    latency = LatencySummary.from_samples(
        [record.latency_s for record in served[trimmed:]]
    )

    sim_end = max((record.completion_time_s for record in records), default=0.0)
    offered = sum(record.payload_bits for record in records)
    delivered = sum(record.delivered_payload_bits for record in completed)
    utilization = {
        reader: (busy_s_by_reader.get(reader, 0.0) / sim_end if sim_end > 0 else 0.0)
        for reader in range(num_channels)
    }
    return NetworkMetrics(
        transfers_completed=len(completed),
        transfers_rejected=rejected,
        warmup_transfers_trimmed=trimmed,
        latency=latency,
        sim_end_time_s=float(sim_end),
        offered_payload_bits=int(offered),
        delivered_payload_bits=int(delivered),
        offered_throughput_bits_per_s=(offered / sim_end if sim_end > 0 else 0.0),
        delivered_throughput_bits_per_s=(delivered / sim_end if sim_end > 0 else 0.0),
        channel_utilization=utilization,
        total_energy_j=float(
            sum(record.energy_j for record in completed) + reconfiguration_energy_j
        ),
        packets_sent=int(sum(record.packets_sent for record in completed)),
        packets_delivered=int(sum(record.packets_delivered for record in completed)),
        packets_dropped=int(sum(record.packets_dropped for record in completed)),
        packets_with_residual_errors=int(
            sum(record.packets_with_residual_errors for record in completed)
        ),
        residual_bit_errors=int(sum(record.residual_bit_errors for record in completed)),
        configuration_switches=int(configuration_switches),
        reconfiguration_energy_j=float(reconfiguration_energy_j),
        packets_retried=int(
            sum(
                max(0, record.packets_sent - record.packets_total)
                for record in completed
            )
        ),
        transfers_dropped=sum(1 for record in completed if record.packets_dropped > 0),
        channel_downtime_s=float(channel_downtime_s),
        availability=(
            max(0.0, 1.0 - channel_downtime_s / (num_channels * fault_horizon_s))
            if fault_horizon_s > 0.0
            else 1.0
        ),
        fault_transitions=int(fault_transitions),
        recoveries=int(recoveries),
        mean_time_to_recover_s=(
            float(recovery_time_s / recoveries) if recoveries else 0.0
        ),
    )
