"""Tests for the MWSR power budget, Eq. 4 helpers and the operating-point solver."""

from __future__ import annotations

import pytest

from repro.channel.ber import required_snr
from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.coding.uncoded import UncodedScheme
from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError, InfeasibleDesignError, LaserPowerExceededError
from repro.link.design import OpticalLinkDesigner
from repro.link.power_budget import LinkPowerBudget
from repro.link.snr import required_signal_power, snr_at_photodetector


class TestLinkPowerBudget:
    def test_total_loss_is_the_sum_of_the_breakdown(self):
        budget = LinkPowerBudget()
        breakdown = budget.breakdown()
        parts = sum(value for key, value in breakdown.items() if key != "total_db")
        assert breakdown["total_db"] == pytest.approx(parts)

    def test_waveguide_term_matches_paper_inputs(self):
        budget = LinkPowerBudget()
        assert budget.waveguide_loss_db == pytest.approx(0.274 * 6.0)

    def test_total_loss_is_in_the_calibrated_range(self):
        # DESIGN.md documents a worst-case signal path loss around 8.7 dB.
        budget = LinkPowerBudget()
        assert 8.0 < budget.signal_path_loss_db < 9.5

    def test_transmission_and_loss_are_consistent(self):
        budget = LinkPowerBudget()
        assert budget.signal_transmission == pytest.approx(
            10 ** (-budget.signal_path_loss_db / 10)
        )

    def test_more_onis_means_more_loss(self):
        small = LinkPowerBudget(config=DEFAULT_CONFIG.with_overrides(num_onis=4))
        large = LinkPowerBudget(config=DEFAULT_CONFIG.with_overrides(num_onis=24))
        assert large.signal_path_loss_db > small.signal_path_loss_db

    def test_received_power_round_trip(self):
        budget = LinkPowerBudget()
        received = budget.received_signal_power(500e-6)
        assert budget.laser_power_for_received_signal(received) == pytest.approx(500e-6)

    def test_crosstalk_scales_with_laser_power(self):
        budget = LinkPowerBudget()
        assert budget.received_crosstalk_power(400e-6) == pytest.approx(
            2 * budget.received_crosstalk_power(200e-6)
        )

    def test_negative_powers_rejected(self):
        budget = LinkPowerBudget()
        with pytest.raises(ConfigurationError):
            budget.received_signal_power(-1e-6)
        with pytest.raises(ConfigurationError):
            budget.laser_power_for_received_signal(-1e-6)


class TestEquationFourHelpers:
    def test_snr_at_photodetector(self):
        assert snr_at_photodetector(100e-6, 4e-6) == pytest.approx(24.0)

    def test_required_signal_power_inverts(self):
        snr = 22.5
        signal = required_signal_power(snr, crosstalk_power_w=2e-6)
        assert snr_at_photodetector(signal, 2e-6) == pytest.approx(snr)

    def test_required_signal_power_rejects_negative_snr(self):
        with pytest.raises(ConfigurationError):
            required_signal_power(-1.0)


class TestOpticalLinkDesigner:
    def test_design_point_satisfies_equation_four(self, designer):
        code = HammingCode(3)
        point = designer.design_point(code, 1e-11)
        achieved_snr = snr_at_photodetector(point.signal_power_w, point.crosstalk_power_w)
        assert achieved_snr == pytest.approx(point.required_snr, rel=1e-9)

    def test_required_snr_matches_channel_module(self, designer):
        code = ShortenedHammingCode(64)
        point = designer.design_point(code, 1e-9)
        assert point.required_snr == pytest.approx(required_snr(code, 1e-9))

    def test_coded_links_need_less_laser_power(self, designer):
        target = 1e-11
        uncoded = designer.design_point(UncodedScheme(64), target)
        h71 = designer.design_point(ShortenedHammingCode(64), target)
        h74 = designer.design_point(HammingCode(3), target)
        assert h74.laser_electrical_power_w < h71.laser_electrical_power_w
        assert h71.laser_electrical_power_w < uncoded.laser_electrical_power_w

    def test_laser_power_reduction_is_roughly_half(self, designer):
        # The paper's headline: ~50% laser power reduction at BER 1e-11.
        target = 1e-11
        uncoded = designer.design_point(UncodedScheme(64), target)
        h71 = designer.design_point(ShortenedHammingCode(64), target)
        reduction = 1.0 - h71.laser_electrical_power_w / uncoded.laser_electrical_power_w
        assert 0.40 < reduction < 0.60

    def test_uncoded_1e12_is_infeasible_but_coded_is_not(self, designer):
        assert not designer.design_point(UncodedScheme(64), 1e-12).feasible
        assert designer.design_point(ShortenedHammingCode(64), 1e-12).feasible
        assert designer.design_point(HammingCode(3), 1e-12).feasible

    def test_strict_design_raises_on_infeasible_points(self, designer):
        with pytest.raises(LaserPowerExceededError):
            designer.design_point_strict(UncodedScheme(64), 1e-12)

    def test_lower_ber_targets_need_more_power(self, designer):
        code = HammingCode(3)
        powers = [
            designer.design_point(code, ber).laser_electrical_power_w
            for ber in (1e-6, 1e-9, 1e-12)
        ]
        assert powers[0] < powers[1] < powers[2]

    def test_sweep_matches_individual_points(self, designer):
        code = HammingCode(3)
        targets = [1e-6, 1e-9]
        sweep = designer.sweep_ber(code, targets)
        for point, target in zip(sweep, targets):
            individual = designer.design_point(code, target)
            assert point.laser_output_power_w == pytest.approx(individual.laser_output_power_w)

    def test_design_point_metadata(self, designer):
        point = designer.design_point(HammingCode(3), 1e-9)
        assert point.code_name == "H(7,4)"
        assert point.communication_time == pytest.approx(1.75)
        assert point.code_rate == pytest.approx(4 / 7)
        assert point.laser_power_mw == pytest.approx(point.laser_electrical_power_w * 1e3)
        assert point.laser_output_power_uw == pytest.approx(point.laser_output_power_w * 1e6)

    def test_invalid_target_ber_rejected(self, designer):
        with pytest.raises(ConfigurationError):
            designer.design_point(HammingCode(3), 0.0)
        with pytest.raises(ConfigurationError):
            designer.design_point(HammingCode(3), 0.6)

    def test_best_code_for_power_budget_prefers_fastest(self, designer):
        codes = [UncodedScheme(64), ShortenedHammingCode(64), HammingCode(3)]
        generous = designer.best_code_for_power_budget(codes, 1e-11, max_laser_power_w=1.0)
        assert generous.code_name == "w/o ECC"
        tight = designer.best_code_for_power_budget(codes, 1e-11, max_laser_power_w=8e-3)
        assert tight.code_name in ("H(71,64)", "H(7,4)")

    def test_best_code_raises_when_nothing_fits(self, designer):
        codes = [UncodedScheme(64), HammingCode(3)]
        with pytest.raises(InfeasibleDesignError):
            designer.best_code_for_power_budget(codes, 1e-11, max_laser_power_w=1e-3)
