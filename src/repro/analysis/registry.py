"""The rule registry.

A rule is a function from a parsed module to findings, registered under a
stable code.  Codes are grouped by invariant family:

* ``RPR1xx`` — determinism (seeding, wall clock, iteration order);
* ``RPR2xx`` — concurrency (lock discipline);
* ``RPR3xx`` — hot-path and API hygiene.

``RPR001`` is reserved for files the linter cannot parse.  A rule may be
*scoped*: its ``scope`` names a :class:`~repro.analysis.config.LintConfig`
field holding path globs, and the engine only runs it on matching modules
(e.g. wall-clock reads are forbidden in simulation paths, not in the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["Rule", "rule", "all_rules", "get_rule", "PARSE_ERROR_CODE"]

#: Emitted (outside the registry) when a file fails to parse.
PARSE_ERROR_CODE = "RPR001"


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    name: str
    summary: str
    check: Callable
    #: ``LintConfig`` field naming the path globs this rule is confined to
    #: (``None`` = every linted file).
    scope: Optional[str] = None


_REGISTRY: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str, *, scope: Optional[str] = None):
    """Class decorator registering ``check(ctx)`` under ``code``."""

    def decorate(check: Callable) -> Callable:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = Rule(code=code, name=name, summary=summary, check=check, scope=scope)
        return check

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]
