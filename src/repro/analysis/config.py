"""Per-path rule configuration for the invariant linter.

The default configuration encodes *this repository's* invariants: which
subtrees are deterministic simulation paths (wall-clock and unordered
iteration are forbidden there), which package carries the threaded service
(lock discipline applies), which modules are hot enough that every class
must carry ``__slots__``, and which factory functions are allowed to mint
an unseeded OS-entropy generator as a constructor default.

Paths are always matched in *module form* — ``repro/service/queue.py`` —
regardless of where the tree was checked out or whether the linter was
pointed at ``src/``, so configuration globs stay stable.  A JSON file can
override any field (see :func:`load_config`); unknown keys are rejected so
typos fail loudly instead of silently disabling a rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from fnmatch import fnmatch
from typing import Dict, Tuple

from ..exceptions import ConfigurationError

__all__ = ["LintConfig", "DEFAULT_CONFIG", "load_config", "normalize_path"]


def normalize_path(path: str) -> str:
    """A filesystem path reduced to module form (``repro/...`` when possible).

    Findings, configuration globs and baseline entries all use this form,
    so the same baseline works whether the linter was invoked on ``src``,
    ``src/repro`` or an absolute path.
    """
    posix = path.replace("\\", "/")
    parts = [part for part in posix.split("/") if part not in ("", ".")]
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return "/".join(parts)


@dataclass(frozen=True)
class LintConfig:
    """Which rules run where (all paths in module form, fnmatch globs)."""

    #: Only these codes run when non-empty (``--select``).
    select: Tuple[str, ...] = ()
    #: These codes never run (``--ignore``).
    ignore: Tuple[str, ...] = ()
    #: ``glob -> codes`` disabled under matching paths.
    per_path_disable: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Deterministic simulation paths: wall-clock reads (RPR103) and
    #: unordered iteration (RPR104) are forbidden here.
    deterministic_paths: Tuple[str, ...] = (
        "repro/netsim/*",
        "repro/coding/*",
        "repro/experiments/*",
        "repro/channel/*",
        "repro/simulation/*",
        "repro/traffic/*",
    )
    #: Threaded subtrees where lock discipline (RPR201/RPR202) applies.
    lock_paths: Tuple[str, ...] = ("repro/service/*",)
    #: Hot modules where every class must be ``__slots__``-shaped (RPR301).
    slots_modules: Tuple[str, ...] = (
        "repro/netsim/events.py",
        "repro/netsim/outcomes.py",
    )
    #: Function names allowed to call ``np.random.default_rng()`` with no
    #: seed — the constructor-default idiom ("no seed given, use OS
    #: entropy") every simulator entry point shares.
    rng_factory_functions: Tuple[str, ...] = (
        "__init__",
        "__post_init__",
        "resolve_rng",
    )

    # ------------------------------------------------------------------ queries
    def path_matches(self, path: str, globs: Tuple[str, ...]) -> bool:
        normalized = normalize_path(path)
        return any(fnmatch(normalized, glob) for glob in globs)

    def rule_enabled(self, code: str, path: str) -> bool:
        """Whether ``code`` runs on ``path`` under select/ignore/per-path."""
        if self.select and code not in self.select:
            return False
        if code in self.ignore:
            return False
        normalized = normalize_path(path)
        for glob, codes in self.per_path_disable.items():
            if fnmatch(normalized, glob) and code in codes:
                return False
        return True


DEFAULT_CONFIG = LintConfig()

#: Fields a JSON config file may override.
_OVERRIDABLE = {spec.name for spec in fields(LintConfig)}


def load_config(path: str, base: LintConfig = DEFAULT_CONFIG) -> LintConfig:
    """``base`` with the overrides from the JSON file at ``path`` applied."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read lint config {path!r}: {error}") from error
    except ValueError as error:
        raise ConfigurationError(f"lint config {path!r} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise ConfigurationError(f"lint config {path!r} must be a JSON object")
    overrides = {}
    for key, value in document.items():
        if key not in _OVERRIDABLE:
            raise ConfigurationError(
                f"unknown lint config key {key!r} (expected one of {sorted(_OVERRIDABLE)})"
            )
        if key == "per_path_disable":
            if not isinstance(value, dict):
                raise ConfigurationError("per_path_disable must map globs to code lists")
            overrides[key] = {
                str(glob): tuple(str(code) for code in codes)
                for glob, codes in value.items()
            }
        else:
            if not isinstance(value, (list, tuple)):
                raise ConfigurationError(f"lint config key {key!r} must be a list")
            overrides[key] = tuple(str(item) for item in value)
    return replace(base, **overrides)
