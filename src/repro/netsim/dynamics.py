"""Time-varying channel conditions for the network simulator.

The paper's headline scenario is a manager that *reconfigures* the link at
run time because the channel's raw bit error rate is not a constant: silicon
heats up and cools down with workload phases, lasers and photodetectors age,
and slow environmental processes wander.  This module models those effects
as a multiplicative drift on the raw channel BER — ``raw(t) = raw_design *
m(t)`` with ``m(t) >= 1`` relative to the nominal (cool, young) operating
point — one deterministic process per channel:

* :class:`ThermalSinusoidDrift` — a log-space sinusoid: workload-induced
  heating cycles between the nominal point and a peak multiplier.
* :class:`AgingRampDrift` — a monotone log-space ramp towards the
  end-of-life multiplier; a simulation usually covers early life, which is
  exactly why a static worst-case design wastes energy.
* :class:`RandomWalkDrift` — a Markov-modulated reflected random walk in
  log space, for environmental wander without a deterministic shape.
* :class:`ConstantDrift` — a fixed multiplier (1.0 reproduces today's
  static channel exactly).

Determinism: stochastic processes draw from a per-channel generator spawned
from one :class:`numpy.random.SeedSequence` at construction, and sample
their trajectory on a fixed step grid, so the multiplier at a given
``(channel, time)`` is a pure function of the seed — independent of query
order, event interleaving or sweep sharding.  Multipliers are quantised on
a log2 grid (:class:`ChannelDriftModel`), which keeps the per-sampler
failure-probability caches in the engine small and makes reported values
reproducible across platforms.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "DriftProcess",
    "ConstantDrift",
    "ThermalSinusoidDrift",
    "AgingRampDrift",
    "RandomWalkDrift",
    "ChannelDriftModel",
    "make_drift_model",
    "DRIFT_PROFILES",
]


class DriftProcess:
    """Deterministic raw-BER multiplier trajectory of one channel."""

    #: Largest multiplier the process can ever report; the static worst-case
    #: design and the adaptive controller's top margin level provision for it.
    worst_case_multiplier: float = 1.0

    def multiplier_at(self, time_s: float) -> float:
        """Raw-BER multiplier at simulation time ``time_s`` (>= 1)."""
        raise NotImplementedError


class ConstantDrift(DriftProcess):
    """A channel whose conditions never change (multiplier fixed)."""

    def __init__(self, multiplier: float = 1.0):
        if multiplier < 1.0:
            raise ConfigurationError("drift multipliers are >= 1 (nominal point)")
        self.worst_case_multiplier = float(multiplier)

    def multiplier_at(self, time_s: float) -> float:
        return self.worst_case_multiplier


class ThermalSinusoidDrift(DriftProcess):
    """Workload-heating cycle: a log-space sinusoid between 1 and a peak.

    ``m(t) = peak ** ((1 - cos(2 pi t / T + phase)) / 2)`` starts at the
    nominal point for ``phase = 0``, peaks mid-period and returns — the
    canonical diurnal/phase-change thermal shape.
    """

    def __init__(self, *, period_s: float, peak_multiplier: float, phase_rad: float = 0.0):
        if period_s <= 0.0:
            raise ConfigurationError("thermal period must be positive")
        if peak_multiplier < 1.0:
            raise ConfigurationError("peak multiplier must be at least 1")
        self.period_s = float(period_s)
        self.worst_case_multiplier = float(peak_multiplier)
        self.phase_rad = float(phase_rad)
        self._log_peak = math.log(self.worst_case_multiplier)

    def multiplier_at(self, time_s: float) -> float:
        level = (1.0 - math.cos(2.0 * math.pi * time_s / self.period_s + self.phase_rad)) / 2.0
        return math.exp(self._log_peak * level)


class AgingRampDrift(DriftProcess):
    """Device aging: a monotone log-space ramp to the end-of-life multiplier.

    ``m(t) = ramp ** min(1, t / ramp_time)``; a simulation horizon much
    shorter than ``ramp_time_s`` sees a channel still close to nominal —
    the regime where a worst-case static margin is pure waste.
    """

    def __init__(self, *, ramp_multiplier: float, ramp_time_s: float):
        if ramp_multiplier < 1.0:
            raise ConfigurationError("ramp multiplier must be at least 1")
        if ramp_time_s <= 0.0:
            raise ConfigurationError("ramp time must be positive")
        self.worst_case_multiplier = float(ramp_multiplier)
        self.ramp_time_s = float(ramp_time_s)
        self._log_ramp = math.log(self.worst_case_multiplier)

    def multiplier_at(self, time_s: float) -> float:
        fraction = min(1.0, max(0.0, time_s / self.ramp_time_s))
        return math.exp(self._log_ramp * fraction)


class RandomWalkDrift(DriftProcess):
    """Markov-modulated wander: a reflected random walk in log2 space.

    The walk advances on a fixed ``step_s`` grid with normal increments of
    standard deviation ``log2_sigma`` and is folded back into
    ``[0, log2(max_multiplier)]`` (triangle reflection), so the multiplier
    wanders between nominal and the worst case without ever leaving the
    provisioned range.  Steps are drawn lazily in fixed-size chunks from the
    process's own generator, so the trajectory depends only on the seed —
    not on when or in what order the engine asks.
    """

    _CHUNK = 256

    def __init__(
        self,
        *,
        step_s: float,
        max_multiplier: float,
        log2_sigma: float = 0.25,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        from ..coding.montecarlo import resolve_rng

        if step_s <= 0.0:
            raise ConfigurationError("random-walk step must be positive")
        if max_multiplier < 1.0:
            raise ConfigurationError("max multiplier must be at least 1")
        if log2_sigma < 0.0:
            raise ConfigurationError("walk sigma cannot be negative")
        self.step_s = float(step_s)
        self.worst_case_multiplier = float(max_multiplier)
        self.log2_sigma = float(log2_sigma)
        self._rng = resolve_rng(rng, seed)
        self._cumsum: np.ndarray = np.zeros(1, dtype=float)

    def _ensure_steps(self, index: int) -> None:
        while self._cumsum.size <= index:
            increments = self._rng.normal(0.0, self.log2_sigma, size=self._CHUNK)
            extension = self._cumsum[-1] + np.cumsum(increments)
            self._cumsum = np.concatenate([self._cumsum, extension])

    def multiplier_at(self, time_s: float) -> float:
        if time_s < 0.0:
            raise ConfigurationError("simulation time cannot be negative")
        index = int(time_s / self.step_s)
        self._ensure_steps(index)
        span = math.log2(self.worst_case_multiplier)
        if span == 0.0:
            return 1.0
        # Triangle-fold the unconstrained walk into [0, span].
        folded = abs(math.fmod(self._cumsum[index], 2.0 * span))
        level = span - abs(folded - span)
        return 2.0 ** level


class ChannelDriftModel:
    """Per-channel drift processes behind one quantised query interface.

    Parameters
    ----------
    factory:
        ``factory(channel, seed_sequence)`` building the channel's process;
        the ``seed_sequence`` is the channel's own spawned child (ignored by
        deterministic processes).
    num_channels:
        Number of reader channels of the ring (``config.num_onis``).
    seed:
        Integer or :class:`~numpy.random.SeedSequence` the per-channel
        children are spawned from.
    quantization_steps_per_octave:
        The reported multiplier is snapped to ``2**(round(log2(m) * q) / q)``.
        Quantisation bounds the engine's per-sampler failure-probability
        caches (at most ``q * log2(worst_case) + 1`` distinct raw BERs per
        configuration) without visibly distorting the trajectory; ``m = 1``
        is always reported exactly.
    """

    def __init__(
        self,
        factory: Callable[[int, np.random.SeedSequence], DriftProcess],
        num_channels: int,
        *,
        seed: int | np.random.SeedSequence | None = None,
        quantization_steps_per_octave: int = 16,
    ):
        if num_channels < 1:
            raise ConfigurationError("a drift model needs at least one channel")
        if quantization_steps_per_octave < 1:
            raise ConfigurationError("quantization needs at least one step per octave")
        sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        children = sequence.spawn(num_channels)
        self._processes: List[DriftProcess] = [
            factory(channel, children[channel]) for channel in range(num_channels)
        ]
        self._quantization = int(quantization_steps_per_octave)
        self.num_channels = int(num_channels)
        # Immutable after construction; cached because multiplier() sits in
        # the engine's per-attempt hot path.
        self._worst_case = max(
            process.worst_case_multiplier for process in self._processes
        )

    @property
    def worst_case_multiplier(self) -> float:
        """Largest multiplier any channel can reach (static design margin)."""
        return self._worst_case

    def process(self, channel: int) -> DriftProcess:
        """The drift process of one channel."""
        return self._processes[channel]

    def multiplier(self, channel: int, time_s: float) -> float:
        """Quantised raw-BER multiplier of ``channel`` at ``time_s``."""
        raw = self._processes[channel].multiplier_at(time_s)
        if raw <= 1.0:
            return 1.0
        quantized = round(math.log2(raw) * self._quantization) / self._quantization
        return min(2.0 ** quantized, self.worst_case_multiplier)


#: Built-in drift profiles selectable by name in the ``adaptive`` experiment.
DRIFT_PROFILES = ("none", "thermal", "aging", "random-walk")


def make_drift_model(
    profile: str,
    num_channels: int,
    *,
    seed: int | np.random.SeedSequence | None = None,
    worst_case_multiplier: float = 16.0,
    timescale_s: float = 5e-6,
    options: Optional[Dict] = None,
) -> Optional[ChannelDriftModel]:
    """Build a named drift profile (``None`` for the static ``"none"``).

    ``timescale_s`` anchors each profile's dynamics to the simulation
    horizon: the thermal period equals the timescale (per-channel phases are
    spread uniformly from the seed), the aging ramp stretches over four
    timescales (the run covers early life) and the random walk steps every
    ``timescale / 200``.  ``options`` may override the per-profile knobs
    (``period_s``, ``ramp_time_s``, ``step_s``, ``log2_sigma``,
    ``quantization_steps_per_octave``).
    """
    if profile not in DRIFT_PROFILES:
        raise ConfigurationError(
            f"unknown drift profile {profile!r}; available: {DRIFT_PROFILES}"
        )
    if profile == "none":
        return None
    if timescale_s <= 0.0:
        raise ConfigurationError("drift timescale must be positive")
    options = dict(options or {})
    quantization = int(options.pop("quantization_steps_per_octave", 16))

    if profile == "thermal":
        period = float(options.pop("period_s", timescale_s))

        def factory(channel: int, sequence: np.random.SeedSequence) -> DriftProcess:
            phase = float(np.random.default_rng(sequence).uniform(0.0, 2.0 * math.pi))
            return ThermalSinusoidDrift(
                period_s=period,
                peak_multiplier=worst_case_multiplier,
                phase_rad=phase,
            )

    elif profile == "aging":
        ramp_time = float(options.pop("ramp_time_s", 4.0 * timescale_s))

        def factory(channel: int, sequence: np.random.SeedSequence) -> DriftProcess:
            return AgingRampDrift(
                ramp_multiplier=worst_case_multiplier, ramp_time_s=ramp_time
            )

    else:  # random-walk
        step = float(options.pop("step_s", timescale_s / 200.0))
        sigma = float(options.pop("log2_sigma", 0.25))

        def factory(channel: int, sequence: np.random.SeedSequence) -> DriftProcess:
            return RandomWalkDrift(
                step_s=step,
                max_multiplier=worst_case_multiplier,
                log2_sigma=sigma,
                seed=sequence,
            )

    if options:
        raise ConfigurationError(f"unknown drift options {sorted(options)} for {profile!r}")
    return ChannelDriftModel(
        factory,
        num_channels,
        seed=seed,
        quantization_steps_per_octave=quantization,
    )
