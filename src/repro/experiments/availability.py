"""Experiment ``availability``: graceful degradation under hard faults.

The adaptive experiment shows the manager riding out *soft* drift; this one
injects *hard* faults (:mod:`repro.netsim.failures` — lane fails, stuck
rings, laser droop, transient blackouts) and compares how three management
policies degrade on identical traffic and fault timelines:

``static``
    No online control at all: every transfer is provisioned at margin 1 and
    the ARQ blindly retransmits into whatever is left of the channel —
    including a dark one.  This is the paper's static design facing faults
    it was never told about.
``adaptive``
    The online controller (:class:`~repro.manager.runtime.AdaptiveEccController`)
    reacts to the receiver's failure telemetry and escalates the ECC margin,
    but has no notion of lost wavelengths or blackouts.
``degradation-ladder``
    The full graceful-degradation ladder
    (:class:`~repro.manager.policies.DegradationLadder`): remap onto the
    surviving wavelengths, escalate the ECC margin against droop, derate
    the data rate when the margin ladder tops out, and declare the channel
    down (bounded, backed-off retries with a per-transfer timeout) instead
    of burning energy on a dead lane.

Per grid point (fault scenario x policy x load) the payload carries the full
network metrics — availability, drop rate, CRC-escape rate, retries,
recovery statistics — plus the per-interval trace; the merge step annotates
every row against the static policy of the same (scenario, load) point.

One shard per grid point, each rebuilding traffic / engine / fault /
telemetry generators from ``SeedSequence(seed, spawn_key=(pair_index,
stream))``, so ``repro-experiments availability --jobs N`` is byte-identical
to the serial run and all policies of a pair face literally the same faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..manager.policies import (
    DegradationLadder,
    FailureRateMonitor,
    HysteresisSwitchingPolicy,
    MinimumPowerPolicy,
    margin_levels,
)
from ..manager.runtime import AdaptiveEccController
from ..netsim import NetworkSimulator, make_fault_model
from ..netsim.failures import FAULT_SCENARIOS
from ..traffic.generators import UniformTrafficGenerator
from .network import request_rate_for_load

__all__ = [
    "AvailabilitySweepResult",
    "run_availability",
    "sweep_shards",
    "run_sweep_shard",
    "merge_sweep",
    "DEFAULT_SCENARIOS",
    "DEFAULT_POLICIES",
    "DEFAULT_LOADS",
]

#: Default sweep axes: one representative scenario per fault primitive (the
#: fault-free baseline, a permanent outage, a transient one and the mix),
#: all three policies, one moderate load.
DEFAULT_SCENARIOS: tuple[str, ...] = ("none", "lane-fail", "blackout", "mixed")
DEFAULT_POLICIES: tuple[str, ...] = ("static", "adaptive", "degradation-ladder")
DEFAULT_LOADS: tuple[float, ...] = (0.5,)
DEFAULT_NUM_REQUESTS = 1000
DEFAULT_PAYLOAD_BITS = 4096
DEFAULT_TARGET_BER = 1e-9
DEFAULT_SEED = 20261
#: Trace resolution: intervals per (estimated) simulation horizon.
TRACE_INTERVALS = 20


def _shard_defaults(options: dict) -> dict:
    """The JSON-serializable per-shard knobs shared by every grid point."""
    return {
        "num_requests": int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
        "payload_bits": int(options.get("payload_bits", DEFAULT_PAYLOAD_BITS)),
        "target_ber": float(options.get("target_ber", DEFAULT_TARGET_BER)),
        "packet_bits": int(options.get("packet_bits", 512)),
        "max_retries": int(options.get("max_retries", 4)),
        "warmup_fraction": float(options.get("warmup_fraction", 0.1)),
        "margin_ratio": float(options.get("margin_ratio", 2.0)),
        "monitor_window_blocks": int(options.get("monitor_window_blocks", 8192)),
        "fault_fraction": float(options.get("fault_fraction", 0.5)),
        "peak_droop_penalty": float(options.get("peak_droop_penalty", 8.0)),
        #: ARQ backoff base and per-transfer timeout of the ladder policy,
        #: as fractions of the simulation horizon (they scale with load).
        "backoff_horizon_fraction": float(options.get("backoff_horizon_fraction", 0.01)),
        "timeout_horizon_fraction": float(options.get("timeout_horizon_fraction", 0.5)),
        "max_derate_factor": float(options.get("max_derate_factor", 8.0)),
        "seed": int(options.get("seed", DEFAULT_SEED)),
    }


# ------------------------------------------------------------------ grid API
def sweep_shards(config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None) -> list[dict]:
    """Grid descriptor: one shard per (fault scenario, policy, load) point.

    ``options`` may override ``scenarios``, ``policies``, ``loads`` and
    every knob listed in :func:`_shard_defaults` (all JSON-serializable;
    they become part of the checkpoint fingerprint).
    """
    options = options or {}
    scenarios = list(options.get("scenarios", DEFAULT_SCENARIOS))
    policies = list(options.get("policies", DEFAULT_POLICIES))
    loads = [float(load) for load in options.get("loads", DEFAULT_LOADS)]
    for scenario in scenarios:
        if scenario not in FAULT_SCENARIOS:
            raise ConfigurationError(
                f"unknown fault scenario {scenario!r}; available: {FAULT_SCENARIOS}"
            )
    for policy in policies:
        if policy not in DEFAULT_POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; available: {DEFAULT_POLICIES}"
            )
    defaults = _shard_defaults(options)
    shards = []
    pair_index = 0
    for scenario in scenarios:
        for load in loads:
            for policy in policies:
                shard = dict(defaults)
                # Every policy of one (scenario, load) pair shares the
                # pair's seed streams, so the policies are compared on
                # literally the same traffic and fault timelines.
                shard.update(
                    {
                        "scenario": scenario,
                        "policy": policy,
                        "load": load,
                        "pair_index": pair_index,
                    }
                )
                shards.append(shard)
            pair_index += 1
    return shards


def run_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: simulate one (scenario, policy, load) point; JSON payload.

    Four independent per-point streams are derived from the grid position —
    traffic (0), engine (1), fault timelines (2) and monitor telemetry (3)
    — so the payload depends only on the shard parameters, which is what
    makes parallel sweeps byte-identical to serial ones.
    """
    seed = params["seed"]
    streams = {
        name: np.random.SeedSequence(seed, spawn_key=(params["pair_index"], stream))
        for stream, name in enumerate(("traffic", "engine", "faults", "telemetry"))
    }
    rate_hz = request_rate_for_load(params["load"], config, payload_bits=params["payload_bits"])
    generator = UniformTrafficGenerator(
        config.num_onis,
        mean_request_rate_hz=rate_hz,
        payload_bits=params["payload_bits"],
        target_ber=params["target_ber"],
        seed=streams["traffic"],
    )
    horizon_s = params["num_requests"] / rate_hz
    failures = make_fault_model(
        params["scenario"],
        config.num_onis,
        config.num_wavelengths,
        seed=streams["faults"],
        horizon_s=horizon_s,
        options={
            "fault_fraction": params["fault_fraction"],
            "peak_droop_penalty": params["peak_droop_penalty"],
        },
    )
    worst = failures.worst_case_penalty if failures is not None else 1.0
    margins = margin_levels(
        max(worst, params["peak_droop_penalty"]), ratio=params["margin_ratio"]
    )
    policy = params["policy"]
    controller = None
    degradation = None
    retry_backoff_s = 0.0
    transfer_timeout_s = None
    if policy in ("adaptive", "degradation-ladder"):
        controller = AdaptiveEccController(
            margins=margins,
            mode="adaptive",
            monitor=FailureRateMonitor(window_blocks=params["monitor_window_blocks"]),
            switching_policy=HysteresisSwitchingPolicy(),
        )
    if policy == "degradation-ladder" and failures is not None:
        degradation = DegradationLadder(
            margins=margins,
            num_wavelengths=config.num_wavelengths,
            max_derate_factor=params["max_derate_factor"],
        )
        retry_backoff_s = params["backoff_horizon_fraction"] * horizon_s
        transfer_timeout_s = params["timeout_horizon_fraction"] * horizon_s
    simulator = NetworkSimulator(
        config=config,
        policy=MinimumPowerPolicy(),
        mode="probabilistic",
        packet_bits=params["packet_bits"],
        max_retries=params["max_retries"],
        warmup_fraction=params["warmup_fraction"],
        seed=streams["engine"],
        controller=controller,
        telemetry_seed=streams["telemetry"],
        trace_interval_s=horizon_s / TRACE_INTERVALS,
        failures=failures,
        degradation=degradation,
        retry_backoff_s=retry_backoff_s,
        transfer_timeout_s=transfer_timeout_s,
    )
    result = simulator.run(generator.generate(params["num_requests"]))
    payload = {
        "scenario": params["scenario"],
        "policy": params["policy"],
        "load": params["load"],
        "margin_top": margins[-1],
    }
    payload.update(result.metrics().as_dict())
    payload["trace"] = [row.as_dict() for row in result.interval_trace]
    return payload


@dataclass
class AvailabilitySweepResult:
    """Rows of the availability sweep (one per scenario x policy x load point)."""

    rows: List[dict]
    num_requests: int

    def rows_for(self, scenario: str, policy: str) -> List[dict]:
        """The load series of one (scenario, policy) curve."""
        return [
            row
            for row in self.rows
            if row["scenario"] == scenario and row["policy"] == policy
        ]

    def to_rows(self) -> List[dict]:
        """CSV rows for the experiment runner (scalar columns only)."""
        return [
            {key: value for key, value in row.items() if key != "trace"}
            for row in self.rows
        ]

    def render_text(self) -> str:
        """Human-readable availability/degradation comparison table."""
        header = (
            f"{'scenario':<12} {'policy':<19} {'load':>5} {'avail':>7} {'drop':>8} "
            f"{'escape':>9} {'retried':>8} {'mttr':>9} {'energy':>10}"
        )
        units = (
            f"{'':<12} {'':<19} {'':>5} {'':>7} {'(%)':>8} "
            f"{'':>9} {'':>8} {'(ns)':>9} {'(uJ)':>10}"
        )
        lines = [
            "Hard-fault tolerance: graceful degradation vs blind retransmission "
            f"({self.num_requests} requests per point, identical traffic/faults per policy)",
            header,
            units,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                f"{row['scenario']:<12} {row['policy']:<19} {row['load']:5.2f} "
                f"{row['availability']:7.4f} {row['packet_drop_rate'] * 100:8.3f} "
                f"{row['crc_escape_rate']:9.2e} {row['packets_retried']:8d} "
                f"{row['mean_time_to_recover_s'] * 1e9:9.1f} "
                f"{row['total_energy_j'] * 1e6:10.4f}"
            )
        ladder_rows = [
            row
            for row in self.rows
            if row["policy"] == "degradation-ladder"
            and "drop_rate_delta_vs_static_pp" in row
            and row["scenario"] != "none"
        ]
        if ladder_rows:
            mean_drop_cut = sum(
                row["drop_rate_delta_vs_static_pp"] for row in ladder_rows
            ) / len(ladder_rows)
            lines.append(
                f"The degradation ladder cuts the packet drop rate by "
                f"{mean_drop_cut:.2f} percentage points on average vs the static "
                "design under the same hard faults."
            )
        lines.append(
            "'avail' is channel uptime over the observed horizon; 'drop' counts "
            "packets abandoned after the retry budget / timeout; 'escape' is the "
            "CRC-escape rate among delivered packets."
        )
        return "\n".join(lines)


def merge_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble shard payloads into the (text report, CSV rows) pair.

    Annotates every non-static row against the static row of the same
    (scenario, load) point: energy saved (%) and drop-rate reduction
    (percentage points; positive means fewer drops than static).
    """
    options = options or {}
    rows = [dict(payload) for payload in payloads]
    static_rows = {
        (row["scenario"], row["load"]): row for row in rows if row["policy"] == "static"
    }
    for row in rows:
        baseline = static_rows.get((row["scenario"], row["load"]))
        is_static = row["policy"] == "static"
        row["energy_saved_vs_static_pct"] = (
            100.0 * (1.0 - row["total_energy_j"] / baseline["total_energy_j"])
            if baseline is not None
            and baseline["total_energy_j"] > 0.0
            and not is_static
            else 0.0
        )
        row["drop_rate_delta_vs_static_pp"] = (
            100.0 * (baseline["packet_drop_rate"] - row["packet_drop_rate"])
            if baseline is not None and not is_static
            else 0.0
        )
    result = AvailabilitySweepResult(
        rows=rows,
        num_requests=int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
    )
    return result.render_text(), result.to_rows()


def run_availability(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    options: dict | None = None,
) -> AvailabilitySweepResult:
    """Run the full availability sweep serially and return the structured result."""
    payloads = [run_sweep_shard(params, config) for params in sweep_shards(config, options)]
    text, rows = merge_sweep(payloads, config, options)
    return AvailabilitySweepResult(
        rows=rows, num_requests=int((options or {}).get("num_requests", DEFAULT_NUM_REQUESTS))
    )
