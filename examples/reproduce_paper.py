"""Regenerate every table and figure of the paper in one go.

Thin wrapper around :mod:`repro.experiments.runner`, kept as an example so
the reproduction entry point is discoverable next to the other scripts.

Run with::

    python examples/reproduce_paper.py            # everything
    python examples/reproduce_paper.py figure5    # a single experiment
"""

from __future__ import annotations

import sys

from repro.experiments.runner import main as run_experiments


if __name__ == "__main__":
    raise SystemExit(run_experiments(sys.argv[1:]))
