"""Shared plumbing for the ``bench_*.py`` scripts.

Every benchmark artefact (``BENCH_*.json``) carries the same envelope —
``schema_version``, the benchmark name, host facts (platform, Python,
NumPy, CPU count) and the measurement payload under ``results`` — written
by :func:`write_bench_json`, so downstream tooling can parse any artefact
without per-script knowledge.  :func:`read_bench_results` reads either the
enveloped layout or the pre-envelope bare dict, so ratio gates keep
working across the transition.

:func:`append_history` gives benchmarks a trajectory: one compact
``{"bench", "metric", "value", "git_sha"}`` JSON line per headline metric,
appended to ``<history dir>/<bench>.jsonl`` — the ``BENCH_*.json`` files
are overwritten per run, the history is not.  :func:`parse_args` is the
one-flag CLI (``--history DIR``) every script's ``main`` shares.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict

SCHEMA_VERSION = 1

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def host_info() -> dict:
    """Host facts that contextualize a timing (never used in any gate)."""
    import numpy

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def git_sha() -> str | None:
    """Current commit hash, or ``None`` outside a usable git checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return output or None


def write_bench_json(path: str, bench: str, results: Dict[str, Any]) -> dict:
    """Write one benchmark artefact in the shared envelope; returns the doc."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "host": host_info(),
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def read_bench_results(path: str) -> Dict[str, Any] | None:
    """Measurement payload of a stored artefact (enveloped or legacy bare)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            stored = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(stored, dict):
        return None
    if stored.get("schema_version") is not None and isinstance(stored.get("results"), dict):
        return stored["results"]
    return stored


def append_history(history_dir: str, bench: str, metrics: Dict[str, float]) -> str:
    """Append one ``{bench, metric, value, git_sha}`` row per metric.

    Rows accumulate in ``<history_dir>/<bench>.jsonl`` across runs and
    commits, so throughput trajectories survive the per-run overwrite of
    the ``BENCH_*.json`` artefacts.  Returns the history file's path.
    """
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, f"{bench}.jsonl")
    sha = git_sha()
    with open(path, "a", encoding="utf-8") as handle:
        for metric in sorted(metrics):
            handle.write(
                json.dumps(
                    {
                        "bench": bench,
                        "metric": metric,
                        "value": metrics[metric],
                        "git_sha": sha,
                    }
                )
                + "\n"
            )
    return path


def parse_args(argv: "list[str] | None" = None, *, description: str | None = None):
    """The shared benchmark CLI: ``--history DIR`` and nothing else."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="append this run's headline metrics as JSON lines to "
        "DIR/<bench>.jsonl (trend tracking across commits)",
    )
    return parser.parse_args(argv)
