"""Serial vs parallel orchestrator wall-time benchmark on the Figure 5 sweep.

Runs a dense Figure 5 sweep (256 BER points per scheme instead of the
paper's 10) through :func:`repro.experiments.orchestrator.run_experiment`
once serially and once with ``jobs=4`` worker processes, verifies the two
reports are byte-identical, and writes the wall-time comparison to
``benchmarks/BENCH_orchestrator.json``.

The speedup is hardware-bound: the pool cannot beat the serial loop on a
single-core container, so the JSON records ``cpu_count`` next to the
timings and the >= 2x acceptance gate is asserted only where at least four
cores are available (the byte-identity gate always runs).  Run either way::

    PYTHONPATH=src python benchmarks/bench_orchestrator.py
    pytest benchmarks/bench_orchestrator.py -q
"""

from __future__ import annotations

import os
import sys
import time

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import benchlib  # noqa: E402
from repro.experiments.orchestrator import run_experiment  # noqa: E402
from repro.experiments.report import rows_to_csv  # noqa: E402

JOBS = 4
NUM_BER_POINTS = 256
_JSON_PATH = os.path.join(_HERE, "BENCH_orchestrator.json")


def _dense_ber_grid(num_points: int = NUM_BER_POINTS) -> list[float]:
    """Log-spaced BER axis over the paper's 1e-3..1e-12 Figure 5 range."""
    span = num_points - 1
    return [10.0 ** (-3.0 - 9.0 * index / span) for index in range(num_points)]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def run_benchmark(num_points: int = NUM_BER_POINTS, jobs: int = JOBS) -> dict:
    """Time the dense sweep serially and pooled; returns the comparison dict."""
    options = {"target_bers": _dense_ber_grid(num_points)}
    # Warm the memoized code/field/synthesis caches so neither side pays them.
    run_experiment("figure5", options={"target_bers": _dense_ber_grid(4)})

    start = time.perf_counter()
    serial_text, serial_rows = run_experiment("figure5", options=options)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_text, parallel_rows = run_experiment("figure5", options=options, jobs=jobs)
    parallel_seconds = time.perf_counter() - start

    identical = serial_text == parallel_text and rows_to_csv(serial_rows) == rows_to_csv(
        parallel_rows
    )
    return {
        "experiment": "figure5",
        "num_ber_points": num_points,
        "jobs": jobs,
        "cpu_count": _cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "byte_identical": identical,
    }


def test_parallel_report_is_byte_identical():
    """Acceptance gate: jobs=4 reproduces the serial report byte for byte."""
    results = run_benchmark(num_points=64)
    assert results["byte_identical"], results


def test_parallel_is_at_least_twice_as_fast_on_multicore():
    """Acceptance gate: >= 2x wall time at 4 workers (needs >= 4 cores)."""
    if _cpu_count() < 4:
        pytest.skip(f"only {_cpu_count()} core(s) available; speedup is hardware-bound")
    results = run_benchmark()
    assert results["speedup"] >= 2.0, results


def main(argv: list[str] | None = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark()
    benchlib.write_bench_json(_JSON_PATH, "orchestrator", results)
    if args.history:
        benchlib.append_history(
            args.history,
            "orchestrator",
            {
                "serial_seconds": results["serial_seconds"],
                "parallel_seconds": results["parallel_seconds"],
                "speedup": results["speedup"],
            },
        )
    print(
        f"figure5 x{results['num_ber_points']} BER points: "
        f"serial {results['serial_seconds']:.2f}s, "
        f"jobs={results['jobs']} {results['parallel_seconds']:.2f}s "
        f"({results['speedup']:.2f}x on {results['cpu_count']} cpu(s), "
        f"byte-identical: {results['byte_identical']})"
    )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
