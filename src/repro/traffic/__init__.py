"""Synthetic workloads exercising the managed optical interconnect.

The paper motivates the runtime ECC/laser configuration with two application
classes: real-time traffic (deadlines, favour speed) and multimedia-like
traffic (throughput/energy, tolerate higher CT or degraded BER).  This
package generates such workloads:

* :mod:`repro.traffic.generators` — stochastic traffic generators (uniform
  random, hotspot, bursty/multimedia).
* :mod:`repro.traffic.tasks` — periodic real-time task sets with deadlines.
* :mod:`repro.traffic.trace` — record/replay of generated request traces.
"""

from .generators import (
    BurstyTrafficGenerator,
    HotspotTrafficGenerator,
    TrafficRequest,
    UniformTrafficGenerator,
)
from .tasks import PeriodicTask, TaskSet
from .trace import TraceRecorder, replay_trace

__all__ = [
    "TrafficRequest",
    "UniformTrafficGenerator",
    "HotspotTrafficGenerator",
    "BurstyTrafficGenerator",
    "PeriodicTask",
    "TaskSet",
    "TraceRecorder",
    "replay_trace",
]
