"""MWSR link-level modelling: power budget, SNR and operating-point design.

This package glues the photonic device models to the coding/BER mathematics:

* :mod:`repro.link.power_budget` — the optical loss budget from the laser to
  the worst-case reader photodetector and the worst-case crosstalk ratio
  (our stand-in for the transmission model of Li et al. [8]).
* :mod:`repro.link.snr` — the paper's Eq. 4 tying received power, crosstalk
  and dark current to SNR, plus its inversion.
* :mod:`repro.link.design` — the operating-point solver used by Figures 5
  and 6: given an ECC and a target BER, compute the required laser output
  power and electrical laser power.
"""

from .power_budget import LinkPowerBudget
from .snr import snr_at_photodetector, required_signal_power
from .design import LinkDesignPoint, OpticalLinkDesigner

__all__ = [
    "LinkPowerBudget",
    "snr_at_photodetector",
    "required_signal_power",
    "LinkDesignPoint",
    "OpticalLinkDesigner",
]
