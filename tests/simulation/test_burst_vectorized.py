"""Equivalence tests for the vectorized Gilbert-Elliott burst model.

The vectorized :meth:`BurstErrorModel.error_pattern` and the pre-vectorization
per-bit loop (:meth:`BurstErrorModel._error_pattern_reference`) consume the
random stream identically, so under a fixed seed they must agree bit for bit
— including the hidden Markov state carried across calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.faults import BurstErrorModel

PARAMETER_SETS = [
    # The model defaults: rare long-lived bursts.
    {},
    # bad->good threshold below good->bad (the force band forces *bad*).
    {"good_to_bad_probability": 0.3, "bad_to_good_probability": 0.05},
    # Equal transition probabilities: the force band is empty, only toggles.
    {"good_to_bad_probability": 0.1, "bad_to_good_probability": 0.1},
    # Deterministic error emission: the pattern is a pure state readout.
    {
        "good_error_probability": 0.0,
        "bad_error_probability": 1.0,
        "good_to_bad_probability": 0.02,
        "bad_to_good_probability": 0.3,
    },
    # Fast-switching chain.
    {"good_to_bad_probability": 0.45, "bad_to_good_probability": 0.55},
]


def _pair(params: dict, seed: int = 42) -> tuple[BurstErrorModel, BurstErrorModel]:
    return (
        BurstErrorModel(rng=np.random.default_rng(seed), **params),
        BurstErrorModel(rng=np.random.default_rng(seed), **params),
    )


class TestVectorizedMatchesReference:
    @pytest.mark.parametrize("params", PARAMETER_SETS)
    def test_fixed_seed_exact_match(self, params):
        vectorized, reference = _pair(params)
        pattern_vec = vectorized.error_pattern(100_000)
        pattern_ref = reference._error_pattern_reference(100_000)
        assert np.array_equal(pattern_vec, pattern_ref)

    @pytest.mark.parametrize("params", PARAMETER_SETS)
    def test_state_carries_across_calls(self, params):
        # Split the same stream into uneven chunks; state must carry over
        # identically or the later chunks diverge.
        vectorized, reference = _pair(params, seed=7)
        for num_bits in (1, 13, 1000, 0, 4096, 77):
            pattern_vec = vectorized.error_pattern(num_bits)
            pattern_ref = reference._error_pattern_reference(num_bits)
            assert np.array_equal(pattern_vec, pattern_ref), num_bits
            assert vectorized._in_bad_state == reference._in_bad_state

    def test_empty_pattern_consumes_no_state(self):
        vectorized, reference = _pair({}, seed=3)
        assert vectorized.error_pattern(0).size == 0
        assert reference._error_pattern_reference(0).size == 0
        assert np.array_equal(
            vectorized.error_pattern(500), reference._error_pattern_reference(500)
        )

    def test_negative_length_rejected_on_both_paths(self):
        model = BurstErrorModel()
        with pytest.raises(ConfigurationError):
            model.error_pattern(-1)
        with pytest.raises(ConfigurationError):
            model._error_pattern_reference(-1)


class TestExpectedBer:
    def test_long_run_average_honors_expected_ber(self):
        model = BurstErrorModel(
            good_error_probability=1e-4,
            bad_error_probability=0.3,
            good_to_bad_probability=0.01,
            bad_to_good_probability=0.2,
            rng=np.random.default_rng(2024),
        )
        pattern = model.error_pattern(2_000_000)
        assert pattern.mean() == pytest.approx(model.expected_ber, rel=0.05)

    def test_apply_preserves_shape_and_burstiness(self):
        model = BurstErrorModel(
            good_error_probability=0.0,
            bad_error_probability=0.5,
            good_to_bad_probability=0.002,
            bad_to_good_probability=0.1,
            rng=np.random.default_rng(11),
        )
        blocks = np.zeros((500, 100), dtype=np.uint8)
        corrupted = model.apply(blocks)
        assert corrupted.shape == blocks.shape
        error_positions = np.nonzero(corrupted.ravel())[0]
        assert error_positions.size > 10
        # Bursty, not memoryless: consecutive errors cluster tightly.
        assert np.median(np.diff(error_positions)) < 20
