"""Token-based arbitration of an MWSR channel.

With multiple writers sharing a reader's channel, only one writer may
modulate at a time.  MWSR proposals (e.g. Corona) typically circulate a
token; we model a round-robin token that advances either when the holder
finishes its transfer or when it has nothing to send.  The arbiter is used
by the message-level simulator to account for channel contention, a cost the
paper's analytic evaluation does not include but which matters when the
longer coded transmissions occupy the channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import ArbitrationError, ConfigurationError

__all__ = ["TokenArbiter"]


@dataclass
class TokenArbiter:
    """Round-robin token arbitration among the writers of a channel."""

    writers: List[int]
    token_hop_time_s: float = 1e-9

    def __post_init__(self) -> None:
        if not self.writers:
            raise ConfigurationError("an arbiter needs at least one writer")
        if len(set(self.writers)) != len(self.writers):
            raise ConfigurationError("writer identifiers must be unique")
        if self.token_hop_time_s < 0:
            raise ConfigurationError("token hop time cannot be negative")
        self._holder_index = 0
        self._busy_until_s = 0.0
        self._grants: Dict[int, int] = {writer: 0 for writer in self.writers}

    # ------------------------------------------------------------------ state
    @property
    def current_holder(self) -> int:
        """Writer currently holding the token."""
        return self.writers[self._holder_index]

    @property
    def busy_until_s(self) -> float:
        """Simulation time until which the channel is occupied."""
        return self._busy_until_s

    def grant_counts(self) -> Dict[int, int]:
        """Number of grants given to each writer so far."""
        return dict(self._grants)

    # ------------------------------------------------------------------ operation
    def request(self, writer: int, now_s: float, duration_s: float) -> float:
        """Request the channel for a transfer; returns the grant (start) time.

        The token travels round-robin from its current holder to the
        requesting writer (each hop costs ``token_hop_time_s``); the transfer
        then starts once the channel is free.
        """
        if writer not in self._grants:
            raise ArbitrationError(f"writer {writer} is not attached to this channel")
        if duration_s < 0:
            raise ConfigurationError("transfer duration cannot be negative")
        target_index = self.writers.index(writer)
        hops = (target_index - self._holder_index) % len(self.writers)
        token_arrival = max(now_s, self._busy_until_s) + hops * self.token_hop_time_s
        start = max(token_arrival, self._busy_until_s, now_s)
        self._holder_index = target_index
        self._busy_until_s = start + duration_s
        self._grants[writer] += 1
        return start

    def idle_advance(self) -> Optional[int]:
        """Advance the token by one writer when nobody is transmitting."""
        self._holder_index = (self._holder_index + 1) % len(self.writers)
        return self.current_holder
