"""Wavelength-division-multiplexing grid.

The paper's MWSR channel carries 16 wavelengths per waveguide.  The grid
object owns the channel wavelengths and spacing and provides the detuning
queries the crosstalk model needs (how far is channel j's carrier from
channel i's drop ring resonance?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..units import SPEED_OF_LIGHT

__all__ = ["WDMGrid"]


@dataclass(frozen=True)
class WDMGrid:
    """Uniformly spaced WDM wavelength grid."""

    num_channels: int = 16
    center_wavelength_m: float = 1550e-9
    channel_spacing_m: float = 0.8e-9

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ConfigurationError("a WDM grid needs at least one channel")
        if self.center_wavelength_m <= 0:
            raise ConfigurationError("centre wavelength must be positive")
        if self.channel_spacing_m <= 0:
            raise ConfigurationError("channel spacing must be positive")

    @property
    def wavelengths_m(self) -> Tuple[float, ...]:
        """Channel wavelengths, lowest index = shortest wavelength."""
        first = (
            self.center_wavelength_m
            - (self.num_channels - 1) / 2.0 * self.channel_spacing_m
        )
        return tuple(first + i * self.channel_spacing_m for i in range(self.num_channels))

    @property
    def channel_spacing_hz(self) -> float:
        """Approximate frequency spacing of the grid around the centre."""
        lam = self.center_wavelength_m
        return SPEED_OF_LIGHT * self.channel_spacing_m / (lam * lam)

    def wavelength(self, channel_index: int) -> float:
        """Wavelength of one channel."""
        if not 0 <= channel_index < self.num_channels:
            raise ConfigurationError(
                f"channel index {channel_index} outside [0, {self.num_channels - 1}]"
            )
        return self.wavelengths_m[channel_index]

    def detuning_m(self, channel_a: int, channel_b: int) -> float:
        """Signed wavelength difference between two channels (a minus b)."""
        return self.wavelength(channel_a) - self.wavelength(channel_b)

    def neighbours(self, channel_index: int) -> Tuple[int, ...]:
        """Indices of the directly adjacent channels."""
        self.wavelength(channel_index)
        result = []
        if channel_index > 0:
            result.append(channel_index - 1)
        if channel_index < self.num_channels - 1:
            result.append(channel_index + 1)
        return tuple(result)

    def as_array(self) -> np.ndarray:
        """Wavelengths as a numpy array."""
        return np.array(self.wavelengths_m)

    @classmethod
    def from_config(cls, config) -> "WDMGrid":
        """Build the grid from a :class:`repro.config.PaperConfig`."""
        return cls(
            num_channels=config.num_wavelengths,
            center_wavelength_m=config.center_wavelength_m,
            channel_spacing_m=config.channel_spacing_m,
        )
