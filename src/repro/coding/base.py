"""Abstract linear block code with encoding and syndrome decoding.

Every concrete code in :mod:`repro.coding` (Hamming, shortened Hamming,
SECDED, parity, repetition, BCH) derives from :class:`LinearBlockCode`.  The
base class implements:

* systematic encoding from a generator matrix,
* syndrome-table decoding (single-error correction or general
  minimum-weight coset leaders for small codes),
* block segmentation so arbitrary-length bit streams can be pushed through
  the code, mirroring the paper's interfaces where a 64-bit IP word is
  split across sixteen H(7,4) encoders or one H(71,64) encoder,
* the performance metadata the rest of the library needs: code rate,
  communication-time overhead (paper Section IV-D) and correction
  capability.

Bit vectors are numpy ``uint8`` arrays of 0/1 values, most-significant bit
first within a block; the ordering convention only matters for tests since
all analyses are symmetric in bit position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError, DecodingFailure
from .matrices import as_gf2, gf2_matmul, gf2_parity_check_from_systematic_generator, hamming_weight

__all__ = ["Codeword", "DecodeResult", "LinearBlockCode"]


@dataclass(frozen=True)
class Codeword:
    """A single encoded block together with the message it encodes."""

    message_bits: np.ndarray
    code_bits: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "message_bits", as_gf2(self.message_bits))
        object.__setattr__(self, "code_bits", as_gf2(self.code_bits))

    @property
    def n(self) -> int:
        """Block length of the codeword."""
        return int(self.code_bits.size)

    @property
    def k(self) -> int:
        """Message length of the codeword."""
        return int(self.message_bits.size)


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding a single received block.

    ``detected_error`` is True when the syndrome was non-zero;
    ``corrected`` is True when the decoder believes it repaired the block;
    ``failure`` is True when the decoder knows the error pattern exceeded its
    correction capability (only detectable for codes with minimum distance
    greater than ``2 t + 1``, e.g. SECDED).
    """

    message_bits: np.ndarray
    corrected_codeword: np.ndarray
    detected_error: bool
    corrected: bool
    failure: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "message_bits", as_gf2(self.message_bits))
        object.__setattr__(self, "corrected_codeword", as_gf2(self.corrected_codeword))


class LinearBlockCode:
    """A systematic (n, k) linear block code over GF(2).

    Parameters
    ----------
    generator:
        Systematic generator matrix of shape ``(k, n)`` in the form
        ``[I_k | P]``.
    name:
        Human-readable name such as ``"H(7,4)"``; used by the registry, the
        experiment reports and figure legends.
    minimum_distance:
        Known minimum distance of the code.  Required because several
        analytic BER expressions depend on it and exhaustive computation is
        infeasible for codes such as H(71,64).
    """

    def __init__(self, generator, *, name: str, minimum_distance: int):
        self._generator = as_gf2(generator)
        if self._generator.ndim != 2:
            raise ConfigurationError("generator matrix must be two-dimensional")
        self._k, self._n = self._generator.shape
        if self._k <= 0 or self._n <= self._k:
            raise ConfigurationError(
                f"invalid code dimensions (n={self._n}, k={self._k}); need n > k >= 1"
            )
        if minimum_distance < 1:
            raise ConfigurationError("minimum distance must be at least 1")
        self._name = str(name)
        self._dmin = int(minimum_distance)
        self._parity_check = gf2_parity_check_from_systematic_generator(self._generator)
        self._syndrome_table: Optional[dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------ metadata
    @property
    def name(self) -> str:
        """Display name of the code (e.g. ``"H(7,4)"``)."""
        return self._name

    @property
    def n(self) -> int:
        """Block length."""
        return self._n

    @property
    def k(self) -> int:
        """Message length."""
        return self._k

    @property
    def num_parity_bits(self) -> int:
        """Number of redundancy bits per block (n - k)."""
        return self._n - self._k

    @property
    def minimum_distance(self) -> int:
        """Minimum Hamming distance of the code."""
        return self._dmin

    @property
    def correctable_errors(self) -> int:
        """Guaranteed number of correctable errors t = floor((dmin - 1) / 2)."""
        return (self._dmin - 1) // 2

    @property
    def detectable_errors(self) -> int:
        """Guaranteed number of detectable errors (dmin - 1)."""
        return self._dmin - 1

    @property
    def code_rate(self) -> float:
        """Code rate Rc = k / n."""
        return self._k / self._n

    @property
    def communication_time_overhead(self) -> float:
        """Relative transmission-time increase CT = n / k (paper Section IV-D).

        The paper normalises the communication time to the uncoded case, so
        H(7,4) has CT = 1.75 and H(71,64) has CT ~ 1.11.
        """
        return self._n / self._k

    @property
    def generator_matrix(self) -> np.ndarray:
        """Copy of the systematic generator matrix ``[I_k | P]``."""
        return self._generator.copy()

    @property
    def parity_check_matrix(self) -> np.ndarray:
        """Copy of the parity-check matrix ``[P^T | I_{n-k}]``."""
        return self._parity_check.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self._name!r}, n={self._n}, k={self._k}, dmin={self._dmin})"

    # ------------------------------------------------------------------ encoding
    def encode_block(self, message_bits) -> np.ndarray:
        """Encode exactly one k-bit message block into an n-bit codeword."""
        message = as_gf2(message_bits).ravel()
        if message.size != self._k:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._k}-bit message, got {message.size} bits"
            )
        return gf2_matmul(message[np.newaxis, :], self._generator)[0]

    def encode(self, bits) -> np.ndarray:
        """Encode a bit stream whose length is a multiple of ``k``.

        The stream is split into consecutive k-bit blocks which are encoded
        independently, matching the parallel encoder banks of the paper's
        transmitter interface.
        """
        stream = as_gf2(bits).ravel()
        if stream.size % self._k != 0:
            raise CodewordLengthError(
                f"{self._name}: stream length {stream.size} is not a multiple of k={self._k}"
            )
        blocks = stream.reshape(-1, self._k)
        return gf2_matmul(blocks, self._generator).reshape(-1)

    # ------------------------------------------------------------------ decoding
    def syndrome(self, received_bits) -> np.ndarray:
        """Syndrome ``H r^T`` of a received n-bit block."""
        received = as_gf2(received_bits).ravel()
        if received.size != self._n:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._n}-bit block, got {received.size} bits"
            )
        return gf2_matmul(self._parity_check, received[:, np.newaxis])[:, 0]

    def _build_syndrome_table(self) -> dict[int, np.ndarray]:
        """Map syndrome integers to minimum-weight error patterns.

        The default implementation covers all single-bit error patterns,
        which is exact for Hamming codes (t = 1) and a best-effort choice for
        larger-distance codes; subclasses with higher correction capability
        override :meth:`decode_block` or extend the table.
        """
        table: dict[int, np.ndarray] = {}
        for position in range(self._n):
            error = np.zeros(self._n, dtype=np.uint8)
            error[position] = 1
            key = self._syndrome_key(self.syndrome(error))
            table.setdefault(key, error)
        return table

    @staticmethod
    def _syndrome_key(syndrome: np.ndarray) -> int:
        """Pack a syndrome bit vector into an integer dictionary key."""
        key = 0
        for bit in syndrome:
            key = (key << 1) | int(bit)
        return key

    def decode_block(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Decode one received block by syndrome lookup.

        When the syndrome is zero the block is accepted as-is.  Otherwise the
        decoder flips the bits of the stored coset-leader error pattern; if
        the syndrome is not in the table the decoder reports a failure (and
        raises :class:`DecodingFailure` in ``strict`` mode).
        """
        received = as_gf2(received_bits).ravel()
        if received.size != self._n:
            raise CodewordLengthError(
                f"{self._name}: expected a {self._n}-bit block, got {received.size} bits"
            )
        syndrome = self.syndrome(received)
        if not syndrome.any():
            return DecodeResult(
                message_bits=received[: self._k].copy(),
                corrected_codeword=received.copy(),
                detected_error=False,
                corrected=False,
            )
        if self._syndrome_table is None:
            self._syndrome_table = self._build_syndrome_table()
        error = self._syndrome_table.get(self._syndrome_key(syndrome))
        if error is None:
            if strict:
                raise DecodingFailure(f"{self._name}: uncorrectable syndrome {syndrome.tolist()}")
            return DecodeResult(
                message_bits=received[: self._k].copy(),
                corrected_codeword=received.copy(),
                detected_error=True,
                corrected=False,
                failure=True,
            )
        corrected = received ^ error
        return DecodeResult(
            message_bits=corrected[: self._k].copy(),
            corrected_codeword=corrected,
            detected_error=True,
            corrected=True,
        )

    def decode(self, bits, *, strict: bool = False) -> np.ndarray:
        """Decode a bit stream whose length is a multiple of ``n``.

        Returns the concatenated decoded messages; per-block status
        information is available through :meth:`decode_block`.
        """
        stream = as_gf2(bits).ravel()
        if stream.size % self._n != 0:
            raise CodewordLengthError(
                f"{self._name}: stream length {stream.size} is not a multiple of n={self._n}"
            )
        blocks = stream.reshape(-1, self._n)
        decoded = [self.decode_block(block, strict=strict).message_bits for block in blocks]
        if not decoded:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(decoded)

    # ------------------------------------------------------------------ helpers
    def codewords(self) -> Iterable[Codeword]:
        """Iterate over every codeword of the code (small codes only).

        Intended for tests; refuses codes with more than 2^16 codewords.
        """
        if self._k > 16:
            raise ConfigurationError(
                f"refusing to enumerate 2^{self._k} codewords; use analytic tools instead"
            )
        for value in range(1 << self._k):
            message = np.array([(value >> bit) & 1 for bit in range(self._k)], dtype=np.uint8)
            yield Codeword(message_bits=message, code_bits=self.encode_block(message))

    def is_codeword(self, bits) -> bool:
        """Check whether an n-bit vector lies in the code."""
        return not self.syndrome(bits).any()

    def codeword_weight(self, message_bits) -> int:
        """Hamming weight of the codeword encoding ``message_bits``."""
        return hamming_weight(self.encode_block(message_bits))
