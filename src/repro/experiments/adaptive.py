"""Experiment ``adaptive``: online ECC/laser adaptation vs static worst-case.

The paper's central claim is that an OS-level manager reconfiguring the
ECC scheme and laser power *at run time* saves energy over a link designed
statically for worst-case channel conditions.  This experiment finally
simulates that scenario: the discrete-event engine runs under time-varying
raw-BER drift (:mod:`repro.netsim.dynamics`) and three management policies
are compared on the same traffic, seeds and drift trajectories:

``static-worst``
    Every transfer is provisioned for the drift model's worst-case
    multiplier — the paper's static design.  Meets the BER target at all
    times and pays for it constantly.
``adaptive``
    The online controller (:class:`~repro.manager.runtime.AdaptiveEccController`)
    watches the receiver's failure telemetry through a windowed monitor and
    switches margin levels with hysteresis; reconfiguration latency and
    energy are charged in the event loop.
``oracle``
    A clairvoyant controller that always sits on the smallest sufficient
    margin level — the lower bound online control is measured against.

Per grid point (drift profile x policy x load) the payload carries the full
network metrics, the controller's switch/energy accounting and a
per-interval energy/latency/switch trace; the merge step reports each
policy's **energy saved versus the static worst-case design** — the paper's
headline number — on identical workloads.

One shard per grid point, each rebuilding traffic / engine / drift /
telemetry generators from ``SeedSequence(seed, spawn_key=(spawn_index,
stream))``, so ``repro-experiments adaptive --jobs N`` is byte-identical to
the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..manager.policies import (
    FailureRateMonitor,
    HysteresisSwitchingPolicy,
    MinimumPowerPolicy,
    margin_levels,
)
from ..manager.runtime import AdaptiveEccController
from ..netsim import NetworkSimulator, make_drift_model
from ..netsim.dynamics import DRIFT_PROFILES
from ..traffic.generators import UniformTrafficGenerator
from .network import request_rate_for_load

__all__ = [
    "AdaptiveSweepResult",
    "run_adaptive",
    "sweep_shards",
    "run_sweep_shard",
    "merge_sweep",
    "DEFAULT_DRIFTS",
    "DEFAULT_POLICIES",
    "DEFAULT_LOADS",
]

#: Default sweep axes: the two deterministic drift shapes, the three
#: management policies and a light/heavy load pair.
DEFAULT_DRIFTS: tuple[str, ...] = ("thermal", "aging")
DEFAULT_POLICIES: tuple[str, ...] = ("static-worst", "adaptive", "oracle")
DEFAULT_LOADS: tuple[float, ...] = (0.2, 0.5)
DEFAULT_NUM_REQUESTS = 1200
DEFAULT_PAYLOAD_BITS = 4096
DEFAULT_TARGET_BER = 1e-9
DEFAULT_WORST_CASE_MULTIPLIER = 16.0
DEFAULT_SEED = 20260
#: Trace resolution: intervals per (estimated) simulation horizon.
TRACE_INTERVALS = 20

_POLICY_MODES = {"static-worst": "static", "adaptive": "adaptive", "oracle": "oracle"}


def _shard_defaults(options: dict) -> dict:
    """The JSON-serializable per-shard knobs shared by every grid point."""
    return {
        "num_requests": int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
        "payload_bits": int(options.get("payload_bits", DEFAULT_PAYLOAD_BITS)),
        "target_ber": float(options.get("target_ber", DEFAULT_TARGET_BER)),
        "packet_bits": int(options.get("packet_bits", 512)),
        "max_retries": int(options.get("max_retries", 4)),
        "warmup_fraction": float(options.get("warmup_fraction", 0.1)),
        "worst_case_multiplier": float(
            options.get("worst_case_multiplier", DEFAULT_WORST_CASE_MULTIPLIER)
        ),
        "margin_ratio": float(options.get("margin_ratio", 2.0)),
        "monitor_window_blocks": int(options.get("monitor_window_blocks", 8192)),
        "switch_latency_s": float(options.get("switch_latency_s", 200e-9)),
        "switch_energy_j": float(options.get("switch_energy_j", 1e-9)),
        "seed": int(options.get("seed", DEFAULT_SEED)),
    }


# ------------------------------------------------------------------ grid API
def sweep_shards(config: PaperConfig = DEFAULT_CONFIG, options: dict | None = None) -> list[dict]:
    """Grid descriptor: one shard per (drift profile, policy, load) point.

    ``options`` may override ``drifts``, ``policies``, ``loads`` and every
    knob listed in :func:`_shard_defaults` (all JSON-serializable; they
    become part of the checkpoint fingerprint).
    """
    options = options or {}
    drifts = list(options.get("drifts", DEFAULT_DRIFTS))
    policies = list(options.get("policies", DEFAULT_POLICIES))
    loads = [float(load) for load in options.get("loads", DEFAULT_LOADS)]
    for drift in drifts:
        if drift not in DRIFT_PROFILES:
            raise ConfigurationError(
                f"unknown drift profile {drift!r}; available: {DRIFT_PROFILES}"
            )
    for policy in policies:
        if policy not in _POLICY_MODES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; available: {sorted(_POLICY_MODES)}"
            )
    defaults = _shard_defaults(options)
    shards = []
    pair_index = 0
    for drift in drifts:
        for load in loads:
            for policy in policies:
                shard = dict(defaults)
                # Every policy of one (drift, load) pair shares the pair's
                # seed streams, so the policies are compared on literally
                # the same traffic and drift trajectories.
                shard.update(
                    {"drift": drift, "policy": policy, "load": load, "pair_index": pair_index}
                )
                shards.append(shard)
            pair_index += 1
    return shards


def run_sweep_shard(params: dict, config: PaperConfig = DEFAULT_CONFIG) -> dict:
    """Worker: simulate one (drift, policy, load) point; JSON payload.

    Four independent per-point streams are derived from the grid position —
    traffic (0), engine (1), drift trajectories (2) and monitor telemetry
    (3) — so the payload depends only on the shard parameters, which is
    what makes parallel sweeps byte-identical to serial ones.  All policies
    of a (drift, load) pair share the same ``pair_index`` and therefore
    face literally the same workload and channel conditions.
    """
    seed = params["seed"]
    streams = {
        name: np.random.SeedSequence(seed, spawn_key=(params["pair_index"], stream))
        for stream, name in enumerate(("traffic", "engine", "drift", "telemetry"))
    }
    rate_hz = request_rate_for_load(params["load"], config, payload_bits=params["payload_bits"])
    generator = UniformTrafficGenerator(
        config.num_onis,
        mean_request_rate_hz=rate_hz,
        payload_bits=params["payload_bits"],
        target_ber=params["target_ber"],
        seed=streams["traffic"],
    )
    horizon_s = params["num_requests"] / rate_hz
    dynamics = make_drift_model(
        params["drift"],
        config.num_onis,
        seed=streams["drift"],
        worst_case_multiplier=params["worst_case_multiplier"],
        timescale_s=horizon_s,
    )
    worst = dynamics.worst_case_multiplier if dynamics is not None else 1.0
    controller = AdaptiveEccController(
        margins=margin_levels(worst, ratio=params["margin_ratio"]),
        mode=_POLICY_MODES[params["policy"]],
        monitor=FailureRateMonitor(window_blocks=params["monitor_window_blocks"]),
        switching_policy=HysteresisSwitchingPolicy(),
        switch_latency_s=params["switch_latency_s"],
        switch_energy_j=params["switch_energy_j"],
    )
    simulator = NetworkSimulator(
        config=config,
        policy=MinimumPowerPolicy(),
        mode="probabilistic",
        packet_bits=params["packet_bits"],
        max_retries=params["max_retries"],
        warmup_fraction=params["warmup_fraction"],
        seed=streams["engine"],
        dynamics=dynamics,
        controller=controller,
        telemetry_seed=streams["telemetry"],
        trace_interval_s=horizon_s / TRACE_INTERVALS,
    )
    result = simulator.run(generator.generate(params["num_requests"]))
    payload = {
        "drift": params["drift"],
        "policy": params["policy"],
        "load": params["load"],
        "margin_top": worst,
    }
    payload.update(result.metrics().as_dict())
    payload["trace"] = [row.as_dict() for row in result.interval_trace]
    return payload


@dataclass
class AdaptiveSweepResult:
    """Rows of the adaptation sweep (one per drift x policy x load point)."""

    rows: List[dict]
    num_requests: int

    def rows_for(self, drift: str, policy: str) -> List[dict]:
        """The load series of one (drift, policy) curve."""
        return [row for row in self.rows if row["drift"] == drift and row["policy"] == policy]

    def to_rows(self) -> List[dict]:
        """CSV rows for the experiment runner (scalar columns only)."""
        return [
            {key: value for key, value in row.items() if key != "trace"}
            for row in self.rows
        ]

    def render_text(self) -> str:
        """Human-readable energy/adaptation comparison table."""
        header = (
            f"{'drift':<12} {'policy':<13} {'load':>5} {'energy':>10} {'saved':>7} "
            f"{'switch':>7} {'p99 lat':>10} {'delivered':>11} {'dBER':>9}"
        )
        units = (
            f"{'':<12} {'':<13} {'':>5} {'(uJ)':>10} {'(%)':>7} "
            f"{'':>7} {'(ns)':>10} {'(Gb/s)':>11} {'':>9}"
        )
        lines = [
            "Online adaptive-ECC control under time-varying channels "
            f"({self.num_requests} requests per point, identical traffic/drift per policy)",
            header,
            units,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                f"{row['drift']:<12} {row['policy']:<13} {row['load']:5.2f} "
                f"{row['total_energy_j'] * 1e6:10.4f} "
                f"{row.get('energy_saved_vs_static_pct', 0.0):7.2f} "
                f"{row['configuration_switches']:7d} {row['latency_p99_s'] * 1e9:10.1f} "
                f"{row['delivered_gbps']:11.1f} {row['delivered_bit_error_rate']:9.2e}"
            )
        adaptive_rows = [
            row for row in self.rows if row["policy"] == "adaptive" and "energy_saved_vs_static_pct" in row
        ]
        if adaptive_rows:
            mean_saved = sum(row["energy_saved_vs_static_pct"] for row in adaptive_rows) / len(
                adaptive_rows
            )
            lines.append(
                f"Adaptive control saves {mean_saved:.1f}% channel energy on average vs the "
                "static worst-case design at the same BER target (switch penalties included)."
            )
        lines.append(
            "Energy includes reconfiguration penalties; 'saved' is relative to the "
            "static-worst policy of the same (drift, load) point."
        )
        return "\n".join(lines)


def merge_sweep(
    payloads: Sequence[dict],
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> tuple[str, list[dict]]:
    """Assemble shard payloads into the (text report, CSV rows) pair.

    Annotates every non-static row with ``energy_saved_vs_static_pct``
    against the static-worst row of the same (drift, load) point.
    """
    options = options or {}
    rows = [dict(payload) for payload in payloads]
    static_energy = {
        (row["drift"], row["load"]): row["total_energy_j"]
        for row in rows
        if row["policy"] == "static-worst"
    }
    for row in rows:
        baseline = static_energy.get((row["drift"], row["load"]))
        # Every row carries the column (the CSV writer needs uniform keys);
        # the static baseline itself and points without one report 0.
        row["energy_saved_vs_static_pct"] = (
            100.0 * (1.0 - row["total_energy_j"] / baseline)
            if baseline is not None and baseline > 0.0 and row["policy"] != "static-worst"
            else 0.0
        )
    result = AdaptiveSweepResult(
        rows=rows,
        num_requests=int(options.get("num_requests", DEFAULT_NUM_REQUESTS)),
    )
    return result.render_text(), result.to_rows()


def run_adaptive(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    options: dict | None = None,
) -> AdaptiveSweepResult:
    """Run the full adaptation sweep serially and return the structured result."""
    payloads = [run_sweep_shard(params, config) for params in sweep_shards(config, options)]
    text, rows = merge_sweep(payloads, config, options)
    return AdaptiveSweepResult(
        rows=rows, num_requests=int((options or {}).get("num_requests", DEFAULT_NUM_REQUESTS))
    )
