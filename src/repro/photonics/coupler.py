"""Multimode-interference (MMI) coupler / multiplexer model.

The MWSR channel combines the un-modulated carriers of the NW laser sources
onto the shared waveguide with an MMI coupler (Mandorlo et al.).  For the
power budget only its insertion loss matters; an optional imbalance term is
provided for sensitivity studies across the wavelength grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..units import db_loss_to_transmission

__all__ = ["MMICoupler"]


@dataclass(frozen=True)
class MMICoupler:
    """Insertion-loss model of the laser multiplexer."""

    insertion_loss_db: float = 1.0
    imbalance_db: float = 0.0
    num_ports: int = 16

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ConfigurationError("insertion loss cannot be negative")
        if self.imbalance_db < 0:
            raise ConfigurationError("imbalance cannot be negative")
        if self.num_ports < 1:
            raise ConfigurationError("the coupler needs at least one port")

    @property
    def transmission(self) -> float:
        """Nominal (imbalance-free) power transmission through the coupler."""
        return db_loss_to_transmission(self.insertion_loss_db)

    def port_transmission(self, port_index: int) -> float:
        """Transmission of one input port including the worst-case imbalance.

        The imbalance is distributed linearly across ports: port 0 sees the
        nominal loss, the last port sees the nominal loss plus the full
        imbalance.
        """
        if not 0 <= port_index < self.num_ports:
            raise ConfigurationError(
                f"port index {port_index} outside [0, {self.num_ports - 1}]"
            )
        if self.num_ports == 1:
            extra_db = 0.0
        else:
            extra_db = self.imbalance_db * port_index / (self.num_ports - 1)
        return db_loss_to_transmission(self.insertion_loss_db + extra_db)

    def all_port_transmissions(self) -> np.ndarray:
        """Transmissions of every input port as an array."""
        return np.array([self.port_transmission(i) for i in range(self.num_ports)])

    @classmethod
    def from_config(cls, config) -> "MMICoupler":
        """Build the coupler from a :class:`repro.config.PaperConfig`."""
        return cls(
            insertion_loss_db=config.mux_insertion_loss_db,
            num_ports=config.num_wavelengths,
        )
