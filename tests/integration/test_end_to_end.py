"""Integration tests crossing module boundaries.

These tests exercise the full chains the paper's argument rests on:
analytic design → physical simulation, manager → power accounting →
interconnect totals, and the headline numbers of the evaluation section.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CommunicationRequest,
    DEFAULT_CONFIG,
    HammingCode,
    OpticalLinkDesigner,
    OpticalLinkManager,
    ShortenedHammingCode,
    UncodedScheme,
    paper_code_set,
)
from repro.coding.theory import output_ber
from repro.manager import MinimumPowerPolicy, RuntimeSimulation
from repro.power import channel_power_breakdown, energy_metrics, interconnect_power_summary
from repro.simulation import OpticalLinkSimulator


class TestAnalyticDesignVersusSimulation:
    """The operating point computed analytically must hold up in simulation."""

    @pytest.mark.parametrize("target_ber", [1e-3, 1e-4])
    def test_simulated_raw_ber_matches_the_design(self, target_ber, rng):
        designer = OpticalLinkDesigner()
        code = ShortenedHammingCode(64)
        point = designer.design_point(code, target_ber)
        simulator = OpticalLinkSimulator(code, point, rng=rng)
        result = simulator.run(num_blocks=3000)
        assert result.measured_raw_ber == pytest.approx(point.raw_channel_ber, rel=0.25)

    def test_simulated_post_decoding_ber_is_near_the_target(self, rng):
        designer = OpticalLinkDesigner()
        code = HammingCode(3)
        target = 1e-3
        point = designer.design_point(code, target)
        simulator = OpticalLinkSimulator(code, point, rng=rng)
        result = simulator.run(num_blocks=20000)
        # The analytic post-decoding BER of the designed point equals the target.
        assert output_ber(code, point.raw_channel_ber) == pytest.approx(target, rel=1e-6)
        # The simulated value sits within a factor of ~2 of the target: the
        # paper's Eq. 2 slightly underestimates the residual BER because a
        # miscorrected double error adds a third erroneous bit (documented in
        # EXPERIMENTS.md); the simulation includes that amplification.
        assert target * 0.5 < result.measured_post_decoding_ber < target * 2.5

    def test_coded_link_beats_uncoded_link_at_equal_laser_power(self, rng):
        # Fix the laser at the H(7,4) operating point and show the uncoded
        # link cannot reach the same quality: the coding gain is real.
        designer = OpticalLinkDesigner()
        target = 1e-4
        coded = HammingCode(3)
        coded_point = designer.design_point(coded, target)
        uncoded = UncodedScheme(64)
        uncoded_at_same_power = designer.design_point(uncoded, target)
        assert coded_point.laser_electrical_power_w < uncoded_at_same_power.laser_electrical_power_w
        # Simulate the uncoded link at the *coded* link's (lower) signal power.
        sim = OpticalLinkSimulator(uncoded, coded_point, config=DEFAULT_CONFIG, rng=rng)
        result = sim.run(num_blocks=300)
        assert result.measured_post_decoding_ber > target


class TestManagerToPowerChain:
    def test_managed_configuration_is_consistent_with_power_models(self):
        manager = OpticalLinkManager(default_policy=MinimumPowerPolicy())
        request = CommunicationRequest(source=4, destination=0, target_ber=1e-11)
        configuration = manager.configure(request)
        breakdown = channel_power_breakdown(
            next(c for c in manager.codes if c.name == configuration.code_name), 1e-11
        )
        assert configuration.channel_power_w == pytest.approx(breakdown.total_power_w, rel=1e-6)

    def test_runtime_energy_matches_power_times_time(self):
        manager = OpticalLinkManager()
        simulation = RuntimeSimulation(manager=manager)
        request = CommunicationRequest(source=1, destination=0, target_ber=1e-11, payload_bits=4096)
        outcomes = simulation.run([(request, None)])
        outcome = outcomes[0]
        expected = (
            outcome.configuration.channel_power_w
            * DEFAULT_CONFIG.num_wavelengths
            * outcome.duration_s
        )
        assert outcome.energy_j == pytest.approx(expected)


class TestPaperHeadlineNumbers:
    """The quantitative claims of Section V, end to end."""

    @pytest.fixture(scope="class")
    def points(self):
        designer = OpticalLinkDesigner()
        return {code.name: designer.design_point(code, 1e-11) for code in paper_code_set()}

    def test_laser_power_values_track_figure5(self, points):
        assert points["w/o ECC"].laser_power_mw == pytest.approx(14.35, rel=0.20)
        assert points["H(71,64)"].laser_power_mw == pytest.approx(7.12, rel=0.20)
        assert points["H(7,4)"].laser_power_mw == pytest.approx(6.64, rel=0.20)

    def test_laser_power_reduction_is_nearly_half(self, points):
        reduction = 1 - points["H(7,4)"].laser_electrical_power_w / points["w/o ECC"].laser_electrical_power_w
        assert reduction > 0.45

    def test_channel_power_and_energy_per_bit(self):
        breakdown_uncoded = channel_power_breakdown(UncodedScheme(64), 1e-11)
        breakdown_h71 = channel_power_breakdown(ShortenedHammingCode(64), 1e-11)
        energy_uncoded = energy_metrics(breakdown_uncoded)
        energy_h71 = energy_metrics(breakdown_h71)
        # H(71,64) is the most energy-efficient scheme (paper Section V-C).
        assert energy_h71.energy_per_bit_modulation_j < energy_uncoded.energy_per_bit_modulation_j
        # Per-waveguide power drops from ~251 mW to ~136 mW.
        assert breakdown_uncoded.total_power_mw * 16 == pytest.approx(251, rel=0.10)
        assert breakdown_h71.total_power_mw * 16 == pytest.approx(136, rel=0.10)

    def test_interconnect_saving_reaches_tens_of_watts(self):
        uncoded = interconnect_power_summary(channel_power_breakdown(UncodedScheme(64), 1e-11))
        h71 = interconnect_power_summary(channel_power_breakdown(ShortenedHammingCode(64), 1e-11))
        assert uncoded.total_power_w - h71.total_power_w == pytest.approx(22.0, rel=0.25)


class TestCrossConfigurationRobustness:
    """The models must stay consistent away from the paper's exact setup."""

    @pytest.mark.parametrize("num_onis", [4, 8, 20])
    def test_scaling_the_oni_count(self, num_onis):
        config = DEFAULT_CONFIG.with_overrides(num_onis=num_onis)
        designer = OpticalLinkDesigner(config=config)
        point = designer.design_point(HammingCode(3), 1e-9)
        assert point.laser_output_power_w > 0
        assert point.required_snr > 0

    @pytest.mark.parametrize("num_wavelengths", [4, 8, 32])
    def test_scaling_the_wavelength_count(self, num_wavelengths):
        config = DEFAULT_CONFIG.with_overrides(
            num_wavelengths=num_wavelengths, num_waveguides_per_channel=4
        )
        breakdown = channel_power_breakdown(ShortenedHammingCode(64), 1e-9, config=config)
        assert breakdown.total_power_w > 0

    def test_longer_waveguides_need_more_laser_power(self):
        short = OpticalLinkDesigner(config=DEFAULT_CONFIG.with_overrides(waveguide_length_m=0.02))
        long = OpticalLinkDesigner(config=DEFAULT_CONFIG.with_overrides(waveguide_length_m=0.10))
        code = HammingCode(3)
        assert (
            long.design_point(code, 1e-9).laser_output_power_w
            > short.design_point(code, 1e-9).laser_output_power_w
        )

    def test_seeded_runs_are_reproducible(self):
        designer = OpticalLinkDesigner()
        code = HammingCode(3)
        point = designer.design_point(code, 1e-3)
        first = OpticalLinkSimulator(code, point, rng=np.random.default_rng(7)).run(200)
        second = OpticalLinkSimulator(code, point, rng=np.random.default_rng(7)).run(200)
        assert first.measured_raw_ber == second.measured_raw_ber
        assert first.measured_post_decoding_ber == second.measured_post_decoding_ber
