"""Default configurations reproducing the paper's evaluation setup.

The DAC'17 paper evaluates a single MWSR channel of a nanophotonic
interconnect with the following parameters (Section V):

* 12 optical network interfaces (ONIs) on the channel,
* 16 wavelengths per waveguide,
* 6 cm worst-case waveguide length,
* 0.274 dB/cm waveguide propagation loss [Dong et al.],
* micro-ring extinction ratio of 6.9 dB and modulation power of 1.36 mW per
  wavelength [Rakowski et al.],
* photodetector responsivity of 1 A/W and dark current of 4 uA,
* CMOS-compatible PCM-VCSEL lasers with a maximum deliverable optical power
  of 700 uW and a strongly temperature-dependent efficiency, evaluated at
  25% chip activity,
* electrical interfaces synthesised in 28 nm FDSOI for a 64-bit IP bus at
  1 GHz feeding a 10 Gb/s modulator.

:class:`PaperConfig` bundles those numbers so every experiment module and
example can refer to a single authoritative source of defaults.  All values
are stored in SI units (watts, metres, hertz); helper properties expose the
derived quantities used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .exceptions import ConfigurationError

__all__ = ["PaperConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class PaperConfig:
    """Evaluation parameters of the DAC'17 study (Section V defaults)."""

    # --- interconnect geometry -------------------------------------------------
    num_onis: int = 12
    """Number of optical network interfaces sharing each MWSR channel."""

    num_wavelengths: int = 16
    """Number of WDM wavelengths carried by each waveguide."""

    num_waveguides_per_channel: int = 16
    """Number of parallel waveguides forming one MWSR channel (Section V-C)."""

    waveguide_length_m: float = 0.06
    """Worst-case optical path length between writer and reader (6 cm)."""

    waveguide_loss_db_per_cm: float = 0.274
    """Propagation loss of the silicon waveguide."""

    # --- micro-ring modulators -------------------------------------------------
    extinction_ratio_db: float = 6.9
    """Modulator extinction ratio between ON and OFF states."""

    modulator_power_w: float = 1.36e-3
    """Electrical power of the ring modulator driver per wavelength (P_MR)."""

    ring_through_loss_db: float = 0.012
    """Insertion loss of one parked (far-detuned) ring on a passing signal."""

    ring_drop_loss_db: float = 1.6
    """Drop loss of the reader ring that routes light to the photodetector."""

    modulator_insertion_loss_db: float = 1.0
    """Pass-state ('1' level) insertion loss of the active writer's modulator."""

    ring_quality_factor: float = 9000.0
    """Loaded quality factor of the micro-ring resonators."""

    mux_insertion_loss_db: float = 1.2
    """Insertion loss of the MMI multiplexer combining the laser outputs."""

    # --- photodetector ----------------------------------------------------------
    photodetector_responsivity_a_per_w: float = 1.0
    """Photodetector responsivity (A/W), paper Section IV-D."""

    dark_current_a: float = 4e-6
    """Photodetector dark current i_n (4 uA), paper Section IV-D."""

    # --- laser ------------------------------------------------------------------
    laser_max_output_power_w: float = 700e-6
    """Maximum optical power the PCM-VCSEL can deliver (700 uW)."""

    laser_base_efficiency: float = 0.065
    """Wall-plug efficiency of the VCSEL in the linear (cool) regime."""

    laser_droop_power_w: float = 2.0e-3
    """Optical power scale of the exponential efficiency droop (thermal)."""

    chip_activity: float = 0.25
    """Electrical-layer activity factor used for the laser thermal state."""

    # --- electrical interface ---------------------------------------------------
    ip_bus_width_bits: int = 64
    """Width of the IP-side data bus (Ndata)."""

    ip_clock_hz: float = 1e9
    """IP-side clock frequency (FIP)."""

    modulation_rate_hz: float = 10e9
    """Optical modulation speed per wavelength (Fmod), bits per second."""

    # --- wavelength grid ---------------------------------------------------------
    center_wavelength_m: float = 1550e-9
    """Centre wavelength of the WDM grid."""

    channel_spacing_m: float = 0.8e-9
    """Wavelength spacing between adjacent WDM channels (~100 GHz grid)."""

    def __post_init__(self) -> None:
        if self.num_onis < 2:
            raise ConfigurationError("an MWSR channel needs at least two ONIs")
        if self.num_wavelengths < 1:
            raise ConfigurationError("at least one wavelength is required")
        if not 0.0 < self.chip_activity <= 1.0:
            raise ConfigurationError("chip activity must lie in (0, 1]")
        if self.extinction_ratio_db <= 0.0:
            raise ConfigurationError("extinction ratio must be positive in dB")
        if self.laser_max_output_power_w <= 0.0:
            raise ConfigurationError("laser maximum output power must be positive")
        if self.ip_bus_width_bits <= 0:
            raise ConfigurationError("IP bus width must be positive")

    # --- derived quantities ------------------------------------------------------
    @property
    def waveguide_loss_db(self) -> float:
        """Total propagation loss over the worst-case waveguide length."""
        return self.waveguide_loss_db_per_cm * (self.waveguide_length_m * 100.0)

    @property
    def num_writers(self) -> int:
        """Writers per MWSR channel (every ONI but the reader)."""
        return self.num_onis - 1

    @property
    def num_intermediate_writers(self) -> int:
        """Writers crossed by the worst-case (farthest) writer's signal."""
        return self.num_onis - 2

    @property
    def ip_bandwidth_bits_per_s(self) -> float:
        """Raw IP-side bandwidth Ndata * FIP."""
        return self.ip_bus_width_bits * self.ip_clock_hz

    @property
    def channel_raw_bandwidth_bits_per_s(self) -> float:
        """Raw optical bandwidth of one waveguide: num_wavelengths * Fmod."""
        return self.num_wavelengths * self.modulation_rate_hz

    @property
    def serialization_ratio(self) -> float:
        """Ratio between modulation and IP clock rates (Fmod / FIP)."""
        return self.modulation_rate_hz / self.ip_clock_hz

    @property
    def wavelengths_m(self) -> Tuple[float, ...]:
        """The WDM wavelength grid centred on :attr:`center_wavelength_m`."""
        n = self.num_wavelengths
        first = self.center_wavelength_m - (n - 1) / 2.0 * self.channel_spacing_m
        return tuple(first + i * self.channel_spacing_m for i in range(n))

    def with_overrides(self, **kwargs) -> "PaperConfig":
        """Return a copy of the configuration with selected fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = PaperConfig()
"""Module-level instance of the paper's default configuration."""
