"""Hamming codes and shortened Hamming codes.

The paper transmits data either uncoded, with H(7,4) (sixteen parallel
coders for a 64-bit IP word) or with H(71,64) (a single coder for the whole
word).  H(7,4) is the classic Hamming code with ``m = 3``; H(71,64) is the
Hamming code with ``m = 7`` (127, 120) *shortened* by removing 56 message
positions so that exactly 64 payload bits remain.  Both constructions are
provided here, together with a helper that picks the smallest Hamming code
able to carry a given message length (used by the interface generator).

All Hamming codes here are built in systematic form ``[I_k | P]`` where the
columns of ``P^T`` are the binary representations of the message-position
column labels of the classic parity-check matrix.  They correct any single
bit error per block (minimum distance 3).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .base import LinearBlockCode

__all__ = [
    "HammingCode",
    "ShortenedHammingCode",
    "hamming_parameters_for_message_length",
]


def _full_hamming_parity_submatrix(m: int) -> np.ndarray:
    """Parity sub-matrix P of the full (2^m - 1, 2^m - 1 - m) Hamming code.

    The systematic construction assigns the ``n - k = m`` parity bits to the
    power-of-two column labels ``1, 2, 4, ...`` of the classic parity-check
    matrix and the ``k`` message bits to the remaining labels.  Row ``i`` of
    P holds the binary expansion of the i-th non-power-of-two label, so the
    generator ``[I_k | P]`` and parity check ``[P^T | I_m]`` describe the
    standard Hamming code up to a column permutation.
    """
    n = (1 << m) - 1
    labels = [value for value in range(1, n + 1) if value & (value - 1) != 0]
    p = np.zeros((len(labels), m), dtype=np.uint8)
    for row, label in enumerate(labels):
        for bit in range(m):
            p[row, bit] = (label >> bit) & 1
    return p


class HammingCode(LinearBlockCode):
    """The full Hamming code with parameters (2^m - 1, 2^m - 1 - m).

    ``HammingCode(3)`` is the H(7,4) code used throughout the paper.
    """

    def __init__(self, m: int):
        if m < 2:
            raise ConfigurationError("Hamming codes require m >= 2")
        self._m = int(m)
        n = (1 << m) - 1
        k = n - m
        parity = _full_hamming_parity_submatrix(m)
        generator = np.concatenate([np.eye(k, dtype=np.uint8), parity], axis=1)
        super().__init__(generator, name=f"H({n},{k})", minimum_distance=3)

    @property
    def m(self) -> int:
        """Number of parity bits (the Hamming order)."""
        return self._m


class ShortenedHammingCode(LinearBlockCode):
    """A Hamming code shortened to carry exactly ``message_length`` bits.

    Shortening removes message positions from the full (2^m - 1, 2^m - 1 - m)
    code: the removed positions are fixed to zero and dropped from both the
    message and the codeword.  The resulting (k + m, k) code keeps minimum
    distance 3 (shortening never decreases distance) and single-error
    correction, while matching the data-path width of the electrical
    interface.  ``ShortenedHammingCode(64)`` is the paper's H(71,64);
    ``ShortenedHammingCode(57)`` is the H(63,57) code that appears in the
    label of Figure 6a.
    """

    def __init__(self, message_length: int):
        if message_length < 1:
            raise ConfigurationError("message length must be positive")
        m, full_k = hamming_parameters_for_message_length(message_length)
        parity = _full_hamming_parity_submatrix(m)[:message_length, :]
        generator = np.concatenate(
            [np.eye(message_length, dtype=np.uint8), parity], axis=1
        )
        n = message_length + m
        super().__init__(generator, name=f"H({n},{message_length})", minimum_distance=3)
        self._m = m
        self._full_k = full_k

    @property
    def m(self) -> int:
        """Number of parity bits inherited from the parent Hamming code."""
        return self._m

    @property
    def parent_parameters(self) -> Tuple[int, int]:
        """(n, k) of the full Hamming code this code was shortened from."""
        return ((1 << self._m) - 1, self._full_k)


def hamming_parameters_for_message_length(message_length: int) -> Tuple[int, int]:
    """Smallest Hamming order able to carry ``message_length`` payload bits.

    Returns ``(m, k_full)`` where ``m`` is the number of parity bits and
    ``k_full = 2^m - 1 - m`` is the payload capacity of the full code.  For
    ``message_length = 64`` this yields ``m = 7`` (the H(127,120) parent of
    H(71,64)); for ``4`` it yields ``m = 3`` (H(7,4) itself).
    """
    if message_length < 1:
        raise ConfigurationError("message length must be positive")
    m = 2
    while ((1 << m) - 1 - m) < message_length:
        m += 1
        if m > 32:  # pragma: no cover - defensive, 2^32 payloads are absurd
            raise ConfigurationError("message length too large for a practical Hamming code")
    return m, (1 << m) - 1 - m
