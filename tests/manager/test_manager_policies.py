"""Tests for the Pareto utilities, selection policies and the link manager."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError, InfeasibleDesignError
from repro.manager.manager import CommunicationRequest, OpticalLinkManager
from repro.manager.pareto import ParetoPoint, dominates, pareto_front
from repro.manager.policies import (
    DeadlineConstrainedPolicy,
    LaserBudgetPolicy,
    MinimumEnergyPolicy,
    MinimumPowerPolicy,
)
from repro.manager.runtime import RuntimeSimulation


def _point(name, ct, power, ber=1e-11):
    return ParetoPoint(code_name=name, target_ber=ber, communication_time=ct, channel_power_w=power)


class TestParetoUtilities:
    def test_domination_requires_no_worse_everywhere(self):
        a = _point("a", 1.0, 0.010)
        b = _point("b", 1.5, 0.012)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_incomparable_points_do_not_dominate(self):
        fast_hungry = _point("fast", 1.0, 0.016)
        slow_lean = _point("lean", 1.75, 0.008)
        assert not dominates(fast_hungry, slow_lean)
        assert not dominates(slow_lean, fast_hungry)

    def test_identical_points_do_not_dominate_each_other(self):
        a = _point("a", 1.0, 0.01)
        b = _point("b", 1.0, 0.01)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_front_extraction(self):
        points = [
            _point("fast", 1.0, 0.016),
            _point("mid", 1.11, 0.009),
            _point("slow", 1.75, 0.008),
            _point("dominated", 1.8, 0.02),
        ]
        front = pareto_front(points)
        names = [p.code_name for p in front]
        assert names == ["fast", "mid", "slow"]

    def test_front_of_empty_cloud_is_empty(self):
        assert pareto_front([]) == []

    def test_paper_schemes_are_all_on_the_front(self):
        from repro.experiments.figure6 import run_figure6b

        result = run_figure6b(DEFAULT_CONFIG, target_bers=(1e-10,))
        front_names = {p.code_name for p in result.front_for_ber(1e-10)}
        assert front_names == {"w/o ECC", "H(71,64)", "H(7,4)"}


class TestPolicies:
    @pytest.fixture(scope="class")
    def candidates(self):
        manager = OpticalLinkManager()
        return manager.candidates_for(1e-11)

    def test_min_power_picks_the_leanest_feasible_candidate(self, candidates):
        decision = MinimumPowerPolicy().select(candidates)
        expected = min(c.total_power_w for c in candidates if c.feasible)
        assert decision.channel_power_w == pytest.approx(expected)

    def test_min_energy_picks_h7164_at_1e11(self, candidates):
        decision = MinimumEnergyPolicy().select(candidates)
        assert decision.code_name == "H(71,64)"

    def test_deadline_policy_respects_the_ct_bound(self, candidates):
        decision = DeadlineConstrainedPolicy(max_communication_time=1.2).select(candidates)
        assert decision.communication_time <= 1.2

    def test_tight_deadline_forces_uncoded(self, candidates):
        decision = DeadlineConstrainedPolicy(max_communication_time=1.0).select(candidates)
        assert decision.code_name == "w/o ECC"

    def test_impossible_deadline_raises(self, candidates):
        with pytest.raises(InfeasibleDesignError):
            DeadlineConstrainedPolicy(max_communication_time=0.5).select(candidates)

    def test_laser_budget_policy_prefers_speed_within_budget(self, candidates):
        generous = LaserBudgetPolicy(max_laser_power_w=1.0).select(candidates)
        assert generous.code_name == "w/o ECC"
        tight = LaserBudgetPolicy(max_laser_power_w=7.5e-3).select(candidates)
        assert tight.code_name in {"H(71,64)", "H(7,4)"}

    def test_exhausted_laser_budget_raises(self, candidates):
        with pytest.raises(InfeasibleDesignError):
            LaserBudgetPolicy(max_laser_power_w=1e-3).select(candidates)

    def test_decision_records_policy_and_reason(self, candidates):
        decision = MinimumPowerPolicy().select(candidates)
        assert decision.policy_name == "min-power"
        assert "mW" in decision.reason


class TestOpticalLinkManager:
    def test_configure_returns_a_feasible_configuration(self):
        manager = OpticalLinkManager()
        request = CommunicationRequest(source=3, destination=0, target_ber=1e-11)
        configuration = manager.configure(request)
        assert configuration.code_name in {"w/o ECC", "H(71,64)", "H(7,4)"}
        assert configuration.laser_output_power_w <= DEFAULT_CONFIG.laser_max_output_power_w

    def test_default_policy_prefers_coded_low_power(self):
        manager = OpticalLinkManager()
        configuration = manager.configure(
            CommunicationRequest(source=1, destination=0, target_ber=1e-11)
        )
        assert configuration.code_name == "H(7,4)"

    def test_request_level_policy_override(self):
        manager = OpticalLinkManager()
        configuration = manager.configure(
            CommunicationRequest(
                source=1,
                destination=0,
                target_ber=1e-11,
                policy=DeadlineConstrainedPolicy(max_communication_time=1.0),
            )
        )
        assert configuration.code_name == "w/o ECC"

    def test_max_communication_time_filter(self):
        manager = OpticalLinkManager()
        configuration = manager.configure(
            CommunicationRequest(
                source=1, destination=0, target_ber=1e-11, max_communication_time=1.2
            )
        )
        assert configuration.communication_time <= 1.2

    def test_active_configurations_and_release(self):
        manager = OpticalLinkManager()
        manager.configure(CommunicationRequest(source=1, destination=0, target_ber=1e-9))
        assert len(manager.active_configurations()) == 1
        manager.release(1, 0)
        assert manager.active_configurations() == []

    def test_candidate_cache_is_reused(self):
        manager = OpticalLinkManager()
        first = manager.candidates_for(1e-9)
        second = manager.candidates_for(1e-9)
        assert first is second

    def test_invalid_endpoints_rejected(self):
        manager = OpticalLinkManager()
        with pytest.raises(ConfigurationError):
            manager.configure(CommunicationRequest(source=0, destination=99, target_ber=1e-9))

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            CommunicationRequest(source=1, destination=1, target_ber=1e-9)
        with pytest.raises(ConfigurationError):
            CommunicationRequest(source=1, destination=0, target_ber=0.9)
        with pytest.raises(ConfigurationError):
            CommunicationRequest(source=1, destination=0, target_ber=1e-9, payload_bits=0)


class TestRuntimeSimulation:
    def test_transfer_durations_scale_with_ct(self):
        manager = OpticalLinkManager()
        simulation = RuntimeSimulation(manager=manager)
        uncoded_config = manager.configure(
            CommunicationRequest(
                source=1,
                destination=0,
                target_ber=1e-11,
                policy=DeadlineConstrainedPolicy(max_communication_time=1.0),
            )
        )
        coded_config = manager.configure(
            CommunicationRequest(source=2, destination=0, target_ber=1e-11)
        )
        payload = 4096
        assert simulation.transfer_duration_s(coded_config, payload) > simulation.transfer_duration_s(
            uncoded_config, payload
        )

    def test_run_records_energy_and_deadlines(self):
        manager = OpticalLinkManager()
        simulation = RuntimeSimulation(manager=manager)
        workload = [
            (CommunicationRequest(source=1, destination=0, target_ber=1e-11, payload_bits=2048), 1e-6),
            (CommunicationRequest(source=2, destination=0, target_ber=1e-11, payload_bits=2048), 1e-12),
        ]
        outcomes = simulation.run(workload)
        assert len(outcomes) == 2
        assert RuntimeSimulation.total_energy_j(outcomes) > 0
        # The second deadline (1 ps) is impossible to meet.
        assert RuntimeSimulation.deadline_miss_rate(outcomes) == pytest.approx(0.5)

    def test_unsatisfiable_requests_are_rejected_not_fatal(self):
        manager = OpticalLinkManager()
        simulation = RuntimeSimulation(manager=manager)
        workload = [
            (
                CommunicationRequest(
                    source=1,
                    destination=0,
                    target_ber=1e-11,
                    policy=LaserBudgetPolicy(max_laser_power_w=1e-4),
                ),
                None,
            )
        ]
        outcomes = simulation.run(workload)
        assert outcomes[0].rejected
        assert not outcomes[0].met_deadline
