"""Span-based tracing with a no-op fast path and JSONL emission.

A *span* is one timed operation — a link-design solve, an epoch flush, a
shard execution, a checkpoint write.  Spans are emitted as single JSON
lines so concurrent fork workers can append to the same file (each line is
one ``write`` on an ``O_APPEND`` descriptor; the per-process ``pid`` field
disambiguates interleavings).

Timing discipline: every duration comes from ``time.perf_counter`` (the
monotonic clock) and is written *only* to the trace sink.  No wall-clock
number ever enters a simulation result, a checkpoint payload or a metric
counter — that separation is what keeps tracing zero-perturbation and the
``--jobs N`` byte-identity intact.

The disabled fast path is a module-level ``ACTIVE is None`` check; hot
callers bind it once per run so a disabled trace costs one identity test
per *run*, not per event.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Any, Dict, TextIO

__all__ = [
    "ACTIVE",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "tracing_to",
]

#: The active tracer, or ``None`` when tracing is disabled (the default).
ACTIVE: "Tracer | None" = None

#: JSON-encoded span names, cached because the name set is small and fixed
#: (``netsim.epoch_flush`` alone fires once per epoch on the hot path).
_NAME_JSON: Dict[str, str] = {}


class _Span:
    """Context manager timing one operation; emits on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer.emit(self._name, duration, self._attrs, start=self._start)


class Tracer:
    """Writes span records as JSON lines to a file or stream.

    The sink is opened in append mode with line buffering, so a forked
    worker inherits a flushed descriptor and its lines interleave whole.
    """

    def __init__(self, sink: "str | TextIO"):
        if isinstance(sink, str):
            self._handle: TextIO = open(sink, "a", encoding="utf-8", buffering=1)
            self._owns_handle = True
            self.path: str | None = sink
        else:
            self._handle = sink
            self._owns_handle = False
            self.path = getattr(sink, "name", None)
        self._origin = time.perf_counter()
        self.spans_emitted = 0

    def span(self, name: str, **attrs: Any) -> _Span:
        """Time a ``with`` block and emit it as one span record."""
        return _Span(self, name, attrs)

    def emit(
        self,
        name: str,
        duration_s: float,
        attrs: Dict[str, Any] | None = None,
        *,
        start: float | None = None,
    ) -> None:
        """Write one span record (already-timed callers skip the context manager)."""
        # The envelope is %-formatted rather than json.dumps-ed: it is ~5x
        # cheaper and this runs once per epoch flush on traced netsim runs.
        # start_s is a monotonic offset from the tracer's creation, not wall
        # time, and timings live only in this sink — never in results.
        name_json = _NAME_JSON.get(name)
        if name_json is None:
            name_json = _NAME_JSON[name] = json.dumps(name)
        if not attrs:
            attrs_json = ""
        elif len(attrs) == 1:
            # Hot spans (epoch flushes) carry one integer attribute; format
            # it directly rather than paying json.dumps for a one-key dict.
            ((key, value),) = attrs.items()
            if type(value) is int:
                attrs_json = ',"attrs":{"%s":%d}' % (key, value)
            else:
                attrs_json = ',"attrs":' + json.dumps(attrs, default=str)
        else:
            attrs_json = ',"attrs":' + json.dumps(attrs, default=str)
        self._handle.write(
            '{"kind":"span","name":%s,"pid":%d,"start_s":%.9f,"duration_s":%.9f%s}\n'
            % (
                name_json,
                os.getpid(),
                (start if start is not None else time.perf_counter()) - self._origin,
                duration_s,
                attrs_json,
            )
        )
        self.spans_emitted += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()


# ------------------------------------------------------------------ activation
def enable_tracing(sink: "str | TextIO") -> Tracer:
    """Install a tracer writing to ``sink`` (path or open text stream)."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = Tracer(sink)
    return ACTIVE


def disable_tracing() -> None:
    """Deactivate tracing (spans revert to no-ops) and close the sink."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = None


def active_tracer() -> Tracer | None:
    """The tracer spans currently emit to, if any."""
    return ACTIVE


@contextlib.contextmanager
def tracing_to(sink: "str | TextIO"):
    """Scope a tracer activation; restores (and never closes) the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = Tracer(sink)
    try:
        yield ACTIVE
    finally:
        ACTIVE.close()
        ACTIVE = previous
