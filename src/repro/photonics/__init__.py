"""Photonic device models of the nanophotonic interconnect.

The MWSR channel of the paper is built from: on-chip PCM-VCSEL laser
sources, an MMI multiplexer, a silicon waveguide, micro-ring resonator
modulators in the writers, and passive drop rings with photodetectors in the
reader.  Each device gets a small physical model calibrated on the values
the paper quotes (extinction ratio 6.9 dB, waveguide loss 0.274 dB/cm,
responsivity 1 A/W, dark current 4 uA, maximum laser output 700 uW, ~5-6%
laser efficiency at 25% chip activity).
"""

from .microring import MicroringResonator, MicroringState
from .waveguide import Waveguide
from .laser import VCSELModel, LaserOperatingPoint
from .photodetector import Photodetector
from .coupler import MMICoupler
from .wdm import WDMGrid
from .crosstalk import CrosstalkModel

__all__ = [
    "MicroringResonator",
    "MicroringState",
    "Waveguide",
    "VCSELModel",
    "LaserOperatingPoint",
    "Photodetector",
    "MMICoupler",
    "WDMGrid",
    "CrosstalkModel",
]
