"""Message-level simulation of transfers over one MWSR channel.

Combines the pieces the analytic evaluation treats separately: packets are
encoded with the configured scheme, serialised onto the channel's
wavelengths, delayed by token arbitration when several writers contend,
corrupted by an error-injection model at the operating point's raw BER, and
decoded at the reader.  The output records per-transfer latency, occupancy
and residual errors, which the traffic examples aggregate per policy.

Payloads are processed as whole block batches: one padded ``(B, k)``
message matrix is encoded with a single GF(2) matmul, corrupted with one
error-pattern draw and decoded by the vectorized syndrome decoder,
``batch_size`` blocks per chunk — there is no per-block Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from ..coding.base import decode_blocks, encode_blocks
from ..coding.montecarlo import resolve_rng
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..interconnect.arbitration import TokenArbiter
from ..interconnect.mwsr import MWSRChannel
from .faults import IndependentErrorModel
from .packets import Message
from .stats import StreamingStatistics

__all__ = ["TransferRecord", "MessageTransferSimulator"]


@dataclass(frozen=True)
class TransferRecord:
    """Timing and integrity record of one simulated message transfer."""

    source: int
    destination: int
    payload_bits: int
    coded_bits: int
    request_time_s: float
    start_time_s: float
    completion_time_s: float
    residual_bit_errors: int
    channel_energy_j: float

    @property
    def latency_s(self) -> float:
        """Request-to-completion latency."""
        return self.completion_time_s - self.request_time_s

    @property
    def serialization_time_s(self) -> float:
        """Time the channel was occupied by this transfer."""
        return self.completion_time_s - self.start_time_s

    @property
    def error_free(self) -> bool:
        """True when the decoded payload matched the transmitted payload."""
        return self.residual_bit_errors == 0


@dataclass
class MessageTransferSimulator:
    """Simulate coded message transfers over one MWSR channel."""

    channel: MWSRChannel
    code: object
    raw_ber: float
    channel_power_w: float = 0.0
    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    rng: np.random.Generator | None = None
    seed: int | np.random.SeedSequence | None = None
    batch_size: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 <= self.raw_ber <= 1.0:
            raise ConfigurationError("raw BER must lie in [0, 1]")
        if self.channel_power_w < 0:
            raise ConfigurationError("channel power cannot be negative")
        if self.batch_size < 1:
            raise ConfigurationError("batch size must be at least 1")
        self.rng = resolve_rng(self.rng, self.seed)
        self._arbiter = TokenArbiter(writers=self.channel.writers)
        self._errors = IndependentErrorModel(self.raw_ber, rng=self.rng)
        self.latency_stats = StreamingStatistics()
        self.occupancy_stats = StreamingStatistics()

    # ------------------------------------------------------------------ helpers
    def _pad_to_block(self, bits: np.ndarray) -> np.ndarray:
        """Zero-pad a payload to a whole number of code blocks."""
        k = self.code.k
        remainder = bits.size % k
        if remainder == 0:
            return bits
        return np.concatenate([bits, np.zeros(k - remainder, dtype=np.uint8)])

    def serialization_time_s(self, coded_bits: int) -> float:
        """Channel-busy time of a coded payload on one waveguide group."""
        channel_rate = self.config.num_wavelengths * self.config.modulation_rate_hz
        return coded_bits / channel_rate

    # ------------------------------------------------------------------ simulation
    def transfer(self, message: Message, request_time_s: float = 0.0) -> TransferRecord:
        """Simulate one message transfer end to end."""
        if message.destination != self.channel.reader:
            raise ConfigurationError(
                f"message destination {message.destination} is not the reader "
                f"of this channel ({self.channel.reader})"
            )
        payload = message.payload()
        padded = self._pad_to_block(payload)
        blocks = padded.reshape(-1, self.code.k)
        coded_bits = blocks.shape[0] * self.code.n
        duration = self.serialization_time_s(coded_bits)
        start = self._arbiter.request(message.source, request_time_s, duration)
        decoded_chunks = [np.zeros((0, self.code.k), dtype=np.uint8)]
        for begin in range(0, blocks.shape[0], self.batch_size):
            chunk = blocks[begin : begin + self.batch_size]
            encoded = encode_blocks(self.code, chunk)
            corrupted = self._errors.apply(encoded)
            decoded_chunks.append(decode_blocks(self.code, corrupted).message_bits)
        decoded = np.concatenate(decoded_chunks).reshape(-1)[: payload.size]
        residual = int(np.count_nonzero(decoded != payload))
        completion = start + duration
        record = TransferRecord(
            source=message.source,
            destination=message.destination,
            payload_bits=int(payload.size),
            coded_bits=coded_bits,
            request_time_s=request_time_s,
            start_time_s=start,
            completion_time_s=completion,
            residual_bit_errors=residual,
            channel_energy_j=self.channel_power_w * duration,
        )
        self.latency_stats.add(record.latency_s)
        self.occupancy_stats.add(record.serialization_time_s)
        return record

    def run(self, messages: Iterable[tuple[Message, float]]) -> List[TransferRecord]:
        """Simulate a sequence of ``(message, request_time)`` transfers."""
        return [self.transfer(message, when) for message, when in messages]
