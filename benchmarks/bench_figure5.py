"""Benchmark ``figure5``: laser power vs target BER per coding scheme.

Paper artefact: Figure 5 (P_laser for BER targets 1e-3..1e-12 for w/o ECC,
H(71,64) and H(7,4); the uncoded curve is the highest and becomes infeasible
at 1e-12).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure5 import run_figure5


def test_bench_figure5_sweep(benchmark):
    """Time the full Figure 5 sweep and validate the curves' shape."""
    result = benchmark(run_figure5)

    uncoded = result.laser_power_mw("w/o ECC")
    h71 = result.laser_power_mw("H(71,64)")
    h74 = result.laser_power_mw("H(7,4)")

    # Who wins: the coded schemes need less laser power at every feasible point.
    for index in range(len(result.target_bers) - 1):  # last uncoded point is NaN
        assert h71[index] < uncoded[index]
        assert h74[index] < uncoded[index]

    # By what factor: about 2x at BER 1e-11 (the paper's ~50% reduction).
    point_uncoded = result.point_at("w/o ECC", 1e-11)
    point_h71 = result.point_at("H(71,64)", 1e-11)
    ratio = point_h71.laser_electrical_power_w / point_uncoded.laser_electrical_power_w
    assert 0.40 < ratio < 0.60

    # Where the cliff falls: only the uncoded scheme is infeasible, at 1e-12.
    assert not result.point_at("w/o ECC", 1e-12).feasible
    assert result.point_at("H(71,64)", 1e-12).feasible
    assert result.point_at("H(7,4)", 1e-12).feasible

    # Absolute anchor points stay within 20% of the paper's values.
    assert point_uncoded.laser_power_mw == pytest.approx(14.35, rel=0.20)
    assert point_h71.laser_power_mw == pytest.approx(7.12, rel=0.20)


def test_bench_single_operating_point(benchmark, designer):
    """Micro-benchmark of one (code, BER) -> laser power solve."""
    from repro.coding.hamming import ShortenedHammingCode

    code = ShortenedHammingCode(64)
    point = benchmark(designer.design_point, code, 1e-11)
    assert point.feasible
