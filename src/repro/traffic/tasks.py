"""Periodic real-time task sets.

Real-time applications issue communications with hard deadlines; the manager
must then bound the communication-time overhead when selecting a coding
scheme.  A :class:`TaskSet` expands periodic tasks into the individual
requests of a simulation window and knows its own utilisation so infeasible
sets can be rejected up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..exceptions import ConfigurationError
from .generators import TrafficRequest

__all__ = ["PeriodicTask", "TaskSet"]


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic communication task (payload every period, due by the deadline)."""

    name: str
    source: int
    destination: int
    period_s: float
    payload_bits: int
    relative_deadline_s: float
    target_ber: float = 1e-11
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("task period must be positive")
        if self.relative_deadline_s <= 0 or self.relative_deadline_s > self.period_s:
            raise ConfigurationError("deadline must lie in (0, period]")
        if self.payload_bits <= 0:
            raise ConfigurationError("payload must contain at least one bit")
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")
        if self.phase_s < 0:
            raise ConfigurationError("phase cannot be negative")

    def utilisation(self, channel_rate_bits_per_s: float) -> float:
        """Fraction of the channel this task occupies (uncoded payload)."""
        if channel_rate_bits_per_s <= 0:
            raise ConfigurationError("channel rate must be positive")
        return (self.payload_bits / channel_rate_bits_per_s) / self.period_s

    def releases_until(self, horizon_s: float) -> List[float]:
        """Release times of the task instances up to the horizon."""
        if horizon_s < 0:
            raise ConfigurationError("horizon cannot be negative")
        releases = []
        release = self.phase_s
        while release < horizon_s:
            releases.append(release)
            release += self.period_s
        return releases


@dataclass
class TaskSet:
    """A collection of periodic tasks sharing the interconnect."""

    tasks: List[PeriodicTask]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConfigurationError("a task set needs at least one task")
        names = [task.name for task in self.tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")

    def total_utilisation(self, channel_rate_bits_per_s: float) -> float:
        """Total channel utilisation of the set (uncoded payloads)."""
        return sum(task.utilisation(channel_rate_bits_per_s) for task in self.tasks)

    def is_schedulable(self, channel_rate_bits_per_s: float, *, communication_time: float = 1.0) -> bool:
        """Necessary utilisation-based schedulability check.

        The coded transmissions stretch every payload by the communication
        time overhead, so the utilisation scales with CT.
        """
        if communication_time < 1.0:
            raise ConfigurationError("communication time overhead cannot be below 1")
        return self.total_utilisation(channel_rate_bits_per_s) * communication_time <= 1.0

    def requests_until(self, horizon_s: float) -> List[TrafficRequest]:
        """Expand the task set into time-ordered traffic requests."""
        requests: List[TrafficRequest] = []
        for task in self.tasks:
            for release in task.releases_until(horizon_s):
                requests.append(
                    TrafficRequest(
                        arrival_time_s=release,
                        source=task.source,
                        destination=task.destination,
                        payload_bits=task.payload_bits,
                        target_ber=task.target_ber,
                        deadline_s=task.relative_deadline_s,
                    )
                )
        return sorted(requests, key=lambda request: request.arrival_time_s)
