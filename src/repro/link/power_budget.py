"""Optical power budget of an MWSR channel (worst-case writer to reader).

The paper estimates the minimum laser output power with "the transmission
model proposed in [8]" (Li et al.), which tracks the signal through every
micro-ring and the waveguide and evaluates the worst-case crosstalk from the
spectral distance between signals and ring resonances.  This module is our
reproduction of that substrate: a per-element loss budget built from the
device models of :mod:`repro.photonics`.

For a signal emitted on wavelength ``lambda_i`` by the *worst-case* writer
(the one farthest from the reader), the path is:

1. laser → MMI multiplexer (insertion loss),
2. propagation along the full waveguide length,
3. the writer's own modulator bank: one active modulator (pass-state
   insertion loss) plus ``NW - 1`` parked rings (through loss each),
4. the modulator banks of every intermediate writer: ``NW`` parked rings
   each,
5. the reader bank: ``NW - 1`` other drop rings crossed (through loss) plus
   the drop loss of the signal's own ring,
6. the finite extinction ratio of OOK modulation, accounted as an eye-
   opening penalty ``1 - 1/ER`` on the useful signal power.

The worst-case crosstalk is the Lorentzian leakage of all other channels
through the victim's drop ring (see
:class:`repro.photonics.crosstalk.CrosstalkModel`), expressed as a ratio of
the per-channel received power so it scales with the laser operating point
as in Eq. 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..photonics.coupler import MMICoupler
from ..photonics.crosstalk import CrosstalkModel
from ..photonics.microring import MicroringResonator
from ..photonics.waveguide import Waveguide
from ..units import db_loss_to_transmission, db_to_linear

__all__ = ["LinkPowerBudget"]


@dataclass(frozen=True)
class LinkPowerBudget:
    """Worst-case signal-path transmission and crosstalk of one MWSR channel."""

    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    # ------------------------------------------------------------------ components
    @property
    def mux_loss_db(self) -> float:
        """Insertion loss of the laser multiplexer."""
        return MMICoupler.from_config(self.config).insertion_loss_db

    @property
    def waveguide_loss_db(self) -> float:
        """Propagation loss over the worst-case waveguide length."""
        return Waveguide(
            length_m=self.config.waveguide_length_m,
            propagation_loss_db_per_cm=self.config.waveguide_loss_db_per_cm,
        ).total_loss_db

    @property
    def own_writer_loss_db(self) -> float:
        """Loss inside the transmitting writer's modulator bank.

        One active modulator in its pass ('1') state plus ``NW - 1`` parked
        rings tuned to other wavelengths.
        """
        parked = (self.config.num_wavelengths - 1) * self.config.ring_through_loss_db
        return parked + self.config.modulator_insertion_loss_db

    @property
    def intermediate_writers_loss_db(self) -> float:
        """Loss crossing every intermediate writer's parked modulator bank."""
        rings_crossed = (
            self.config.num_intermediate_writers * self.config.num_wavelengths
        )
        return rings_crossed * self.config.ring_through_loss_db

    @property
    def reader_loss_db(self) -> float:
        """Loss inside the reader: other drop rings crossed plus the drop itself."""
        parked = (self.config.num_wavelengths - 1) * self.config.ring_through_loss_db
        return parked + self.config.ring_drop_loss_db

    @property
    def extinction_ratio_penalty_db(self) -> float:
        """Eye-opening penalty of the finite extinction ratio.

        With extinction ratio ER (linear) the '0' level carries ``P1 / ER``,
        so the usable excursion is ``P1 (1 - 1/ER)``.
        """
        er = db_to_linear(self.config.extinction_ratio_db)
        usable_fraction = 1.0 - 1.0 / er
        if usable_fraction <= 0:
            raise ConfigurationError("extinction ratio too small: no eye opening")
        return -10.0 * math.log10(usable_fraction)

    # ------------------------------------------------------------------ totals
    @property
    def signal_path_loss_db(self) -> float:
        """Total worst-case loss from the laser to the photodetector, in dB."""
        return (
            self.mux_loss_db
            + self.waveguide_loss_db
            + self.own_writer_loss_db
            + self.intermediate_writers_loss_db
            + self.reader_loss_db
            + self.extinction_ratio_penalty_db
        )

    @property
    def signal_transmission(self) -> float:
        """Linear worst-case transmission from laser output to useful signal."""
        return db_loss_to_transmission(self.signal_path_loss_db)

    @property
    def crosstalk_ratio(self) -> float:
        """Worst-case crosstalk power divided by the per-channel received power."""
        return CrosstalkModel.from_config(self.config).worst_case_ratio()

    def breakdown(self) -> dict[str, float]:
        """Per-element loss contributions in dB, for reports and tests."""
        return {
            "mux_db": self.mux_loss_db,
            "waveguide_db": self.waveguide_loss_db,
            "own_writer_db": self.own_writer_loss_db,
            "intermediate_writers_db": self.intermediate_writers_loss_db,
            "reader_db": self.reader_loss_db,
            "extinction_ratio_penalty_db": self.extinction_ratio_penalty_db,
            "total_db": self.signal_path_loss_db,
        }

    # ------------------------------------------------------------------ conversions
    def received_signal_power(self, laser_output_power_w: float) -> float:
        """Useful signal power at the photodetector for a laser output power."""
        if laser_output_power_w < 0:
            raise ConfigurationError("laser output power cannot be negative")
        return laser_output_power_w * self.signal_transmission

    def received_crosstalk_power(self, laser_output_power_w: float) -> float:
        """Worst-case crosstalk power at the photodetector for a laser power.

        All channels are assumed to run at the same per-wavelength laser
        power (the paper uses a single control for all lasers of a channel),
        so the crosstalk scales with the same operating point.
        """
        return self.received_signal_power(laser_output_power_w) * self.crosstalk_ratio

    def laser_power_for_received_signal(self, signal_power_w: float) -> float:
        """Laser output power needed to deliver a useful signal power."""
        if signal_power_w < 0:
            raise ConfigurationError("signal power cannot be negative")
        return signal_power_w / self.signal_transmission

    @property
    def microring(self) -> MicroringResonator:
        """The micro-ring parameterisation implied by the configuration."""
        return MicroringResonator(
            resonance_wavelength_m=self.config.center_wavelength_m,
            quality_factor=self.config.ring_quality_factor,
            extinction_ratio_db=self.config.extinction_ratio_db,
            through_loss_db=self.config.ring_through_loss_db,
            drop_loss_db=self.config.ring_drop_loss_db,
            drive_power_w=self.config.modulator_power_w,
        )
