"""Throughput benchmark of the discrete-event network simulator.

Drives :class:`repro.netsim.NetworkSimulator` with uniform traffic at a
moderate load and reports how many simulated packet events and heap events
the engine retires per wall-clock second, writing the comparison to
``benchmarks/BENCH_netsim.json``.  The acceptance gate requires the
default probabilistic mode — packet outcomes sampled batch-at-a-time from
the decoder's analytic frame-error probabilities — to clear 100k simulated
packet events per second; the bit-exact mode (real codewords through the
batch coding API) is timed on a smaller workload for the speedup ratio.
Run either way::

    PYTHONPATH=src python benchmarks/bench_netsim.py
    pytest benchmarks/bench_netsim.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.network import request_rate_for_load  # noqa: E402
from repro.netsim import NetworkSimulator  # noqa: E402
from repro.traffic.generators import UniformTrafficGenerator  # noqa: E402

NUM_REQUESTS = 2000
PAYLOAD_BITS = 65536
LOAD = 0.5
BITEXACT_REQUESTS = 60
PACKET_EVENT_GATE_PER_SEC = 100_000.0
_JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_netsim.json")


def _requests(num_requests: int, payload_bits: int, seed: int):
    rate = request_rate_for_load(LOAD, payload_bits=payload_bits)
    generator = UniformTrafficGenerator(
        12, mean_request_rate_hz=rate, payload_bits=payload_bits, seed=seed
    )
    return list(generator.generate(num_requests))


def _timed_run(simulator: NetworkSimulator, requests) -> dict:
    start = time.perf_counter()
    result = simulator.run(requests)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "transfers": len(result.records),
        "packets": result.packets_sent,
        "events": result.events_processed,
        "packets_per_sec": result.packets_sent / seconds,
        "events_per_sec": result.events_processed / seconds,
    }


def run_benchmark(
    num_requests: int = NUM_REQUESTS,
    bitexact_requests: int = BITEXACT_REQUESTS,
    *,
    include_probabilistic: bool = True,
    include_bit_exact: bool = True,
) -> dict:
    """Time the requested outcome modes; returns the comparison dict.

    Each pytest gate only asserts on one leg, so it excludes the other —
    ``main()`` runs both for the JSON artefact.
    """
    results: dict = {
        "load": LOAD,
        "payload_bits": PAYLOAD_BITS,
        "num_requests": num_requests,
        "packet_event_gate_per_sec": PACKET_EVENT_GATE_PER_SEC,
    }
    if include_probabilistic:
        requests = _requests(num_requests, PAYLOAD_BITS, seed=7)
        probabilistic = NetworkSimulator(seed=11)
        # Warm the manager's candidate/laser caches so the timing measures
        # the event loop, not the one-off operating-point solves.
        probabilistic.run(requests[:20])
        results["probabilistic"] = _timed_run(probabilistic, requests)
        results["gate_met"] = (
            results["probabilistic"]["packets_per_sec"] >= PACKET_EVENT_GATE_PER_SEC
        )
    if include_bit_exact:
        # The bit-exact leg runs CRC-free (the bit-serial CRC dominates
        # otherwise) on a smaller workload; the probabilistic reference for
        # the speedup ratio uses the identical configuration.
        small = _requests(bitexact_requests, 8192, seed=7)
        reference = NetworkSimulator(seed=11, crc=None, max_retries=0)
        reference.run(small[:5])
        results["probabilistic_small"] = _timed_run(reference, small)
        bitexact = NetworkSimulator(seed=11, mode="bit-exact", crc=None, max_retries=0)
        bitexact.run(small[:5])
        results["bit_exact"] = _timed_run(bitexact, small)
        results["probabilistic_speedup_vs_bit_exact"] = (
            results["probabilistic_small"]["packets_per_sec"]
            / results["bit_exact"]["packets_per_sec"]
        )
    return results


def test_probabilistic_mode_meets_packet_event_gate():
    """Acceptance gate: >= 100k simulated packet events/s in default mode."""
    results = run_benchmark(num_requests=600, include_bit_exact=False)
    assert results["probabilistic"]["packets_per_sec"] >= PACKET_EVENT_GATE_PER_SEC, results


def test_bit_exact_mode_completes_and_delivers():
    """Sanity: the bit-exact leg runs and delivers every packet at low BER."""
    results = run_benchmark(bitexact_requests=20, include_probabilistic=False)
    assert results["bit_exact"]["packets"] > 0
    assert results["bit_exact"]["transfers"] == 20


def main() -> int:
    results = run_benchmark()
    with open(_JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    prob = results["probabilistic"]
    print(
        f"netsim probabilistic: {prob['packets_per_sec']:,.0f} packets/s, "
        f"{prob['events_per_sec']:,.0f} events/s over {prob['transfers']} transfers "
        f"({prob['packets']} packets); "
        f"bit-exact {results['bit_exact']['packets_per_sec']:,.0f} packets/s "
        f"({results['probabilistic_speedup_vs_bit_exact']:.1f}x slower), "
        f"gate >= {results['packet_event_gate_per_sec']:,.0f}: {results['gate_met']}"
    )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
