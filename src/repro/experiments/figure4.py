"""Experiment ``figure4``: laser electrical power vs emitted optical power.

Figure 4 plots ``P_laser`` against ``OP_laser`` at 25% chip activity: linear
below roughly 500 uW and super-linear above because the laser efficiency
collapses with temperature.  The experiment sweeps OP_laser over the
figure's 0-800 uW range, records the curve, and checks the qualitative
properties the paper relies on (approximate linearity at low power, convex
super-linear growth at high power, 700 uW feasibility limit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_CONFIG, PaperConfig
from .gridlib import single_merge_sweep as merge_sweep, single_sweep_shards as sweep_shards
from ..photonics.laser import VCSELModel

__all__ = ["Figure4Result", "run_figure4", "sweep_shards", "run_sweep_shard", "merge_sweep"]


@dataclass
class Figure4Result:
    """The P_laser(OP_laser) curve at the configured chip activity."""

    optical_power_uw: np.ndarray
    laser_power_mw: np.ndarray
    activity: float
    max_deliverable_uw: float
    low_power_efficiency: float

    @property
    def linearity_error_below_500uw(self) -> float:
        """Maximum relative deviation from a straight line below 500 uW.

        The paper describes the curve as linear in that range; this metric
        quantifies how closely the model follows that description.
        """
        mask = (self.optical_power_uw > 0) & (self.optical_power_uw <= 500.0)
        op = self.optical_power_uw[mask]
        p = self.laser_power_mw[mask]
        slope = p[-1] / op[-1]
        linear = slope * op
        return float(np.max(np.abs(p - linear) / np.maximum(linear, 1e-12)))

    def render_text(self) -> str:
        """Short text summary of the curve."""
        idx_500 = int(np.argmin(np.abs(self.optical_power_uw - 500.0)))
        idx_700 = int(np.argmin(np.abs(self.optical_power_uw - 700.0)))
        return "\n".join(
            [
                "Figure 4 - P_laser vs OP_laser (25% activity)",
                f"low-power wall-plug efficiency: {self.low_power_efficiency * 100:.1f}%",
                f"P_laser at 500 uW: {self.laser_power_mw[idx_500]:.2f} mW",
                f"P_laser at 700 uW: {self.laser_power_mw[idx_700]:.2f} mW",
                f"maximum deliverable optical power: {self.max_deliverable_uw:.0f} uW",
                f"deviation from linearity below 500 uW: {self.linearity_error_below_500uw * 100:.1f}%",
            ]
        )


def run_figure4(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    max_optical_power_uw: float = 800.0,
    num_points: int = 161,
) -> Figure4Result:
    """Sweep OP_laser and record the electrical laser power curve."""
    laser = VCSELModel.from_config(config)
    optical_powers_w = np.linspace(0.0, max_optical_power_uw * 1e-6, num_points)
    electrical_w = laser.electrical_power_curve(
        optical_powers_w, activity=config.chip_activity
    )
    return Figure4Result(
        optical_power_uw=optical_powers_w * 1e6,
        laser_power_mw=electrical_w * 1e3,
        activity=config.chip_activity,
        max_deliverable_uw=laser.max_output_power_w * 1e6,
        low_power_efficiency=laser.efficiency(1e-6, activity=config.chip_activity),
    )
# ------------------------------------------------------------------ grid API
def run_sweep_shard(params, config=DEFAULT_CONFIG):
    """Worker: sweep the laser model; returns the rendered payload."""
    result = run_figure4(config)
    rows = [
        {"op_laser_uw": op, "p_laser_mw": p}
        for op, p in zip(result.optical_power_uw, result.laser_power_mw)
    ]
    return {"text": result.render_text(), "rows": rows}
