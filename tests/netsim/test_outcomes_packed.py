"""Behaviour of the packed bit-exact outcome sampler.

The sampler draws the attempt's error mask first and short-circuits clean
attempts; these tests pin the fast path (error-free -> everything delivered
clean, no codeword materialised), the slow path (real corruption detected
by the CRC / delivered as residual errors without one), determinism under a
fixed seed, and the packed position->mask builder it relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.crc import CyclicRedundancyCheck
from repro.coding.packed import pack_bits
from repro.coding.registry import get_code
from repro.netsim.outcomes import BitExactOutcomeSampler, _packed_mask_from_positions
from repro.simulation.faults import BurstErrorModel, IndependentErrorModel


def _sampler(code_name="H(71,64)", *, ber, crc="crc16-ccitt", seed=123, packet_bits=512):
    rng = np.random.default_rng(seed)
    return BitExactOutcomeSampler(
        get_code(code_name),
        IndependentErrorModel(ber, rng=rng),
        packet_bits=packet_bits,
        crc=CyclicRedundancyCheck.from_name(crc) if crc else None,
        rng=rng,
    )


class TestPackedMaskFromPositions:
    @pytest.mark.parametrize("n", [7, 64, 71, 130])
    def test_matches_pack_bits(self, n):
        rng = np.random.default_rng(n)
        blocks = 40
        bits = np.zeros((blocks, n), dtype=np.uint8)
        flat = rng.choice(blocks * n, size=min(29, blocks * n // 3), replace=False)
        bits.reshape(-1)[flat] = 1
        assert np.array_equal(
            _packed_mask_from_positions(np.sort(flat), blocks, n), pack_bits(bits)
        )


class TestBitExactSampler:
    def test_error_free_attempts_deliver_everything(self):
        sampler = _sampler(ber=0.0)
        outcome = sampler.sample(32)
        assert outcome.packets == 32
        assert outcome.delivered == 32
        assert outcome.failed_detected == 0
        assert outcome.delivered_with_errors == 0
        assert outcome.residual_bit_errors == 0

    def test_seeded_outcomes_are_deterministic(self):
        first = [_sampler(ber=2e-3, seed=9).sample(16) for _ in range(1)][0]
        second = _sampler(ber=2e-3, seed=9).sample(16)
        assert first == second

    def test_crc_detects_heavy_corruption(self):
        outcome = _sampler(ber=0.05).sample(64)
        assert outcome.failed_detected > 0
        assert outcome.packets == 64
        assert outcome.delivered == 64 - outcome.failed_detected

    def test_without_crc_errors_are_delivered(self):
        outcome = _sampler(ber=0.02, crc=None).sample(64)
        assert outcome.failed_detected == 0
        assert outcome.delivered == 64
        assert outcome.delivered_with_errors > 0
        assert outcome.residual_bit_errors >= outcome.delivered_with_errors

    def test_burst_model_rides_the_packed_path(self):
        rng = np.random.default_rng(5)
        sampler = BitExactOutcomeSampler(
            get_code("H(71,64)"),
            BurstErrorModel(
                good_error_probability=0.0,
                bad_error_probability=0.5,
                good_to_bad_probability=0.05,
                bad_to_good_probability=0.1,
                rng=rng,
            ),
            packet_bits=512,
            crc=CyclicRedundancyCheck.from_name("crc16-ccitt"),
            rng=rng,
        )
        outcome = sampler.sample(64)
        assert outcome.packets == 64
        assert outcome.failed_detected > 0

    def test_small_code_with_bit_level_framing(self):
        """H(7,4) frames are not word aligned; the bit path must still work."""
        outcome = _sampler("H(7,4)", ber=5e-3, packet_bits=96).sample(20)
        assert outcome.packets == 20
        assert outcome.delivered + outcome.failed_detected == 20
