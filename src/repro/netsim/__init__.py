"""Discrete-event network simulation of the managed MWSR ring.

``repro.netsim`` joins the repository's layers into one end-to-end engine:
traffic generators feed per-ONI request arrivals, the OS-level
:class:`~repro.manager.manager.OpticalLinkManager` configures each transfer
(ECC scheme + laser power per policy), a per-channel
:class:`~repro.interconnect.arbitration.TokenArbiter` resolves MWSR
contention, faults corrupt packets at the operating point's raw BER and
CRC-checked ARQ retransmits what the receiver caught.  The engine is fully
``SeedSequence``-driven (no wall-clock anywhere), so runs are reproducible
and shardable by the sweep orchestrator.

Typical use::

    from repro.netsim import NetworkSimulator
    from repro.traffic.generators import UniformTrafficGenerator

    traffic = UniformTrafficGenerator(12, mean_request_rate_hz=5e8, seed=1)
    sim = NetworkSimulator(seed=2)
    result = sim.run(traffic.generate(2000))
    print(result.metrics().as_dict())

The fast default samples packet outcomes from the decoder's analytic
frame-error probabilities batch-at-a-time (``mode="probabilistic"``); the
bit-exact mode round-trips real codewords through the batch coding API for
cross-validation.  The ``network`` experiment
(:mod:`repro.experiments.network`) sweeps traffic pattern x injection rate
x manager policy on top of this engine.
"""

from .dynamics import (
    AgingRampDrift,
    ChannelDriftModel,
    ConstantDrift,
    DriftProcess,
    RandomWalkDrift,
    ThermalSinusoidDrift,
    make_drift_model,
)
from .engine import ENGINES, NetTransferRecord, NetworkResult, NetworkSimulator
from .events import Event, EventKind, EventQueue, EpochEventCore
from .failures import (
    FAULT_SCENARIOS,
    ChannelFaultTimeline,
    ChannelHealth,
    FaultTransition,
    HardFaultModel,
    make_fault_model,
)
from .metrics import (
    IntervalTrace,
    LatencySummary,
    NetworkMetrics,
    nearest_rank_percentile,
)
from .outcomes import (
    BitExactOutcomeSampler,
    ProbabilisticOutcomeSampler,
    TransmissionOutcome,
    packets_for_payload,
)

__all__ = [
    "NetworkSimulator",
    "NetworkResult",
    "NetTransferRecord",
    "ENGINES",
    "Event",
    "EventKind",
    "EventQueue",
    "EpochEventCore",
    "LatencySummary",
    "NetworkMetrics",
    "IntervalTrace",
    "nearest_rank_percentile",
    "TransmissionOutcome",
    "ProbabilisticOutcomeSampler",
    "BitExactOutcomeSampler",
    "packets_for_payload",
    "DriftProcess",
    "ConstantDrift",
    "ThermalSinusoidDrift",
    "AgingRampDrift",
    "RandomWalkDrift",
    "ChannelDriftModel",
    "make_drift_model",
    "ChannelHealth",
    "FaultTransition",
    "ChannelFaultTimeline",
    "HardFaultModel",
    "make_fault_model",
    "FAULT_SCENARIOS",
]
