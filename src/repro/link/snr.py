"""Photodetector SNR of the optical link (paper Eq. 4) and its inversion.

``SNR = R * (OPsignal - OPcrosstalk) / i_n``

where ``R`` is the photodetector responsivity (1 A/W), ``i_n`` the dark
current (4 uA), ``OPsignal`` the useful optical signal power reaching the
photodetector and ``OPcrosstalk`` the worst-case crosstalk power.  The
helpers here are thin, explicit wrappers so the experiment code reads like
the paper's equations.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from ..photonics.photodetector import Photodetector

__all__ = ["snr_at_photodetector", "required_signal_power"]


def snr_at_photodetector(
    signal_power_w: float,
    crosstalk_power_w: float = 0.0,
    *,
    detector: Photodetector | None = None,
) -> float:
    """Evaluate Eq. 4 for a given received signal and crosstalk power."""
    pd = detector if detector is not None else Photodetector()
    return pd.snr(signal_power_w, crosstalk_power_w)


def required_signal_power(
    snr: float,
    crosstalk_power_w: float = 0.0,
    *,
    detector: Photodetector | None = None,
) -> float:
    """Invert Eq. 4: the OPsignal needed to reach ``snr`` given crosstalk."""
    if snr < 0:
        raise ConfigurationError("SNR cannot be negative")
    pd = detector if detector is not None else Photodetector()
    return pd.required_signal_power(snr, crosstalk_power_w)
