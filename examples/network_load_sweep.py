"""Network load sweep on the discrete-event MWSR ring simulator.

Drives :class:`repro.netsim.NetworkSimulator` — traffic generators, token
arbitration, the OS-level link manager and fault-injected ARQ in one engine
— over increasing injection rates for each canonical traffic shape, and
prints the latency/throughput/energy knee per manager policy.  This is the
load/latency curve the single-link experiments cannot produce: contention
on the reader channels is what separates the hotspot curve from the
uniform one.

Run with::

    python examples/network_load_sweep.py

or reproduce the full registered experiment (shardable over processes)::

    repro-experiments network --jobs 4
"""

from __future__ import annotations

from repro.experiments.network import run_network
from repro.netsim import NetworkSimulator
from repro.traffic.generators import UniformTrafficGenerator


def single_point_anatomy() -> None:
    """Inspect one simulation point in detail: records and channel state."""
    traffic = UniformTrafficGenerator(
        12, mean_request_rate_hz=5e8, payload_bits=4096, seed=1
    )
    simulator = NetworkSimulator(seed=2)
    result = simulator.run(traffic.generate(2000))
    metrics = result.metrics()
    print("One uniform-traffic point (2000 requests, min-power policy):")
    print(f"  p50 / p99 latency : {metrics.latency.p50_s * 1e9:8.1f} / "
          f"{metrics.latency.p99_s * 1e9:8.1f} ns")
    print(f"  offered/delivered : {metrics.offered_throughput_bits_per_s / 1e9:8.1f} / "
          f"{metrics.delivered_throughput_bits_per_s / 1e9:8.1f} Gb/s")
    print(f"  peak channel util : {metrics.peak_channel_utilization:8.3f}")
    print(f"  energy per bit    : {metrics.energy_per_delivered_bit_j * 1e12:8.3f} pJ")
    print(f"  events processed  : {result.events_processed}")
    print()


def full_sweep() -> None:
    """The registered ``network`` experiment: pattern x load x policy grid."""
    result = run_network(
        options={
            "loads": [0.1, 0.3, 0.5, 0.7, 0.9],
            "num_requests": 800,
        }
    )
    print(result.render_text())


def main() -> int:
    single_point_anatomy()
    full_sweep()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
