"""Benchmark ``figure6a``: channel power breakdown at BER 1e-11.

Paper artefact: Figure 6a (per-wavelength P_enc+dec / P_MR / P_laser bars for
w/o ECC, H(71,64) and H(7,4); the lasers draw 92% of the uncoded channel and
the coded schemes cut the total by ~45-49%) plus the Section V-C energy-per-
bit discussion.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import run_figure6a


def test_bench_figure6a_breakdown(benchmark):
    """Time the Figure 6a computation and validate the power structure."""
    result = benchmark(run_figure6a)

    uncoded = result.breakdowns["w/o ECC"]
    h71 = result.breakdowns["H(71,64)"]
    h74 = result.breakdowns["H(7,4)"]

    # The laser dominates the uncoded channel (92% in the paper).
    assert uncoded.laser_share == pytest.approx(0.92, abs=0.02)

    # The coded schemes cut the channel power roughly in half.
    assert result.power_reduction_vs_uncoded("H(71,64)") == pytest.approx(0.45, abs=0.10)
    assert result.power_reduction_vs_uncoded("H(7,4)") == pytest.approx(0.49, abs=0.10)

    # The modulator contribution is identical across schemes (1.36 mW).
    for breakdown in (uncoded, h71, h74):
        assert breakdown.modulator_power_w == pytest.approx(1.36e-3)

    # Per-waveguide totals land near the paper's 251 mW / 136 mW.
    assert uncoded.total_power_mw * 16 == pytest.approx(251.0, rel=0.10)
    assert h71.total_power_mw * 16 == pytest.approx(136.0, rel=0.10)

    # H(71,64) is the most energy-efficient scheme.
    energies = {
        name: metrics.energy_per_bit_modulation_j for name, metrics in result.energies.items()
    }
    assert min(energies, key=energies.get) == "H(71,64)"


def test_bench_channel_power_single_scheme(benchmark):
    """Micro-benchmark of a single channel-power breakdown."""
    from repro.coding.hamming import HammingCode
    from repro.power.channel import channel_power_breakdown

    breakdown = benchmark(channel_power_breakdown, HammingCode(3), 1e-11)
    assert breakdown.total_power_w > 0
