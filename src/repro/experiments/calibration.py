"""Calibration summary of the substituted models.

DESIGN.md documents the substitutions made for the substrates we cannot run
(Li et al.'s MWSR transmission model, the PCM-VCSEL thermal data, the 28 nm
synthesis flow).  This module exposes, in one place, the values those
substitutions produce under the paper's configuration — the end-to-end
signal-path loss, the crosstalk ratio, the laser efficiency — so a user can
audit where the reproduction's operating points come from and re-calibrate
if they have better device data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONFIG, PaperConfig
from .gridlib import single_merge_sweep as merge_sweep, single_sweep_shards as sweep_shards
from ..link.power_budget import LinkPowerBudget
from ..photonics.laser import VCSELModel

__all__ = ["CalibrationSummary", "run_calibration", "sweep_shards", "run_sweep_shard", "merge_sweep"]


@dataclass
class CalibrationSummary:
    """The calibrated quantities behind the reproduced operating points."""

    signal_path_loss_db: float
    loss_breakdown_db: dict[str, float]
    crosstalk_ratio: float
    laser_base_efficiency: float
    laser_droop_power_mw: float
    laser_max_output_uw: float
    chip_activity: float

    def render_text(self) -> str:
        """Human-readable calibration report."""
        lines = [
            "Calibration of the substituted models (see DESIGN.md)",
            f"worst-case signal-path loss: {self.signal_path_loss_db:.2f} dB",
        ]
        for name, value in self.loss_breakdown_db.items():
            if name == "total_db":
                continue
            lines.append(f"  - {name:<30s} {value:6.3f} dB")
        lines.extend(
            [
                f"worst-case crosstalk ratio: {self.crosstalk_ratio * 100:.2f}% of the received signal",
                f"laser base efficiency: {self.laser_base_efficiency * 100:.1f}%",
                f"laser droop power scale: {self.laser_droop_power_mw:.1f} mW",
                f"laser maximum optical output: {self.laser_max_output_uw:.0f} uW",
                f"chip activity: {self.chip_activity * 100:.0f}%",
            ]
        )
        return "\n".join(lines)


def run_calibration(config: PaperConfig = DEFAULT_CONFIG) -> CalibrationSummary:
    """Collect the calibrated quantities for the given configuration."""
    budget = LinkPowerBudget(config=config)
    laser = VCSELModel.from_config(config)
    return CalibrationSummary(
        signal_path_loss_db=budget.signal_path_loss_db,
        loss_breakdown_db=budget.breakdown(),
        crosstalk_ratio=budget.crosstalk_ratio,
        laser_base_efficiency=laser.base_efficiency,
        laser_droop_power_mw=laser.droop_power_w * 1e3,
        laser_max_output_uw=laser.max_output_power_w * 1e6,
        chip_activity=config.chip_activity,
    )
# ------------------------------------------------------------------ grid API
def run_sweep_shard(params, config=DEFAULT_CONFIG):
    """Worker: recompute the calibration summary; returns the rendered payload."""
    result = run_calibration(config)
    rows = [
        {"component": name, "loss_db": value}
        for name, value in result.loss_breakdown_db.items()
    ]
    return {"text": result.render_text(), "rows": rows}
