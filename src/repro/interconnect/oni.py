"""Optical Network Interface (ONI).

Each ONI couples an IP core on the electrical layer (through a TSV bundle)
to the optical layer: it owns a transmitter interface (writer role, one per
channel it writes on) and a receiver interface (reader role, for its own
channel).  The object tracks the currently configured communication mode of
each role, mirroring the configuration messages of the link manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..interfaces.receiver import ReceiverInterface
from ..interfaces.transmitter import TransmitterInterface, UNCODED_MODE

__all__ = ["OpticalNetworkInterface"]


@dataclass
class OpticalNetworkInterface:
    """One ONI with its electrical transmitter and receiver interfaces."""

    index: int
    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    transmitter: TransmitterInterface | None = None
    receiver: ReceiverInterface | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("ONI index cannot be negative")
        if self.transmitter is None:
            self.transmitter = TransmitterInterface.paper_default()
        if self.receiver is None:
            self.receiver = ReceiverInterface.paper_default()
        self._tx_mode = UNCODED_MODE
        self._rx_mode = UNCODED_MODE

    # ------------------------------------------------------------------ configuration
    @property
    def transmit_mode(self) -> str:
        """Currently selected transmitter communication mode."""
        return self._tx_mode

    @property
    def receive_mode(self) -> str:
        """Currently selected receiver communication mode."""
        return self._rx_mode

    def configure_transmit(self, mode: str) -> None:
        """Select the transmitter path (must exist in the TX interface)."""
        if mode not in self.transmitter.modes():
            raise ConfigurationError(
                f"transmitter of ONI {self.index} has no mode {mode!r}"
            )
        self._tx_mode = mode

    def configure_receive(self, mode: str) -> None:
        """Select the receiver path (must exist in the RX interface)."""
        if mode not in self.receiver.modes():
            raise ConfigurationError(
                f"receiver of ONI {self.index} has no mode {mode!r}"
            )
        self._rx_mode = mode

    # ------------------------------------------------------------------ figures
    @property
    def interface_area_um2(self) -> float:
        """Total electrical interface area of the ONI (TX + RX)."""
        return self.transmitter.total_area_um2 + self.receiver.total_area_um2

    def interface_power_w(self) -> float:
        """Electrical interface power at the currently configured modes."""
        return self.transmitter.total_power_w(self._tx_mode) + self.receiver.total_power_w(
            self._rx_mode
        )

    def ip_bandwidth_bits_per_s(self) -> float:
        """IP-side bandwidth this ONI can source or sink."""
        return self.config.ip_bandwidth_bits_per_s
