"""Message-level simulation of transfers over one MWSR channel.

Combines the pieces the analytic evaluation treats separately: packets are
encoded with the configured scheme, serialised onto the channel's
wavelengths, delayed by token arbitration when several writers contend,
corrupted by an error-injection model at the operating point's raw BER, and
decoded at the reader.  The output records per-transfer latency, occupancy
and residual errors, which the traffic examples aggregate per policy.

Payloads are processed as whole block batches on the packed ``uint64``
substrate: one padded ``(B, k)`` message matrix is packed, encoded through
the packed table fold, corrupted with one error-pattern draw applied as a
packed XOR mask and decoded packed, ``batch_size`` blocks per chunk;
residual payload errors are popcounts over the corrected words (the
zero-padding tail of the last block is masked out).  The random stream
matches the unpacked pipeline, so records are bit-identical; codes without
the packed API fall back to the unpacked batch chain.  There is no
per-block Python loop either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

import numpy as np

from ..coding.base import decode_blocks, decode_blocks_packed, encode_blocks, encode_blocks_packed
from ..coding.packed import pack_bits, popcount, popcount_rows, prefix_mask, range_mask
from ..coding.montecarlo import resolve_rng
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..interconnect.arbitration import TokenArbiter
from ..interconnect.mwsr import MWSRChannel
from .faults import IndependentErrorModel
from .packets import Message
from .stats import StreamingStatistics

__all__ = ["TransferRecord", "MessageTransferSimulator"]


@dataclass(frozen=True)
class TransferRecord:
    """Timing and integrity record of one simulated message transfer."""

    source: int
    destination: int
    payload_bits: int
    coded_bits: int
    request_time_s: float
    start_time_s: float
    completion_time_s: float
    residual_bit_errors: int
    channel_energy_j: float

    @property
    def latency_s(self) -> float:
        """Request-to-completion latency."""
        return self.completion_time_s - self.request_time_s

    @property
    def serialization_time_s(self) -> float:
        """Time the channel was occupied by this transfer."""
        return self.completion_time_s - self.start_time_s

    @property
    def error_free(self) -> bool:
        """True when the decoded payload matched the transmitted payload."""
        return self.residual_bit_errors == 0


@dataclass
class MessageTransferSimulator:
    """Simulate coded message transfers over one MWSR channel."""

    channel: MWSRChannel
    code: object
    raw_ber: float
    channel_power_w: float = 0.0
    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    rng: np.random.Generator | None = None
    seed: int | np.random.SeedSequence | None = None
    batch_size: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 <= self.raw_ber <= 1.0:
            raise ConfigurationError("raw BER must lie in [0, 1]")
        if self.channel_power_w < 0:
            raise ConfigurationError("channel power cannot be negative")
        if self.batch_size < 1:
            raise ConfigurationError("batch size must be at least 1")
        self.rng = resolve_rng(self.rng, self.seed)
        self._arbiter = TokenArbiter(writers=self.channel.writers)
        self._errors = IndependentErrorModel(self.raw_ber, rng=self.rng)
        self.latency_stats = StreamingStatistics()
        self.occupancy_stats = StreamingStatistics()

    # ------------------------------------------------------------------ helpers
    def _pad_to_block(self, bits: np.ndarray) -> np.ndarray:
        """Zero-pad a payload to a whole number of code blocks."""
        k = self.code.k
        remainder = bits.size % k
        if remainder == 0:
            return bits
        return np.concatenate([bits, np.zeros(k - remainder, dtype=np.uint8)])

    def serialization_time_s(self, coded_bits: int) -> float:
        """Channel-busy time of a coded payload on one waveguide group."""
        channel_rate = self.config.num_wavelengths * self.config.modulation_rate_hz
        return coded_bits / channel_rate

    def _residual_payload_errors(self, blocks: np.ndarray, payload_bits: int, payload: np.ndarray) -> int:
        """Encode → corrupt → decode all blocks and count residual payload errors.

        Runs packed (popcounts over corrected words, with the zero-padding
        tail of the last block masked out of the count) when the code
        exposes the packed API; otherwise falls back to the unpacked batch
        chain and compares decoded message bits against the payload.
        """
        code = self.code
        k, n = int(code.k), int(code.n)
        packed_path = (
            getattr(code, "encode_batch_packed", None) is not None
            and getattr(code, "decode_batch_packed", None) is not None
        )
        if not packed_path:
            decoded_chunks = [np.zeros((0, k), dtype=np.uint8)]
            for begin in range(0, blocks.shape[0], self.batch_size):
                chunk = blocks[begin : begin + self.batch_size]
                encoded = encode_blocks(code, chunk)
                corrupted = self._errors.apply(encoded)
                decoded_chunks.append(decode_blocks(code, corrupted).message_bits)
            decoded = np.concatenate(decoded_chunks).reshape(-1)[:payload_bits]
            return int(np.count_nonzero(decoded != payload))
        message_mask = prefix_mask(n, k)
        tail_bits = payload_bits % k
        residual = 0
        last_block = blocks.shape[0] - 1
        for begin in range(0, blocks.shape[0], self.batch_size):
            chunk = blocks[begin : begin + self.batch_size]
            encoded_words = encode_blocks_packed(code, pack_bits(chunk))
            corrupted_words = self._errors.apply_packed(encoded_words, n=n)
            decoded = decode_blocks_packed(code, corrupted_words)
            diff = (decoded.corrected_words ^ encoded_words) & message_mask
            if tail_bits and begin + chunk.shape[0] > last_block:
                # Errors landing in the zero padding of the final block do
                # not corrupt payload; restrict that row to the payload bits.
                residual += int(popcount_rows(diff[:-1]).sum())
                residual += popcount(diff[-1] & range_mask(n, 0, tail_bits))
            else:
                residual += int(popcount_rows(diff).sum())
        return residual

    # ------------------------------------------------------------------ simulation
    def transfer(self, message: Message, request_time_s: float = 0.0) -> TransferRecord:
        """Simulate one message transfer end to end."""
        if message.destination != self.channel.reader:
            raise ConfigurationError(
                f"message destination {message.destination} is not the reader "
                f"of this channel ({self.channel.reader})"
            )
        payload = message.payload()
        padded = self._pad_to_block(payload)
        blocks = padded.reshape(-1, self.code.k)
        coded_bits = blocks.shape[0] * self.code.n
        duration = self.serialization_time_s(coded_bits)
        start = self._arbiter.request(message.source, request_time_s, duration)
        residual = self._residual_payload_errors(blocks, payload.size, payload)
        completion = start + duration
        record = TransferRecord(
            source=message.source,
            destination=message.destination,
            payload_bits=int(payload.size),
            coded_bits=coded_bits,
            request_time_s=request_time_s,
            start_time_s=start,
            completion_time_s=completion,
            residual_bit_errors=residual,
            channel_energy_j=self.channel_power_w * duration,
        )
        self.latency_stats.add(record.latency_s)
        self.occupancy_stats.add(record.serialization_time_s)
        return record

    def run(self, messages: Iterable[tuple[Message, float]]) -> List[TransferRecord]:
        """Simulate a sequence of ``(message, request_time)`` transfers."""
        return [self.transfer(message, when) for message, when in messages]
