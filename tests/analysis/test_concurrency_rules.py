"""Fixture suite for the RPR2xx lock-discipline analyzer.

The centrepiece is :data:`SEEDED_RACE`: a stats-counter race distilled
from the service layer's shape.  It is exactly the class of bug the
service chaos tests cannot reliably catch — a read-modify-write that only
corrupts state when two threads interleave inside a two-bytecode window —
and the static analyzer flags it deterministically, every run.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source

SERVICE_PATH = "repro/service/fixture.py"


def findings_for(source: str, path: str = SERVICE_PATH):
    return lint_source(textwrap.dedent(source), path=path)


def codes(source: str, path: str = SERVICE_PATH) -> list:
    return [finding.code for finding in findings_for(source, path)]


#: A seeded fixture race: ``record_success`` bumps the stats map without
#: the lock that every other access holds.  Chaos tests would need the
#: supervisor thread and an API thread to collide inside the += window to
#: see a lost update; the analyzer sees it statically.
SEEDED_RACE = """
import threading

class JobStats:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self._dead = 0

    def charge(self, key):
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1

    def mark_dead(self):
        with self._lock:
            self._dead += 1

    def record_success(self, key):
        # RACY: read-modify-write of the guarded map, no lock held.
        self._counts[key] = self._counts.get(key, 0) + 1

    def snapshot(self):
        with self._lock:
            return dict(self._counts), self._dead
"""


class TestLockDiscipline:
    def test_seeded_stats_race_is_flagged(self):
        race_findings = [
            finding for finding in findings_for(SEEDED_RACE) if finding.code == "RPR201"
        ]
        # Both the write and the .get() read on the racy line are outside
        # the lock.
        assert race_findings, "the seeded race must be flagged"
        assert all("_counts" in finding.message for finding in race_findings)
        assert any("written" in finding.message for finding in race_findings)

    def test_consistently_locked_class_is_clean(self):
        source = SEEDED_RACE.replace(
            "        # RACY: read-modify-write of the guarded map, no lock held.\n"
            "        self._counts[key] = self._counts.get(key, 0) + 1",
            "        with self._lock:\n"
            "            self._counts[key] = self._counts.get(key, 0) + 1",
        )
        assert codes(source) == []

    def test_init_is_exempt(self):
        source = """
        import threading
        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
                self._value = 0
            def bump(self):
                with self._lock:
                    self._value += 1
        """
        assert codes(source) == []

    def test_caller_holds_the_lock_docstring_exempts_helper(self):
        source = """
        import threading
        class Spool:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}
            def submit(self, job_id, job):
                with self._lock:
                    self._jobs[job_id] = job
                    self._persist(job_id)
            def _persist(self, job_id):
                \"\"\"Write one record (caller holds the lock).\"\"\"
                return self._jobs[job_id]
        """
        assert codes(source) == []

    def test_undocumented_helper_is_flagged(self):
        source = """
        import threading
        class Spool:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}
            def submit(self, job_id, job):
                with self._lock:
                    self._jobs[job_id] = job
            def peek(self, job_id):
                return self._jobs.get(job_id)
        """
        assert codes(source) == ["RPR201"]

    def test_unlocked_class_infers_nothing(self):
        # No lock attribute -> no discipline to enforce.
        source = """
        class Plain:
            def __init__(self):
                self._value = 0
            def bump(self):
                self._value += 1
        """
        assert codes(source) == []

    def test_scope_excludes_non_service_paths(self):
        assert codes(SEEDED_RACE, path="repro/netsim/fixture.py") == []

    def test_bound_method_reads_are_not_state(self):
        source = """
        import threading
        class Writer:
            def __init__(self):
                self._lock = threading.Lock()
                self._rows = []
            def add(self, row):
                with self._lock:
                    self._rows.append(self._shape(row))
            def _shape(self, row):
                return tuple(row)
            def render(self):
                return self._shape((1, 2))
        """
        assert codes(source) == []


class TestManualAcquire:
    def test_bare_acquire_is_flagged(self):
        source = """
        import threading
        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
            def run(self):
                self._lock.acquire()
                self._lock.release()
        """
        assert "RPR202" in codes(source)

    def test_try_finally_acquire_is_fine(self):
        source = """
        import threading
        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
            def run(self):
                self._lock.acquire()
                try:
                    pass
                finally:
                    self._lock.release()
        """
        assert codes(source) == []

    def test_with_statement_is_fine(self):
        source = """
        import threading
        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
            def run(self):
                with self._lock:
                    pass
        """
        assert codes(source) == []
