"""Tests for the VCSEL laser and photodetector models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.exceptions import ConfigurationError, LaserPowerExceededError
from repro.photonics.laser import VCSELModel
from repro.photonics.photodetector import Photodetector


class TestVCSELModel:
    def test_from_config_uses_paper_parameters(self):
        laser = VCSELModel.from_config(DEFAULT_CONFIG)
        assert laser.max_output_power_w == pytest.approx(700e-6)
        assert laser.reference_activity == pytest.approx(0.25)

    def test_zero_optical_power_costs_nothing(self):
        laser = VCSELModel()
        assert laser.electrical_power(0.0) == 0.0

    def test_low_power_regime_is_nearly_linear(self):
        laser = VCSELModel()
        p1 = laser.electrical_power(50e-6)
        p2 = laser.electrical_power(100e-6)
        assert p2 / p1 == pytest.approx(2.0, rel=0.05)

    def test_efficiency_droops_with_output_power(self):
        laser = VCSELModel()
        assert laser.efficiency(600e-6) < laser.efficiency(100e-6)

    def test_high_power_regime_is_superlinear(self):
        laser = VCSELModel()
        low_slope = laser.electrical_power(100e-6) / 100e-6
        # Evaluate the local slope near the top of the range (no feasibility cut).
        high_slope = (
            laser.electrical_power(680e-6, enforce_limit=False)
            - laser.electrical_power(660e-6, enforce_limit=False)
        ) / 20e-6
        assert high_slope > 1.2 * low_slope

    def test_exceeding_the_rating_raises(self):
        laser = VCSELModel()
        with pytest.raises(LaserPowerExceededError):
            laser.electrical_power(750e-6)

    def test_enforce_limit_false_allows_extrapolation(self):
        laser = VCSELModel()
        assert laser.electrical_power(750e-6, enforce_limit=False) > 0

    def test_can_deliver(self):
        laser = VCSELModel()
        assert laser.can_deliver(650e-6)
        assert not laser.can_deliver(710e-6)

    def test_higher_activity_costs_more_power(self):
        laser = VCSELModel()
        cold = laser.electrical_power(300e-6, activity=0.25)
        hot = laser.electrical_power(300e-6, activity=1.0)
        assert hot > cold

    def test_activity_derating_normalised_at_reference(self):
        laser = VCSELModel()
        assert laser.activity_derating(0.25) == pytest.approx(1.0)

    def test_operating_point_is_consistent(self):
        laser = VCSELModel()
        point = laser.operating_point(400e-6)
        assert point.optical_power_w == pytest.approx(400e-6)
        assert point.electrical_power_w == pytest.approx(
            point.optical_power_w / point.efficiency
        )
        assert 0 < point.wall_plug_efficiency_percent < 10

    def test_curve_matches_pointwise_evaluation(self):
        laser = VCSELModel()
        powers = np.array([0.0, 100e-6, 400e-6, 750e-6])
        curve = laser.electrical_power_curve(powers)
        for op, p in zip(powers, curve):
            assert p == pytest.approx(laser.electrical_power(op, enforce_limit=False))

    def test_uncoded_1e11_operating_point_lands_near_the_paper(self):
        # ~690 uW of optical power should cost roughly the paper's 14.3 mW.
        laser = VCSELModel.from_config(DEFAULT_CONFIG)
        power_mw = laser.electrical_power(690e-6) * 1e3
        assert 12.0 < power_mw < 18.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VCSELModel(base_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            VCSELModel(droop_power_w=0.0)
        with pytest.raises(ConfigurationError):
            VCSELModel(reference_activity=0.0)
        laser = VCSELModel()
        with pytest.raises(ConfigurationError):
            laser.efficiency(-1e-6)
        with pytest.raises(ConfigurationError):
            laser.activity_derating(1.5)


class TestPhotodetector:
    def test_from_config(self):
        detector = Photodetector.from_config(DEFAULT_CONFIG)
        assert detector.responsivity_a_per_w == pytest.approx(1.0)
        assert detector.dark_current_a == pytest.approx(4e-6)

    def test_photocurrent(self):
        detector = Photodetector()
        assert detector.photocurrent(100e-6) == pytest.approx(100e-6)

    def test_equation_four(self):
        detector = Photodetector()
        assert detector.snr(100e-6, 4e-6) == pytest.approx((100e-6 - 4e-6) / 4e-6)

    def test_snr_is_zero_when_crosstalk_swamps_signal(self):
        detector = Photodetector()
        assert detector.snr(5e-6, 10e-6) == 0.0

    def test_required_signal_power_inverts_snr(self):
        detector = Photodetector()
        snr = 22.5
        signal = detector.required_signal_power(snr, crosstalk_power_w=3e-6)
        assert detector.snr(signal, 3e-6) == pytest.approx(snr)

    def test_shot_noise_grows_with_power_and_bandwidth(self):
        detector = Photodetector()
        low = detector.shot_noise_current(10e-6, 10e9)
        high_power = detector.shot_noise_current(100e-6, 10e9)
        high_bw = detector.shot_noise_current(10e-6, 40e9)
        assert high_power > low
        assert high_bw > low

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Photodetector(responsivity_a_per_w=0.0)
        with pytest.raises(ConfigurationError):
            Photodetector(dark_current_a=0.0)
        detector = Photodetector()
        with pytest.raises(ConfigurationError):
            detector.photocurrent(-1.0)
        with pytest.raises(ConfigurationError):
            detector.snr(-1.0)
        with pytest.raises(ConfigurationError):
            detector.shot_noise_current(1e-6, 0.0)
