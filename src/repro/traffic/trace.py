"""Record and replay of traffic request traces.

Traces decouple workload generation from simulation: a generator's output
can be recorded once (optionally to a CSV file) and replayed against
different manager policies so comparisons see exactly the same requests.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List

from ..exceptions import ConfigurationError
from .generators import TrafficRequest

__all__ = ["TraceRecorder", "replay_trace"]

_FIELDS = [
    "arrival_time_s",
    "source",
    "destination",
    "payload_bits",
    "target_ber",
    "deadline_s",
]


@dataclass
class TraceRecorder:
    """Accumulates traffic requests and serialises them to CSV."""

    requests: List[TrafficRequest] = field(default_factory=list)

    def record(self, request: TrafficRequest) -> None:
        """Append one request to the trace."""
        self.requests.append(request)

    def record_all(self, requests: Iterable[TrafficRequest]) -> None:
        """Append every request of an iterable to the trace."""
        for request in requests:
            self.record(request)

    def __len__(self) -> int:
        return len(self.requests)

    def save(self, path: str | Path) -> None:
        """Write the trace to a CSV file."""
        path = Path(path)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=_FIELDS)
            writer.writeheader()
            for request in self.requests:
                writer.writerow(
                    {
                        "arrival_time_s": request.arrival_time_s,
                        "source": request.source,
                        "destination": request.destination,
                        "payload_bits": request.payload_bits,
                        "target_ber": request.target_ber,
                        "deadline_s": "" if request.deadline_s is None else request.deadline_s,
                    }
                )

    @classmethod
    def load(cls, path: str | Path) -> "TraceRecorder":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"trace file {path} does not exist")
        recorder = cls()
        with path.open("r", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                recorder.record(
                    TrafficRequest(
                        arrival_time_s=float(row["arrival_time_s"]),
                        source=int(row["source"]),
                        destination=int(row["destination"]),
                        payload_bits=int(row["payload_bits"]),
                        target_ber=float(row["target_ber"]),
                        deadline_s=float(row["deadline_s"]) if row["deadline_s"] else None,
                    )
                )
        return recorder


def replay_trace(trace: TraceRecorder) -> Iterator[TrafficRequest]:
    """Yield the trace's requests in arrival order."""
    for request in sorted(trace.requests, key=lambda r: r.arrival_time_s):
        yield request
