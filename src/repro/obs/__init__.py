"""``repro.obs`` — zero-perturbation observability for the whole stack.

The subsystem has three planes, all of them strictly *outside* the
simulation semantics:

* :mod:`~repro.obs.metrics` — a process-local registry of exact integer
  counters, float gauges and fixed-bucket histograms.  Engines, the
  manager and the orchestrator publish into whichever registry is active;
  snapshots are plain JSON and merge exactly (sums for counters,
  bucket-wise for histograms), so a sharded sweep's merged telemetry is
  byte-identical to the serial run's.
* :mod:`~repro.obs.tracing` — span-based tracing with a no-op fast path.
  Spans are emitted as JSON lines with monotonic-clock timings; wall-clock
  numbers never enter a result or checkpoint field.
* :mod:`~repro.obs.manifest` — per-run provenance records (grid
  fingerprint, options, package versions, wall/CPU time, per-shard metric
  snapshots) written next to the sweep checkpoint and rendered by
  :func:`~repro.obs.report.render_run_report` (the ``repro-experiments
  obs-report`` subcommand).

The non-negotiable invariant, pinned by the parity suite: enabling or
disabling any of this never touches an RNG stream or a simulation
observable — every :class:`~repro.netsim.engine.NetworkResult` and sweep
checkpoint is byte-identical with instrumentation on or off.
"""

from __future__ import annotations

from .logutil import setup_logging, shard_logging_context
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    environment_info,
    load_manifest,
    manifest_path,
    write_manifest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    collecting,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
)
from .report import render_run_report
from .tracing import (
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    tracing_to,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "collecting",
    "enable_metrics",
    "disable_metrics",
    "merge_snapshots",
    "Tracer",
    "active_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_to",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "environment_info",
    "load_manifest",
    "manifest_path",
    "write_manifest",
    "render_run_report",
    "setup_logging",
    "shard_logging_context",
]
