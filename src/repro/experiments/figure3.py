"""Experiment ``figure3``: micro-ring transmission in ON and OFF states.

Figure 3 of the paper plots the optical intensity at the output of a
modulator ring as a function of wavelength for both modulation states; the
gap between the two curves at the signal wavelength is the extinction ratio
(6.9 dB).  This experiment samples the Lorentzian ring model over a
wavelength window around the resonance and reports the achieved extinction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_CONFIG, PaperConfig
from ..photonics.microring import MicroringResonator, MicroringState
from ..units import linear_to_db
from .gridlib import single_merge_sweep as merge_sweep, single_sweep_shards as sweep_shards
from .paperdata import Comparison, PAPER_EXTINCTION_RATIO_DB

__all__ = ["Figure3Result", "run_figure3", "sweep_shards", "run_sweep_shard", "merge_sweep"]


@dataclass
class Figure3Result:
    """Sampled ON/OFF transmission spectra of the modulator ring."""

    wavelengths_m: np.ndarray
    on_transmission_db: np.ndarray
    off_transmission_db: np.ndarray
    achieved_extinction_db: float
    comparison: Comparison

    def render_text(self) -> str:
        """Short text summary (the full spectra are available as arrays)."""
        return "\n".join(
            [
                "Figure 3 - micro-ring transmission in ON/OFF states",
                f"samples: {self.wavelengths_m.size}",
                f"minimum ON-state transmission: {self.on_transmission_db.min():.2f} dB",
                f"minimum OFF-state transmission: {self.off_transmission_db.min():.2f} dB",
                self.comparison.render(),
            ]
        )


def run_figure3(
    config: PaperConfig = DEFAULT_CONFIG, *, num_points: int = 401
) -> Figure3Result:
    """Sample the ring spectra and verify the extinction ratio."""
    ring = MicroringResonator(
        resonance_wavelength_m=config.center_wavelength_m,
        quality_factor=config.ring_quality_factor,
        extinction_ratio_db=config.extinction_ratio_db,
        through_loss_db=config.ring_through_loss_db,
        drop_loss_db=config.ring_drop_loss_db,
        drive_power_w=config.modulator_power_w,
    )
    span = 6.0 * ring.fwhm_m
    wavelengths = np.linspace(
        config.center_wavelength_m - span, config.center_wavelength_m + span, num_points
    )
    on = ring.spectrum(wavelengths, MicroringState.ON)
    off = ring.spectrum(wavelengths, MicroringState.OFF)
    achieved = ring.modulation_extinction_db()
    comparison = Comparison(
        quantity="modulator extinction ratio",
        measured=achieved,
        reference=PAPER_EXTINCTION_RATIO_DB,
        unit="dB",
    )
    return Figure3Result(
        wavelengths_m=wavelengths,
        on_transmission_db=np.asarray(linear_to_db(on)),
        off_transmission_db=np.asarray(linear_to_db(off)),
        achieved_extinction_db=achieved,
        comparison=comparison,
    )
# ------------------------------------------------------------------ grid API
def run_sweep_shard(params, config=DEFAULT_CONFIG):
    """Worker: sample the ring spectra; returns the rendered payload."""
    result = run_figure3(config)
    rows = [
        {"wavelength_nm": wl * 1e9, "on_db": on, "off_db": off}
        for wl, on, off in zip(
            result.wavelengths_m, result.on_transmission_db, result.off_transmission_db
        )
    ]
    return {"text": result.render_text(), "rows": rows}
