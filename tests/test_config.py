"""Tests for the paper configuration object."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG, PaperConfig
from repro.exceptions import ConfigurationError


class TestDefaultsMatchThePaper:
    def test_geometry(self):
        assert DEFAULT_CONFIG.num_onis == 12
        assert DEFAULT_CONFIG.num_wavelengths == 16
        assert DEFAULT_CONFIG.num_waveguides_per_channel == 16

    def test_waveguide(self):
        assert DEFAULT_CONFIG.waveguide_length_m == pytest.approx(0.06)
        assert DEFAULT_CONFIG.waveguide_loss_db_per_cm == pytest.approx(0.274)
        assert DEFAULT_CONFIG.waveguide_loss_db == pytest.approx(0.274 * 6.0)

    def test_modulator(self):
        assert DEFAULT_CONFIG.extinction_ratio_db == pytest.approx(6.9)
        assert DEFAULT_CONFIG.modulator_power_w == pytest.approx(1.36e-3)

    def test_photodetector(self):
        assert DEFAULT_CONFIG.photodetector_responsivity_a_per_w == pytest.approx(1.0)
        assert DEFAULT_CONFIG.dark_current_a == pytest.approx(4e-6)

    def test_laser_rating(self):
        assert DEFAULT_CONFIG.laser_max_output_power_w == pytest.approx(700e-6)
        assert DEFAULT_CONFIG.chip_activity == pytest.approx(0.25)

    def test_interface_clocks(self):
        assert DEFAULT_CONFIG.ip_bus_width_bits == 64
        assert DEFAULT_CONFIG.ip_clock_hz == pytest.approx(1e9)
        assert DEFAULT_CONFIG.modulation_rate_hz == pytest.approx(10e9)


class TestDerivedQuantities:
    def test_writers_per_channel(self):
        assert DEFAULT_CONFIG.num_writers == 11
        assert DEFAULT_CONFIG.num_intermediate_writers == 10

    def test_bandwidths(self):
        assert DEFAULT_CONFIG.ip_bandwidth_bits_per_s == pytest.approx(64e9)
        assert DEFAULT_CONFIG.channel_raw_bandwidth_bits_per_s == pytest.approx(160e9)

    def test_serialization_ratio(self):
        assert DEFAULT_CONFIG.serialization_ratio == pytest.approx(10.0)

    def test_wavelength_grid_size_and_centre(self):
        grid = DEFAULT_CONFIG.wavelengths_m
        assert len(grid) == DEFAULT_CONFIG.num_wavelengths
        centre = 0.5 * (grid[0] + grid[-1])
        assert centre == pytest.approx(DEFAULT_CONFIG.center_wavelength_m)

    def test_wavelength_grid_spacing(self):
        grid = DEFAULT_CONFIG.wavelengths_m
        spacings = {round(b - a, 15) for a, b in zip(grid, grid[1:])}
        assert len(spacings) == 1
        assert spacings.pop() == pytest.approx(DEFAULT_CONFIG.channel_spacing_m)


class TestValidationAndOverrides:
    def test_with_overrides_returns_new_instance(self):
        modified = DEFAULT_CONFIG.with_overrides(num_onis=16)
        assert modified.num_onis == 16
        assert DEFAULT_CONFIG.num_onis == 12

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.num_onis = 20  # type: ignore[misc]

    def test_rejects_too_few_onis(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(num_onis=1)

    def test_rejects_zero_wavelengths(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(num_wavelengths=0)

    def test_rejects_bad_activity(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(chip_activity=0.0)
        with pytest.raises(ConfigurationError):
            PaperConfig(chip_activity=1.5)

    def test_rejects_non_positive_extinction_ratio(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(extinction_ratio_db=0.0)

    def test_rejects_non_positive_laser_power(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(laser_max_output_power_w=0.0)

    def test_rejects_non_positive_bus_width(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(ip_bus_width_bits=0)
