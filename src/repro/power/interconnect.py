"""Whole-interconnect power aggregation (paper Section V-C headline numbers).

The paper scales the per-wavelength channel power up to the full
interconnect: 16 wavelengths per waveguide, 16 waveguides per MWSR channel
and 12 ONIs (one MWSR channel per reader), which turns the ~115 mW saved per
waveguide into "22 W for the whole interconnect".  This module performs that
aggregation and the comparison between two configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from .channel import ChannelPowerBreakdown

__all__ = ["InterconnectPowerSummary", "interconnect_power_summary", "interconnect_power_saving_w"]


@dataclass(frozen=True)
class InterconnectPowerSummary:
    """Aggregated power of one interconnect configuration."""

    code_name: str
    target_ber: float
    per_wavelength_power_w: float
    num_wavelengths: int
    num_waveguides_per_channel: int
    num_channels: int

    @property
    def per_waveguide_power_w(self) -> float:
        """Power of one waveguide (all its wavelengths)."""
        return self.per_wavelength_power_w * self.num_wavelengths

    @property
    def per_channel_power_w(self) -> float:
        """Power of one MWSR channel (all its waveguides)."""
        return self.per_waveguide_power_w * self.num_waveguides_per_channel

    @property
    def total_power_w(self) -> float:
        """Power of the whole interconnect (one channel per ONI/reader)."""
        return self.per_channel_power_w * self.num_channels

    def as_dict(self) -> dict[str, float]:
        """Summary as a plain dictionary."""
        return {
            "code": self.code_name,
            "target_ber": self.target_ber,
            "per_wavelength_mw": self.per_wavelength_power_w * 1e3,
            "per_waveguide_mw": self.per_waveguide_power_w * 1e3,
            "per_channel_w": self.per_channel_power_w,
            "total_w": self.total_power_w,
        }


def interconnect_power_summary(
    breakdown: ChannelPowerBreakdown,
    *,
    config: PaperConfig = DEFAULT_CONFIG,
) -> InterconnectPowerSummary:
    """Aggregate a per-wavelength breakdown up to the whole interconnect."""
    return InterconnectPowerSummary(
        code_name=breakdown.code_name,
        target_ber=breakdown.target_ber,
        per_wavelength_power_w=breakdown.total_power_w,
        num_wavelengths=config.num_wavelengths,
        num_waveguides_per_channel=config.num_waveguides_per_channel,
        num_channels=config.num_onis,
    )


def interconnect_power_saving_w(
    baseline: InterconnectPowerSummary, improved: InterconnectPowerSummary
) -> float:
    """Total interconnect power saved by moving from ``baseline`` to ``improved``.

    Both summaries must describe the same interconnect geometry.
    """
    same_geometry = (
        baseline.num_wavelengths == improved.num_wavelengths
        and baseline.num_waveguides_per_channel == improved.num_waveguides_per_channel
        and baseline.num_channels == improved.num_channels
    )
    if not same_geometry:
        raise ConfigurationError("power savings require identical interconnect geometries")
    return baseline.total_power_w - improved.total_power_w
