"""Property-based ordering invariants for the event cores.

:class:`~repro.netsim.events.EpochEventCore` promises exactly
:class:`~repro.netsim.events.EventQueue`'s total order — ``(time_s,
insertion sequence)``, static events sequenced before every dynamic one —
while serving the static bulk by cursor instead of heap.  Hypothesis
drives both against a plain ``heapq`` model with arbitrary interleavings
of pushes and pops, timestamp ties included, so any divergence in
ordering, loss or duplication across the static/dynamic boundary shows up
as a shrunk counterexample.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.netsim.events import EpochEventCore, EventKind, EventQueue

# Continuous times rarely tie; coarse integer-derived times tie constantly.
# Both matter: ties exercise the sequence-number tie-break, distinct times
# exercise the merge between the static cursor and the dynamic heap.
_smooth_times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
_tying_times = st.integers(min_value=0, max_value=4).map(float)
_times = st.one_of(_smooth_times, _tying_times)

#: An operation: ``None`` pops, a float pushes a dynamic event at that time.
_ops = st.lists(st.one_of(st.none(), _times), max_size=80)


def _static_events(times):
    return [(t, EventKind.ARRIVAL, ("static", i)) for i, t in enumerate(times)]


class TestEpochEventCoreVsHeapModel:
    @given(static=st.lists(_times, max_size=40), ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_interleaved_pushes_and_pops_match_the_model(self, static, ops):
        core = EpochEventCore(_static_events(static))
        model = [
            (t, i, EventKind.ARRIVAL, ("static", i)) for i, t in enumerate(static)
        ]
        heapq.heapify(model)
        sequence = len(static)
        pops = 0
        for op in ops:
            if op is None:
                got = core.pop()
                if model:
                    assert got == heapq.heappop(model)
                    pops += 1
                else:
                    assert got is None
            else:
                payload = ("dynamic", sequence)
                core.push(op, EventKind.DEPARTURE, payload)
                heapq.heappush(model, (op, sequence, EventKind.DEPARTURE, payload))
                sequence += 1
            assert len(core) == len(model)
            assert bool(core) == bool(model)
        while model:
            assert core.pop() == heapq.heappop(model)
            pops += 1
        assert core.pop() is None
        assert core.events_processed == pops

    @given(static=st.lists(_times, min_size=1, max_size=40), ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_drain_order_is_the_total_order(self, static, ops):
        """Popped keys are non-decreasing and unique in (time, sequence)."""
        core = EpochEventCore(_static_events(static))
        for op in ops:
            if op is not None:
                core.push(op, EventKind.DEPARTURE, None)
        drained = []
        while True:
            event = core.pop()
            if event is None:
                break
            drained.append(event[:2])
        assert drained == sorted(drained)
        assert len(set(drained)) == len(drained)
        assert len(drained) == len(static) + sum(op is not None for op in ops)

    @given(static=st.lists(_times, max_size=30), dynamic=st.lists(_times, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_matches_the_reference_event_queue(self, static, dynamic):
        """Same pushes, same total order as the reference EventQueue."""
        core = EpochEventCore(_static_events(static))
        queue = EventQueue()
        for t, kind, payload in _static_events(static):
            queue.push(t, kind, payload)
        for i, t in enumerate(dynamic):
            core.push(t, EventKind.DEPARTURE, ("dynamic", i))
            queue.push(t, EventKind.DEPARTURE, ("dynamic", i))
        while queue:
            event = queue.pop()
            got = core.pop()
            assert got == (event.time_s, event.sequence, event.kind, event.payload)
        assert core.pop() is None

    @given(when=st.integers(min_value=0, max_value=20), times=st.lists(_times, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_epoch_drain_boundary_keeps_sequencing(self, when, times):
        """Pops interleaved at an arbitrary point never disturb later order.

        This is the engine's actual usage: drain an epoch, schedule a batch
        of departures, drain again.
        """
        core = EpochEventCore(_static_events(times))
        model = [(t, i, EventKind.ARRIVAL, ("static", i)) for i, t in enumerate(times)]
        heapq.heapify(model)
        for _ in range(min(when, len(model))):
            assert core.pop() == heapq.heappop(model)
        sequence = len(times)
        for offset, t in enumerate(times):
            payload = ("epoch", offset)
            core.push(t, EventKind.RETRY, payload)
            heapq.heappush(model, (t, sequence, EventKind.RETRY, payload))
            sequence += 1
        while model:
            assert core.pop() == heapq.heappop(model)


class TestValidation:
    def test_negative_static_time_raises(self):
        with pytest.raises(ConfigurationError):
            EpochEventCore([(-1e-9, EventKind.ARRIVAL, None)])

    def test_negative_push_time_raises(self):
        core = EpochEventCore([(0.0, EventKind.ARRIVAL, None)])
        with pytest.raises(ConfigurationError):
            core.push(-1.0, EventKind.DEPARTURE, None)

    def test_empty_core_pops_none(self):
        core = EpochEventCore()
        assert core.pop() is None
        assert not core
        assert len(core) == 0
