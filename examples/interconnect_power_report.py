"""Interconnect-level power report and burst-error study.

Two ways downstream users typically extend the paper's analysis:

1. scale the per-wavelength numbers up to a whole interconnect and ask what
   the ECC-assisted configuration saves for *their* geometry (number of
   ONIs, waveguides, wavelengths);
2. check how the single-error-correcting Hamming codes behave when channel
   errors arrive in bursts (e.g. supply droop on the laser driver) and how
   much an interleaver recovers.

Run with::

    python examples/interconnect_power_report.py
"""

from __future__ import annotations

import numpy as np

from repro import DEFAULT_CONFIG, PaperConfig, UncodedScheme
from repro.coding import BlockInterleaver, HammingCode, ShortenedHammingCode
from repro.interconnect import OpticalNetwork
from repro.simulation import BurstErrorModel


def power_report(config: PaperConfig) -> None:
    """Print the interconnect-level power of each scheme for a geometry."""
    network = OpticalNetwork(config=config)
    uncoded = UncodedScheme(config.ip_bus_width_bits)
    h71 = ShortenedHammingCode(config.ip_bus_width_bits)
    h74 = HammingCode(3)
    print(
        f"geometry: {config.num_onis} ONIs x {config.num_waveguides_per_channel} waveguides x "
        f"{config.num_wavelengths} wavelengths"
    )
    for code in (uncoded, h71, h74):
        total = network.total_power_w(code, 1e-11)
        print(f"  {code.name:<12} total interconnect power: {total:7.2f} W")
    saving = network.power_saving_w(uncoded, h71, 1e-11)
    print(f"  saving with {h71.name} vs uncoded: {saving:.2f} W\n")


def burst_error_study() -> None:
    """Show how interleaving restores Hamming protection under burst errors."""
    rng = np.random.default_rng(7)
    code = HammingCode(3)
    depth = 16  # one 64-bit IP word = 16 H(7,4) codewords
    interleaver = BlockInterleaver(depth=depth, width=code.n)
    bursts = BurstErrorModel(
        good_error_probability=1e-5,
        bad_error_probability=0.4,
        good_to_bad_probability=2e-3,
        bad_to_good_probability=0.25,
        rng=rng,
    )
    words = 400
    residual_plain = 0
    residual_interleaved = 0
    payload_bits = 0
    for _ in range(words):
        message = rng.integers(0, 2, size=depth * code.k, dtype=np.uint8)
        payload_bits += message.size
        encoded = code.encode(message)
        # Without interleaving: the burst concentrates in few codewords.
        corrupted = bursts.apply(encoded)
        residual_plain += int(np.count_nonzero(code.decode(corrupted) != message))
        # With interleaving: the same channel behaviour is spread out.
        transmitted = interleaver.interleave(encoded)
        corrupted_interleaved = bursts.apply(transmitted)
        received = interleaver.deinterleave(corrupted_interleaved)
        residual_interleaved += int(np.count_nonzero(code.decode(received) != message))
    print("burst-error study (Gilbert-Elliott channel, H(7,4)):")
    print(f"  residual BER without interleaving: {residual_plain / payload_bits:.2e}")
    print(f"  residual BER with a depth-{depth} interleaver: {residual_interleaved / payload_bits:.2e}")
    print("  (interleaving spreads each burst over many codewords, restoring the\n"
          "   single-error-per-block assumption behind Eq. 2)\n")


def main() -> None:
    """Run the power report for two geometries, then the burst study."""
    power_report(DEFAULT_CONFIG)
    # A larger many-core instance: 16 ONIs and 8 waveguides per channel.
    power_report(
        DEFAULT_CONFIG.with_overrides(num_onis=16, num_waveguides_per_channel=8)
    )
    burst_error_study()


if __name__ == "__main__":
    main()
