"""Error-correction-code substrate.

This package implements, from scratch, every code used or implied by the
paper plus the generic machinery needed to analyse them:

* :mod:`repro.coding.matrices` — GF(2) linear algebra (RREF, null space,
  systematic forms).
* :mod:`repro.coding.base` — the :class:`LinearBlockCode` abstraction with
  encoding, syndrome decoding, and weight-distribution helpers.
* :mod:`repro.coding.hamming` — Hamming(2^m-1, 2^m-1-m) codes and their
  shortened variants, including the paper's H(7,4) and H(71,64).
* :mod:`repro.coding.extended_hamming` — SECDED (extended Hamming) codes.
* :mod:`repro.coding.parity`, :mod:`repro.coding.repetition` — simple
  detection-only and majority-vote codes used as baselines.
* :mod:`repro.coding.bch` — double-error-correcting BCH codes over GF(2^m)
  (an "other coding techniques can be used" extension mentioned in the
  paper).
* :mod:`repro.coding.crc` — cyclic redundancy checks for detection-only
  schemes.
* :mod:`repro.coding.uncoded` — the pass-through "w/o ECC" scheme.
* :mod:`repro.coding.packed` — the packed ``uint64`` bitplane substrate the
  batch coding/channel/simulation fast paths run on.
* :mod:`repro.coding.theory` — analytic post-decoding BER over a binary
  symmetric channel (paper Eq. 2 and generalisations).
* :mod:`repro.coding.montecarlo` — Monte-Carlo BER estimation.
* :mod:`repro.coding.registry` — name-based construction ("H(7,4)",
  "H(71,64)", "uncoded", ...).
"""

from .base import (
    BatchDecodeResult,
    Codeword,
    DecodeResult,
    LinearBlockCode,
    PackedBatchDecodeResult,
    decode_blocks,
    decode_blocks_packed,
    encode_blocks,
    encode_blocks_packed,
)
from .packed import pack_bits, popcount, popcount_rows, prefix_mask, unpack_bits, words_per_block
from .galois import GaloisField, get_field
from .uncoded import UncodedScheme
from .hamming import HammingCode, ShortenedHammingCode, hamming_parameters_for_message_length
from .extended_hamming import ExtendedHammingCode
from .parity import SingleParityCheckCode
from .repetition import RepetitionCode
from .bch import BCHCode
from .crc import CyclicRedundancyCheck
from .interleaving import BlockInterleaver
from .registry import available_codes, get_code, register_code
from .theory import (
    code_rate,
    coded_ber_bounded_distance,
    hamming_output_ber,
    raw_ber_for_target_output_ber,
    undetected_error_probability_upper_bound,
)
from .montecarlo import MonteCarloBERResult, estimate_ber_monte_carlo

__all__ = [
    "BatchDecodeResult",
    "Codeword",
    "DecodeResult",
    "LinearBlockCode",
    "PackedBatchDecodeResult",
    "decode_blocks",
    "decode_blocks_packed",
    "encode_blocks",
    "encode_blocks_packed",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "popcount_rows",
    "prefix_mask",
    "words_per_block",
    "GaloisField",
    "get_field",
    "UncodedScheme",
    "HammingCode",
    "ShortenedHammingCode",
    "hamming_parameters_for_message_length",
    "ExtendedHammingCode",
    "SingleParityCheckCode",
    "RepetitionCode",
    "BCHCode",
    "CyclicRedundancyCheck",
    "BlockInterleaver",
    "available_codes",
    "get_code",
    "register_code",
    "code_rate",
    "coded_ber_bounded_distance",
    "hamming_output_ber",
    "raw_ber_for_target_output_ber",
    "undetected_error_probability_upper_bound",
    "MonteCarloBERResult",
    "estimate_ber_monte_carlo",
]
