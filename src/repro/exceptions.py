"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Specific subclasses are raised where the failure
mode is meaningful to a user of the public API (e.g. a laser that cannot
deliver the requested optical power, or a BER target that no configuration
can reach).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CodingError",
    "CodewordLengthError",
    "DecodingFailure",
    "LaserPowerExceededError",
    "InfeasibleDesignError",
    "ArbitrationError",
    "SimulationError",
    "ShardExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class CodingError(ReproError):
    """Base class for errors in the ECC substrate."""


class CodewordLengthError(CodingError):
    """A message or codeword does not have the length required by the code."""


class DecodingFailure(CodingError):
    """A decoder detected an error pattern it cannot correct.

    Raised only by decoders operating in ``strict`` mode; by default the
    decoders return their best-effort estimate together with a flag.
    """


class LaserPowerExceededError(ReproError):
    """The required optical output power exceeds the laser's maximum rating.

    This is the error behind the paper's observation that a BER of 1e-12 is
    not reachable without ECC: the required ``OP_laser`` exceeds the maximum
    deliverable optical power (700 uW for the PCM-VCSEL considered).
    """

    def __init__(self, required_w: float, maximum_w: float, message: str | None = None):
        self.required_w = float(required_w)
        self.maximum_w = float(maximum_w)
        if message is None:
            message = (
                f"required laser output power {required_w * 1e6:.1f} uW exceeds the "
                f"maximum deliverable optical power {maximum_w * 1e6:.1f} uW"
            )
        super().__init__(message)


class InfeasibleDesignError(ReproError):
    """No operating point satisfies the requested constraints."""


class ArbitrationError(ReproError):
    """A channel-access request could not be satisfied."""


class SimulationError(ReproError):
    """An event handler failed mid-drain in the discrete-event engine.

    Wraps the original error with the failing event's kind, simulation time
    and position in the event stream, so a crash deep inside a controller or
    sampler still says *which* event broke the run.  The event queue itself
    is never left torn: the failing event was already popped, and no handler
    runs after the error surfaces.
    """


class ShardExecutionError(ReproError):
    """A sweep shard failed (worker crash, hang or an in-shard exception).

    Carries the experiment name, the shard's grid index and its parameter
    dict so a pooled sweep's failure names the exact grid point that died
    instead of an anonymous worker traceback.
    """

    def __init__(self, experiment: str, index: int, params: dict, reason: str):
        self.experiment = str(experiment)
        self.index = int(index)
        self.params = dict(params)
        super().__init__(
            f"shard {index} of experiment {experiment!r} failed ({reason}); "
            f"shard params: {self.params!r}"
        )
