"""Tests for GF(2) linear algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import matrices as m


class TestAsGf2:
    def test_reduces_modulo_two(self):
        assert np.array_equal(m.as_gf2([2, 3, 4, 5]), [0, 1, 0, 1])

    def test_returns_uint8(self):
        assert m.as_gf2([[1, 0], [0, 1]]).dtype == np.uint8

    def test_copies_input(self):
        original = np.array([1, 0, 1], dtype=np.uint8)
        result = m.as_gf2(original)
        result[0] = 0
        assert original[0] == 1


class TestMatmul:
    def test_identity(self):
        a = np.eye(3, dtype=np.uint8)
        b = np.array([[1, 0, 1], [1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert np.array_equal(m.gf2_matmul(a, b), b)

    def test_xor_behaviour(self):
        # [1 1] * [[1],[1]] = 1 + 1 = 0 over GF(2).
        assert m.gf2_matmul([[1, 1]], [[1], [1]])[0, 0] == 0

    def test_matches_modulo_of_integer_product(self, rng):
        a = rng.integers(0, 2, size=(5, 7))
        b = rng.integers(0, 2, size=(7, 4))
        expected = (a @ b) % 2
        assert np.array_equal(m.gf2_matmul(a, b), expected)


class TestRrefAndRank:
    def test_rank_of_identity(self):
        assert m.gf2_rank(np.eye(6, dtype=np.uint8)) == 6

    def test_rank_of_duplicated_rows(self):
        matrix = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        assert m.gf2_rank(matrix) == 2

    def test_rref_pivots_are_unit_columns(self):
        matrix = np.array([[1, 1, 0, 1], [0, 1, 1, 1], [1, 0, 1, 0]], dtype=np.uint8)
        rref, pivots = m.gf2_rref(matrix)
        for row_index, col in enumerate(pivots):
            column = rref[:, col]
            assert column[row_index] == 1
            assert int(column.sum()) == 1

    def test_rref_does_not_modify_input(self):
        matrix = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        before = matrix.copy()
        m.gf2_rref(matrix)
        assert np.array_equal(matrix, before)


class TestNullSpace:
    def test_null_space_vectors_satisfy_hx_equals_zero(self):
        h = np.array([[1, 0, 1, 1, 0], [0, 1, 1, 0, 1]], dtype=np.uint8)
        basis = m.gf2_null_space(h)
        assert basis.shape[0] == 3
        for vector in basis:
            product = m.gf2_matmul(h, vector[:, np.newaxis])
            assert not product.any()

    def test_null_space_of_full_rank_square_matrix_is_empty(self):
        assert m.gf2_null_space(np.eye(4, dtype=np.uint8)).shape[0] == 0


class TestSystematicForms:
    def test_parity_check_from_generator(self):
        p = np.array([[1, 1, 0], [0, 1, 1], [1, 1, 1], [1, 0, 1]], dtype=np.uint8)
        generator = np.concatenate([np.eye(4, dtype=np.uint8), p], axis=1)
        parity_check = m.gf2_parity_check_from_systematic_generator(generator)
        # G H^T = 0 for every codeword.
        product = m.gf2_matmul(generator, parity_check.T)
        assert not product.any()

    def test_parity_check_requires_systematic_form(self):
        non_systematic = np.array([[1, 1, 0, 1], [0, 1, 1, 1]], dtype=np.uint8)
        with pytest.raises(ValueError):
            m.gf2_parity_check_from_systematic_generator(non_systematic)

    def test_generator_from_parity_check_spans_null_space(self):
        p = np.array([[1, 1, 0], [0, 1, 1], [1, 1, 1], [1, 0, 1]], dtype=np.uint8)
        generator = np.concatenate([np.eye(4, dtype=np.uint8), p], axis=1)
        parity_check = m.gf2_parity_check_from_systematic_generator(generator)
        recovered = m.gf2_systematic_generator_from_parity_check(parity_check)
        assert recovered.shape == generator.shape
        assert not m.gf2_matmul(recovered, parity_check.T).any()


class TestWeightsAndDistance:
    def test_hamming_weight(self):
        assert m.hamming_weight([1, 0, 1, 1, 0]) == 3

    def test_hamming_distance(self):
        assert m.hamming_distance([1, 0, 1], [0, 0, 1]) == 1

    def test_hamming_distance_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            m.hamming_distance([1, 0], [1, 0, 1])

    def test_minimum_distance_of_hamming_7_4_is_three(self):
        from repro.coding.hamming import HammingCode

        code = HammingCode(3)
        assert m.minimum_distance_exhaustive(code.generator_matrix) == 3

    def test_minimum_distance_of_repetition_code(self):
        assert m.minimum_distance_exhaustive(np.ones((1, 5), dtype=np.uint8)) == 5

    def test_minimum_distance_refuses_huge_codes(self):
        with pytest.raises(ValueError):
            m.minimum_distance_exhaustive(np.eye(30, dtype=np.uint8), max_messages=1 << 10)
