"""Binary symmetric channel model.

The analytic link design reduces the optical channel to a crossover
probability ``p``; this class provides the matching stochastic channel so
codes can be exercised bit-by-bit in the Monte-Carlo validation and in the
fault-injection experiments.

The packed fast path (:meth:`BinarySymmetricChannel.transmit_batch_packed`)
emits the flip pattern as a packed ``uint64`` error mask XORed onto packed
codeword words.  It consumes the random stream exactly like the unpacked
:meth:`~BinarySymmetricChannel.transmit_batch` (one uniform draw per bit),
so for the same generator state both paths corrupt identically — the
packed/unpacked equivalence tests rely on that.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..coding.matrices import as_gf2
from ..coding.packed import pack_bits, popcount, require_packed_blocks

__all__ = ["BinarySymmetricChannel"]


class BinarySymmetricChannel:
    """Memoryless channel flipping each bit independently with probability p."""

    def __init__(self, crossover_probability: float, *, rng: np.random.Generator | None = None):
        if not 0.0 <= crossover_probability <= 1.0:
            raise ConfigurationError("crossover probability must lie in [0, 1]")
        self._p = float(crossover_probability)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._bits_transmitted = 0
        self._bits_flipped = 0

    @property
    def crossover_probability(self) -> float:
        """Probability that any transmitted bit is inverted."""
        return self._p

    @property
    def bits_transmitted(self) -> int:
        """Total number of bits pushed through the channel so far."""
        return self._bits_transmitted

    @property
    def bits_flipped(self) -> int:
        """Total number of bits the channel has inverted so far."""
        return self._bits_flipped

    @property
    def empirical_ber(self) -> float:
        """Observed flip rate over everything transmitted so far."""
        if self._bits_transmitted == 0:
            return 0.0
        return self._bits_flipped / self._bits_transmitted

    def transmit(self, bits) -> np.ndarray:
        """Return a copy of ``bits`` with independent random flips applied."""
        return self._flip(as_gf2(bits).ravel())

    def transmit_batch(self, blocks) -> np.ndarray:
        """Transmit a ``(B, n)`` block matrix with one uniform-random draw.

        Batch counterpart of :meth:`transmit`; the flip statistics counters
        accumulate over every bit of the batch.
        """
        matrix = as_gf2(blocks)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"transmit_batch expects a (B, n) block matrix, got shape {matrix.shape}"
            )
        return self._flip(matrix)

    def transmit_batch_packed(self, words, *, n: int) -> np.ndarray:
        """Transmit a packed ``(B, ceil(n/64))`` block matrix of ``n``-bit blocks.

        Packed counterpart of :meth:`transmit_batch`: the flip decisions are
        drawn exactly like the unpacked path (same stream) but packed
        straight into a ``uint64`` error mask, so the corrupted codewords
        never leave packed storage.
        """
        matrix = require_packed_blocks(words, n)
        mask = pack_bits(self._rng.random((matrix.shape[0], n)) < self._p)
        self._bits_transmitted += matrix.shape[0] * n
        self._bits_flipped += popcount(mask)
        return matrix ^ mask

    def _flip(self, stream: np.ndarray) -> np.ndarray:
        flips = (self._rng.random(stream.shape) < self._p).astype(np.uint8)
        self._bits_transmitted += int(stream.size)
        self._bits_flipped += int(flips.sum())
        return stream ^ flips

    def reset_statistics(self) -> None:
        """Clear the transmitted/flipped counters."""
        self._bits_transmitted = 0
        self._bits_flipped = 0
