"""Property-based tests (hypothesis) on the coding substrate invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.crc import CyclicRedundancyCheck
from repro.coding.extended_hamming import ExtendedHammingCode
from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.coding.interleaving import BlockInterleaver
from repro.coding.theory import hamming_output_ber, output_ber, raw_ber_for_target_output_ber
from repro.coding.uncoded import UncodedScheme

# Reusable strategies -------------------------------------------------------------
_bits = st.integers(min_value=0, max_value=1)


def _message(k: int):
    return st.lists(_bits, min_size=k, max_size=k).map(lambda bits: np.array(bits, dtype=np.uint8))


class TestHammingProperties:
    @given(message=_message(4))
    def test_encode_decode_identity_h74(self, message):
        code = HammingCode(3)
        result = code.decode_block(code.encode_block(message))
        assert np.array_equal(result.message_bits, message)

    @given(message=_message(4), position=st.integers(min_value=0, max_value=6))
    def test_single_error_always_corrected_h74(self, message, position):
        code = HammingCode(3)
        codeword = code.encode_block(message)
        codeword[position] ^= 1
        result = code.decode_block(codeword)
        assert np.array_equal(result.message_bits, message)

    @given(message=_message(11))
    def test_encode_is_linear_h1511(self, message):
        code = HammingCode(4)
        zero = np.zeros(11, dtype=np.uint8)
        # c(m) + c(0) == c(m) because encoding is linear and c(0) = 0.
        assert np.array_equal(
            code.encode_block(message) ^ code.encode_block(zero), code.encode_block(message)
        )

    @given(a=_message(4), b=_message(4))
    def test_sum_of_codewords_is_a_codeword(self, a, b):
        code = HammingCode(3)
        combined = code.encode_block(a) ^ code.encode_block(b)
        assert code.is_codeword(combined)

    @settings(max_examples=25)
    @given(message=_message(64), position=st.integers(min_value=0, max_value=70))
    def test_single_error_always_corrected_h7164(self, message, position):
        code = ShortenedHammingCode(64)
        codeword = code.encode_block(message)
        codeword[position] ^= 1
        result = code.decode_block(codeword)
        assert np.array_equal(result.message_bits, message)


class TestSecdedProperties:
    @settings(max_examples=30)
    @given(
        message=_message(16),
        first=st.integers(min_value=0, max_value=21),
        second=st.integers(min_value=0, max_value=21),
    )
    def test_double_errors_never_silently_accepted(self, message, first, second):
        code = ExtendedHammingCode(16)
        codeword = code.encode_block(message)
        corrupted = codeword.copy()
        corrupted[first] ^= 1
        corrupted[second] ^= 1
        result = code.decode_block(corrupted)
        if first == second:
            assert np.array_equal(result.message_bits, message)
        else:
            assert result.detected_error


class TestUncodedProperties:
    @given(message=_message(16))
    def test_identity(self, message):
        scheme = UncodedScheme(16)
        assert np.array_equal(scheme.decode_block(message).message_bits, message)


class TestInterleaverProperties:
    @given(
        data=st.data(),
        depth=st.integers(min_value=1, max_value=12),
        width=st.integers(min_value=1, max_value=12),
    )
    def test_round_trip_for_any_geometry(self, data, depth, width):
        interleaver = BlockInterleaver(depth, width)
        bits = data.draw(_message(depth * width))
        assert np.array_equal(interleaver.deinterleave(interleaver.interleave(bits)), bits)


class TestCRCProperties:
    @settings(max_examples=40)
    @given(message=_message(40), position=st.integers(min_value=0, max_value=47))
    def test_any_single_bit_flip_detected(self, message, position):
        crc = CyclicRedundancyCheck.from_name("crc8")
        framed = crc.append(message)
        framed[position] ^= 1
        assert not crc.verify(framed)


class TestTheoryProperties:
    @given(raw=st.floats(min_value=1e-9, max_value=0.05))
    def test_hamming_output_never_exceeds_raw(self, raw):
        assert hamming_output_ber(raw, 7) <= raw

    @given(raw_a=st.floats(min_value=1e-9, max_value=0.05), raw_b=st.floats(min_value=1e-9, max_value=0.05))
    def test_hamming_output_is_monotonic(self, raw_a, raw_b):
        low, high = sorted((raw_a, raw_b))
        assert hamming_output_ber(low, 7) <= hamming_output_ber(high, 7) + 1e-18

    @settings(max_examples=30)
    @given(target=st.floats(min_value=1e-14, max_value=1e-4))
    def test_inversion_round_trip(self, target):
        code = HammingCode(3)
        raw = raw_ber_for_target_output_ber(code, target)
        assert output_ber(code, raw) == pytest.approx(target, rel=1e-4)
