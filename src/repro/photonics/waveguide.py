"""Silicon waveguide propagation model.

The paper uses the low-loss silicon waveguides of Dong et al. (0.274 dB/cm)
over a worst-case 6 cm path.  Bends and crossings are exposed as optional
extra losses so topology studies can account for them, but they default to
zero to match the paper's budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..units import db_loss_to_transmission

__all__ = ["Waveguide"]


@dataclass(frozen=True)
class Waveguide:
    """Straight-waveguide loss model with optional bends and crossings."""

    length_m: float = 0.06
    propagation_loss_db_per_cm: float = 0.274
    bend_loss_db: float = 0.005
    num_bends: int = 0
    crossing_loss_db: float = 0.05
    num_crossings: int = 0

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ConfigurationError("waveguide length cannot be negative")
        if self.propagation_loss_db_per_cm < 0:
            raise ConfigurationError("propagation loss cannot be negative")
        if self.num_bends < 0 or self.num_crossings < 0:
            raise ConfigurationError("bend and crossing counts cannot be negative")
        if self.bend_loss_db < 0 or self.crossing_loss_db < 0:
            raise ConfigurationError("bend and crossing losses cannot be negative")

    @property
    def propagation_loss_db(self) -> float:
        """Propagation loss over the full length, in dB."""
        return self.propagation_loss_db_per_cm * self.length_m * 100.0

    @property
    def total_loss_db(self) -> float:
        """Total loss including bends and crossings, in dB."""
        return (
            self.propagation_loss_db
            + self.num_bends * self.bend_loss_db
            + self.num_crossings * self.crossing_loss_db
        )

    @property
    def transmission(self) -> float:
        """Linear power transmission over the full waveguide."""
        return db_loss_to_transmission(self.total_loss_db)

    def partial_loss_db(self, distance_m: float) -> float:
        """Propagation loss over a partial distance along the waveguide."""
        if distance_m < 0 or distance_m > self.length_m + 1e-12:
            raise ConfigurationError("distance must lie within the waveguide length")
        return self.propagation_loss_db_per_cm * distance_m * 100.0

    def partial_transmission(self, distance_m: float) -> float:
        """Linear transmission over a partial distance along the waveguide."""
        return db_loss_to_transmission(self.partial_loss_db(distance_m))
