"""Differential parity harness: epoch-batched engine vs the reference loop.

The batched engine (:mod:`repro.netsim.epoch`) claims *byte-identical*
results to the reference per-event loop — same records, same metrics, same
interval traces, same event counts — across every feature that rides the
hot path: fault timelines with the degradation ladder, channel drift with
static/adaptive/oracle controllers, ARQ backoff and timeouts, and both
outcome modes.  This suite is the proof: every test runs the identical
workload through both engines (freshly built models on each side, same
seeds everywhere) and asserts equality of everything a
:class:`~repro.netsim.engine.NetworkResult` exposes.

The default grid keeps tier-1 fast; set ``REPRO_PARITY_LONG=1`` to sweep
the full fault x drift x policy x load x seed cross-product.
"""

from __future__ import annotations

import os
from itertools import product

import pytest

from repro.config import DEFAULT_CONFIG
from repro.manager.policies import (
    DeadlineConstrainedPolicy,
    DegradationLadder,
    margin_levels,
)
from repro.manager.runtime import AdaptiveEccController
from repro.netsim import NetworkSimulator, make_drift_model, make_fault_model
from repro.netsim.failures import FAULT_SCENARIOS
from repro.traffic.generators import UniformTrafficGenerator

NUM_ONIS = DEFAULT_CONFIG.num_onis
NW = DEFAULT_CONFIG.num_wavelengths

DRIFT_PROFILES = ("thermal", "aging", "random-walk")
POLICIES = (None, "static", "adaptive", "oracle")

RESULT_FIELDS = (
    "records",
    "busy_s_by_reader",
    "grant_counts_by_reader",
    "num_channels",
    "events_processed",
    "configuration_switches",
    "reconfiguration_energy_j",
    "interval_trace",
    "channel_downtime_s",
    "fault_transitions",
    "recoveries",
    "recovery_time_s",
    "fault_horizon_s",
)


def _requests(count=200, seed=1, payload_bits=None):
    kwargs = {} if payload_bits is None else {"payload_bits": payload_bits}
    generator = UniformTrafficGenerator(
        NUM_ONIS, mean_request_rate_hz=5e8, seed=seed, **kwargs
    )
    return list(generator.generate(count))


def assert_identical(reference, batched) -> None:
    """Every observable of the two results must be equal, byte for byte."""
    for field in RESULT_FIELDS:
        assert getattr(reference, field) == getattr(batched, field), field
    assert reference.metrics().as_dict() == batched.metrics().as_dict()


def run_both(requests, *, scenario=None, drift=None, policy=None, policy_obj=None, **sim_kwargs):
    """Run the workload through both engines with freshly built models.

    Fault models, drift processes and controllers are rebuilt per engine
    from the same seeds, so neither run can leak state into the other.
    ``policy`` selects a controller mode; ``policy_obj`` is a manager
    selection policy passed straight through.
    """
    horizon = max(r.arrival_time_s for r in requests)
    results = {}
    for engine in ("reference", "batched"):
        kwargs = dict(sim_kwargs)
        if policy_obj is not None:
            kwargs["policy"] = policy_obj
        if scenario is not None:
            failures = make_fault_model(scenario, NUM_ONIS, NW, seed=5, horizon_s=horizon)
            if failures is not None:
                kwargs["failures"] = failures
                kwargs["degradation"] = DegradationLadder(
                    margins=margin_levels(4.0), num_wavelengths=NW
                )
        if drift is not None:
            kwargs["dynamics"] = make_drift_model(drift, NUM_ONIS, seed=17)
        if policy is not None:
            kwargs["controller"] = AdaptiveEccController(
                margins=margin_levels(4.0), mode=policy
            )
            kwargs["telemetry_seed"] = 99
        results[engine] = NetworkSimulator(seed=11, engine=engine, **kwargs).run(
            iter(requests)
        )
    assert_identical(results["reference"], results["batched"])
    return results["reference"]


class TestStaticPathParity:
    """The fast path: plain probabilistic runs, retries, rejects, traces."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_plain_run(self, seed):
        run_both(_requests(count=300, seed=seed))

    @pytest.mark.parametrize("payload_bits", [512, 4096, 65536])
    def test_payload_sizes(self, payload_bits):
        run_both(_requests(count=120, seed=4, payload_bits=payload_bits))

    def test_backoff_and_timeout(self):
        requests = _requests(count=200, seed=6)
        horizon = max(r.arrival_time_s for r in requests)
        run_both(
            requests,
            retry_backoff_s=horizon / 100,
            transfer_timeout_s=horizon,
        )

    def test_interval_trace(self):
        requests = _requests(count=200, seed=7)
        horizon = max(r.arrival_time_s for r in requests)
        result = run_both(requests, trace_interval_s=horizon / 16)
        assert result.interval_trace  # the comparison actually saw a trace

    def test_crc_free_single_shot(self):
        run_both(_requests(count=150, seed=8), crc=None, max_retries=0)

    def test_rejected_requests(self):
        """An infeasible policy produces identical rejected records."""
        result = run_both(
            _requests(count=80, seed=9),
            policy_obj=DeadlineConstrainedPolicy(max_communication_time=0.5),
            crc=None,
            max_retries=0,
        )
        assert all(record.rejected for record in result.records)

    def test_bit_exact_mode(self):
        run_both(
            _requests(count=30, seed=10, payload_bits=2048),
            mode="bit-exact",
            crc=None,
            max_retries=0,
        )


class TestFaultScenarioParity:
    """All six fault scenarios, with ladder + backoff + timeout riding along."""

    @pytest.mark.parametrize("scenario", FAULT_SCENARIOS)
    def test_scenario(self, scenario):
        requests = _requests(count=200, seed=1)
        horizon = max(r.arrival_time_s for r in requests)
        run_both(
            requests,
            scenario=scenario,
            retry_backoff_s=horizon / 100,
            transfer_timeout_s=horizon,
        )


class TestDriftAndPolicyParity:
    """Every drift process under every controller policy (and none)."""

    @pytest.mark.parametrize(
        "drift,policy", list(product(DRIFT_PROFILES, POLICIES))
    )
    def test_drift_policy(self, drift, policy):
        run_both(_requests(count=150, seed=2), drift=drift, policy=policy)


class TestLoadParity:
    """Load changes the retry/queueing mix; parity must not care."""

    @pytest.mark.parametrize("count,seed", [(60, 1), (400, 2)])
    def test_loads(self, count, seed):
        run_both(_requests(count=count, seed=seed))


class TestInstrumentedParity:
    """Observability on changes nothing a NetworkResult exposes."""

    @pytest.mark.parametrize("engine", ["reference", "batched"])
    def test_tracing_and_metrics_leave_results_identical(self, engine):
        import io

        from repro.obs import metrics as obs_metrics
        from repro.obs import tracing as obs_tracing

        requests = _requests(count=150, seed=8)
        horizon = max(r.arrival_time_s for r in requests)
        kwargs = dict(retry_backoff_s=horizon / 100, transfer_timeout_s=horizon)
        plain = NetworkSimulator(seed=11, engine=engine, **kwargs).run(iter(requests))
        sink = io.StringIO()
        with obs_metrics.collecting() as registry, obs_tracing.tracing_to(sink):
            instrumented = NetworkSimulator(seed=11, engine=engine, **kwargs).run(
                iter(requests)
            )
            snapshot = registry.snapshot()
        assert_identical(plain, instrumented)
        assert sink.getvalue()  # spans actually flowed
        counters = snapshot["counters"]
        assert counters["netsim.events.total"] == plain.events_processed
        assert counters["netsim.events.total"] == (
            counters["netsim.events.arrival"]
            + counters["netsim.events.departure"]
            + counters["netsim.events.link_fault"]
            + counters["netsim.events.retry"]
        )
        assert counters["netsim.transfers.total"] == len(plain.records)

    def test_both_engines_publish_identical_metrics(self):
        from repro.obs import metrics as obs_metrics

        requests = _requests(count=150, seed=9)
        snapshots = {}
        for engine in ("reference", "batched"):
            with obs_metrics.collecting() as registry:
                NetworkSimulator(seed=11, engine=engine).run(iter(requests))
                snapshots[engine] = registry.snapshot()
        # Cache hit patterns (the reference loop asks the manager per
        # transfer, the batched loop memoizes per epoch) and the epoch-flush
        # counter are engine-internal by design; every *simulation
        # observable* — netsim counters, gauges, histograms — must agree.
        def observable(snapshot):
            return {
                "counters": {
                    name: value
                    for name, value in snapshot["counters"].items()
                    if name.startswith("netsim.") and name != "netsim.epoch.flushes"
                },
                "gauges": snapshot["gauges"],
                "histograms": snapshot["histograms"],
            }

        assert observable(snapshots["reference"]) == observable(snapshots["batched"])


class TestOrchestratedParity:
    """Engine parity survives the sweep orchestrator at any worker count."""

    OPTIONS = {
        "patterns": ["uniform", "hotspot"],
        "loads": [0.25, 0.7],
        "policies": ["min-power"],
        "num_requests": 120,
        "payload_bits": 2048,
        "seed": 5,
        "rings": 2,
    }

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_batched_jobs_match_reference_serial(self, jobs):
        from repro.experiments.orchestrator import run_experiment
        from repro.experiments.report import rows_to_csv

        reference = run_experiment(
            "network", options={**self.OPTIONS, "engine": "reference"}
        )
        batched = run_experiment(
            "network", options={**self.OPTIONS, "engine": "batched"}, jobs=jobs
        )
        assert reference[0] == batched[0]
        assert rows_to_csv(reference[1]) == rows_to_csv(batched[1])


@pytest.mark.skipif(
    not os.environ.get("REPRO_PARITY_LONG"),
    reason="set REPRO_PARITY_LONG=1 for the full parity cross-product",
)
class TestLongGridParity:
    """The full cross-product; minutes, not seconds — opt-in via env var."""

    @pytest.mark.parametrize(
        "scenario,policy,seed",
        list(product(FAULT_SCENARIOS, POLICIES, (1, 5))),
    )
    def test_faults_cross_policies(self, scenario, policy, seed):
        requests = _requests(count=250, seed=seed)
        horizon = max(r.arrival_time_s for r in requests)
        run_both(
            requests,
            scenario=scenario,
            policy=policy,
            retry_backoff_s=horizon / 100,
            transfer_timeout_s=horizon,
            trace_interval_s=horizon / 8,
        )

    @pytest.mark.parametrize(
        "drift,policy,count",
        list(product(DRIFT_PROFILES, POLICIES, (100, 500))),
    )
    def test_drift_cross_policies(self, drift, policy, count):
        run_both(_requests(count=count, seed=3), drift=drift, policy=policy)
