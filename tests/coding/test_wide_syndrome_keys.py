"""Multi-word syndrome keys: codes with > 62 parity bits stay on the batch path.

The packed decoder used to key syndromes into a single ``int64``, silently
dropping any code with more than 62 parity bits onto the per-block scalar
reference (a ~10x cliff).  Wide codes now key through the packed words of the
syndrome itself; these tests pin the batch/packed decoders bit-exactly to the
scalar reference across that boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.base import LinearBlockCode, decode_blocks_scalar
from repro.coding.packed import pack_bits, unpack_bits
from repro.exceptions import DecodingFailure


def _wide_code(k: int, n: int, seed: int) -> LinearBlockCode:
    """A systematic code with a dense pseudo-random parity block.

    ``minimum_distance=3`` engages the single-error syndrome table, which is
    all the base machinery builds; the tests only require scalar/batch
    equivalence, not optimal codes.
    """
    rng = np.random.default_rng(seed)
    while True:
        parity = rng.integers(0, 2, size=(k, n - k), dtype=np.uint8)
        # Distinct, non-zero parity columns per message bit keep the
        # single-error syndromes unique (a well-formed dmin>=3 table).
        rows = {tuple(row) for row in parity}
        if len(rows) == k and all(row.any() for row in parity):
            break
    generator = np.hstack([np.eye(k, dtype=np.uint8), parity])
    return LinearBlockCode(generator, name=f"wide({n},{k})", minimum_distance=3)


WIDE_GEOMETRIES = [(8, 80), (16, 100), (4, 140)]


@pytest.mark.parametrize("k,n", WIDE_GEOMETRIES)
def test_wide_codes_decode_without_scalar_fallback(k, n):
    code = _wide_code(k, n, seed=k * n)
    assert code.num_parity_bits > 62
    rng = np.random.default_rng(7)
    messages = rng.integers(0, 2, size=(96, k), dtype=np.uint8)
    codewords = code.encode_batch(messages)
    # A mix of clean blocks, single-bit errors (correctable) and heavier
    # patterns (beyond-capability failures).
    received = codewords.copy()
    for row in range(32, 64):
        received[row, rng.integers(0, n)] ^= 1
    for row in range(64, 96):
        flips = rng.choice(n, size=3, replace=False)
        received[row, flips] ^= 1

    reference = decode_blocks_scalar(code, received)
    batch = code.decode_batch(received)
    packed = code.decode_batch_packed(pack_bits(received))

    assert np.array_equal(batch.corrected_codewords, reference.corrected_codewords)
    assert np.array_equal(batch.message_bits, reference.message_bits)
    assert np.array_equal(batch.detected_error, reference.detected_error)
    assert np.array_equal(batch.corrected, reference.corrected)
    assert np.array_equal(batch.failure, reference.failure)
    assert np.array_equal(
        unpack_bits(packed.corrected_words, n), reference.corrected_codewords
    )
    assert np.array_equal(packed.failure, reference.failure)


def test_wide_code_single_bit_errors_all_corrected():
    code = _wide_code(8, 80, seed=11)
    message = np.ones(8, dtype=np.uint8)
    codeword = code.encode_block(message)
    received = np.tile(codeword, (code.n, 1))
    received[np.arange(code.n), np.arange(code.n)] ^= 1
    result = code.decode_batch(received)
    assert result.corrected.all()
    assert not result.failure.any()
    assert np.array_equal(result.message_bits, np.tile(message, (code.n, 1)))


def test_wide_code_strict_raises_on_uncorrectable():
    code = _wide_code(8, 80, seed=11)
    codeword = code.encode_block(np.zeros(8, dtype=np.uint8))
    received = codeword[np.newaxis, :].copy()
    received[0, :5] ^= 1  # weight-5 pattern: outside every table entry
    if not code.decode_batch(received).failure[0]:
        pytest.skip("pattern aliased to a table syndrome for this generator")
    with pytest.raises(DecodingFailure):
        code.decode_batch(received, strict=True)


def test_wide_code_all_clean_fast_path():
    code = _wide_code(16, 100, seed=5)
    messages = np.random.default_rng(1).integers(0, 2, size=(10, 16), dtype=np.uint8)
    words = code.encode_batch_packed(pack_bits(messages))
    result = code.decode_batch_packed(words)
    assert not result.detected_error.any()
    assert result.corrected_words is words  # shares the caller's array


def test_syndrome_words_to_key_matches_scalar_key():
    code = _wide_code(8, 80, seed=3)
    rng = np.random.default_rng(2)
    for _ in range(20):
        syndrome = rng.integers(0, 2, size=code.num_parity_bits, dtype=np.uint8)
        packed = pack_bits(syndrome)
        assert code._syndrome_words_to_key(packed) == code._syndrome_key(syndrome)
