"""Command-line runner regenerating every table and figure of the paper.

Usage::

    python -m repro.experiments.runner            # run everything
    python -m repro.experiments.runner figure5    # run one experiment
    repro-experiments table1 figure6a             # via the console script

Each experiment prints a text report; ``--csv DIR`` additionally writes the
raw series as CSV files for external plotting.
"""

from __future__ import annotations

import argparse
import os
from typing import Callable, Dict

from ..config import DEFAULT_CONFIG
from .calibration import run_calibration
from .figure3 import run_figure3
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure6 import run_figure6a, run_figure6b
from .headline import run_headline
from .report import rows_to_csv, section
from .table1 import run_table1
from .validation import run_validation

__all__ = ["main", "EXPERIMENTS"]


def _run_table1() -> tuple[str, list[dict]]:
    result = run_table1(DEFAULT_CONFIG)
    return result.render_text(), result.report.to_rows()


def _run_figure3() -> tuple[str, list[dict]]:
    result = run_figure3(DEFAULT_CONFIG)
    rows = [
        {
            "wavelength_nm": wl * 1e9,
            "on_db": on,
            "off_db": off,
        }
        for wl, on, off in zip(
            result.wavelengths_m, result.on_transmission_db, result.off_transmission_db
        )
    ]
    return result.render_text(), rows


def _run_figure4() -> tuple[str, list[dict]]:
    result = run_figure4(DEFAULT_CONFIG)
    rows = [
        {"op_laser_uw": op, "p_laser_mw": p}
        for op, p in zip(result.optical_power_uw, result.laser_power_mw)
    ]
    return result.render_text(), rows


def _run_figure5() -> tuple[str, list[dict]]:
    result = run_figure5(DEFAULT_CONFIG)
    rows = []
    for name, points in result.series.items():
        for point in points:
            rows.append(
                {
                    "code": name,
                    "target_ber": point.target_ber,
                    "op_laser_uw": point.laser_output_power_uw,
                    "p_laser_mw": point.laser_power_mw,
                    "feasible": point.feasible,
                }
            )
    return result.render_text(), rows


def _run_figure6a() -> tuple[str, list[dict]]:
    result = run_figure6a(DEFAULT_CONFIG)
    rows = [breakdown.as_dict() for breakdown in result.breakdowns.values()]
    return result.render_text(), rows


def _run_figure6b() -> tuple[str, list[dict]]:
    result = run_figure6b(DEFAULT_CONFIG)
    rows = [
        {
            "code": p.code_name,
            "target_ber": p.target_ber,
            "communication_time": p.communication_time,
            "channel_power_mw": p.channel_power_w * 1e3,
        }
        for p in result.points
    ]
    return result.render_text(), rows


def _run_headline() -> tuple[str, list[dict]]:
    result = run_headline(DEFAULT_CONFIG)
    rows = [
        {"quantity": c.quantity, "measured": c.measured, "paper": c.reference, "unit": c.unit}
        for c in result.comparisons
    ]
    return result.render_text(), rows


def _run_calibration() -> tuple[str, list[dict]]:
    result = run_calibration(DEFAULT_CONFIG)
    rows = [
        {"component": name, "loss_db": value}
        for name, value in result.loss_breakdown_db.items()
    ]
    return result.render_text(), rows


def _run_validation() -> tuple[str, list[dict]]:
    result = run_validation(DEFAULT_CONFIG)
    return result.render_text(), result.to_rows()


EXPERIMENTS: Dict[str, Callable[[], tuple[str, list[dict]]]] = {
    "table1": _run_table1,
    "validation": _run_validation,
    "figure3": _run_figure3,
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "figure6a": _run_figure6a,
    "figure6b": _run_figure6b,
    "headline": _run_headline,
    "calibration": _run_calibration,
}
"""Mapping from experiment name to its runner (text, csv rows)."""


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-experiments``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all); available: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="directory in which to write one CSV file per experiment",
    )
    args = parser.parse_args(argv)

    names = args.experiments if args.experiments else sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    for name in names:
        text, rows = EXPERIMENTS[name]()
        print(section(f"Experiment {name}", text))
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{name}.csv")
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(rows_to_csv(rows))
            print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
