"""Discrete-time runtime simulation of managed optical transfers.

The paper argues the ECC/laser configuration should be chosen at run time by
an Operating-System-level manager according to each application's
requirements.  This module provides a small simulation loop where a workload
(a sequence of transfer requests with payload sizes, BER targets and
optional deadlines) is served by the :class:`OpticalLinkManager`; it records
per-transfer latency and energy so policies can be compared end to end —
this is the machinery behind the multimedia/real-time example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError, InfeasibleDesignError
from .manager import CommunicationRequest, LinkConfiguration, OpticalLinkManager
from .policies import FailureRateMonitor, HysteresisSwitchingPolicy

__all__ = ["TransferOutcome", "RuntimeSimulation", "AdaptiveEccController"]

#: Operating modes of the adaptive controller.
CONTROLLER_MODES = ("static", "adaptive", "oracle")


class AdaptiveEccController:
    """Online per-channel ECC/laser margin control for the network engine.

    The controller owns one margin level per channel on a shared ladder
    (:func:`~repro.manager.policies.margin_levels`) and answers two questions
    for the discrete-event engine:

    * **At arrival** — :meth:`margin_for`: which drift margin should the
      manager provision this transfer's configuration for?
    * **At departure** — :meth:`observe`: given the attempt's failure
      telemetry, should the channel switch levels?

    Three modes implement the experiment's three policies:

    ``"static"``
        Always the top of the ladder — the paper's static worst-case design.
        Never switches, never consumes telemetry.
    ``"adaptive"``
        A :class:`~repro.manager.policies.FailureRateMonitor` per channel
        feeds a :class:`~repro.manager.policies.HysteresisSwitchingPolicy`;
        level changes charge the reconfiguration latency (the channel is
        blocked while lasers re-lock and both interfaces switch coder mode)
        and energy.
    ``"oracle"``
        Clairvoyant lower bound: tracks the true drift multiplier handed in
        by the engine and always sits on the smallest sufficient level
        (switch penalties still apply).

    The controller is engine-agnostic state; the engine charges the declared
    penalties inside its event loop.
    """

    def __init__(
        self,
        *,
        margins: Sequence[float],
        mode: str = "adaptive",
        monitor: FailureRateMonitor | None = None,
        switching_policy: HysteresisSwitchingPolicy | None = None,
        switch_latency_s: float = 200e-9,
        switch_energy_j: float = 1e-9,
        initial_level: int = 0,
    ):
        if mode not in CONTROLLER_MODES:
            raise ConfigurationError(
                f"unknown controller mode {mode!r}; available: {CONTROLLER_MODES}"
            )
        margins = [float(margin) for margin in margins]
        if not margins or any(m < 1.0 for m in margins):
            raise ConfigurationError("the margin ladder needs levels >= 1")
        if sorted(margins) != margins or len(set(margins)) != len(margins):
            raise ConfigurationError("margin levels must be strictly increasing")
        if switch_latency_s < 0.0 or switch_energy_j < 0.0:
            raise ConfigurationError("switch penalties cannot be negative")
        if not 0 <= initial_level < len(margins):
            raise ConfigurationError("initial level outside the margin ladder")
        self.margins = margins
        self.mode = mode
        self.switch_latency_s = float(switch_latency_s)
        self.switch_energy_j = float(switch_energy_j)
        self._monitor_template = monitor if monitor is not None else FailureRateMonitor()
        self._switching_policy = (
            switching_policy if switching_policy is not None else HysteresisSwitchingPolicy()
        )
        self._initial_level = len(margins) - 1 if mode == "static" else int(initial_level)
        self._levels: Dict[int, int] = {}
        self._blocked_until: Dict[int, float] = {}
        self._calm: Dict[int, int] = {}
        self._monitors: Dict[int, FailureRateMonitor] = {}
        self.switch_count = 0
        self.reconfiguration_energy_j = 0.0

    # ------------------------------------------------------------------ state
    @property
    def wants_observations(self) -> bool:
        """Whether the engine should sample and feed failure telemetry."""
        return self.mode == "adaptive"

    def reset(self) -> None:
        """Forget all per-channel state (start of a new simulation run)."""
        self._levels.clear()
        self._blocked_until.clear()
        self._calm.clear()
        self._monitors.clear()
        self.switch_count = 0
        self.reconfiguration_energy_j = 0.0

    def clone(self) -> "AdaptiveEccController":
        """A fresh controller with this one's configuration and no state.

        Sharded sweeps run one simulator per worker; a shared controller
        would leak per-channel monitors across shards, so each worker
        clones the configured template instead.
        """
        return AdaptiveEccController(
            margins=self.margins,
            mode=self.mode,
            monitor=self._monitor_template,
            switching_policy=self._switching_policy,
            switch_latency_s=self.switch_latency_s,
            switch_energy_j=self.switch_energy_j,
            initial_level=self._initial_level,
        )

    def level(self, channel: int) -> int:
        """Current ladder level of one channel."""
        return self._levels.get(channel, self._initial_level)

    def blocked_until(self, channel: int) -> float:
        """Simulation time until which the channel is reconfiguring."""
        return self._blocked_until.get(channel, 0.0)

    def _monitor_for(self, channel: int) -> FailureRateMonitor:
        if channel not in self._monitors:
            self._monitors[channel] = FailureRateMonitor(
                window_blocks=self._monitor_template.window_blocks
            )
        return self._monitors[channel]

    def _switch(self, channel: int, new_level: int, now_s: float) -> None:
        self._levels[channel] = new_level
        self._blocked_until[channel] = now_s + self.switch_latency_s
        self._calm[channel] = 0
        self.switch_count += 1
        self.reconfiguration_energy_j += self.switch_energy_j

    # ------------------------------------------------------------------ engine API
    def margin_for(
        self, channel: int, now_s: float, *, true_multiplier: float | None = None
    ) -> tuple[float, bool]:
        """Margin to provision a new transfer on ``channel`` with.

        Returns ``(margin, switched)``; the oracle mode may switch here (it
        retargets the smallest level covering the true multiplier), the
        other modes only switch from :meth:`observe`.
        """
        level = self.level(channel)
        if self.mode == "oracle" and true_multiplier is not None:
            target = next(
                (
                    index
                    for index, margin in enumerate(self.margins)
                    if margin >= true_multiplier
                ),
                len(self.margins) - 1,
            )
            if target != level:
                self._switch(channel, target, now_s)
                return self.margins[target], True
        return self.margins[level], False

    def force_margin(self, channel: int, multiplier: float, now_s: float) -> bool:
        """Escalate ``channel`` to at least the level covering ``multiplier``.

        Fault-driven escalation: when a hard-fault process announces a known
        raw-BER penalty (e.g. a laser-droop step), the channel jumps
        straight to the smallest sufficient level instead of waiting for the
        failure monitor to notice.  Never downgrades — recovery is the
        monitor's job — and charges the usual switch penalties.  Returns
        ``True`` when a switch happened.
        """
        if multiplier < 1.0:
            raise ConfigurationError("a forced margin multiplier must be at least 1")
        level = self.level(channel)
        target = next(
            (index for index, margin in enumerate(self.margins) if margin >= multiplier),
            len(self.margins) - 1,
        )
        if target <= level:
            return False
        self._switch(channel, target, now_s)
        return True

    def observe(
        self,
        channel: int,
        now_s: float,
        *,
        blocks: int,
        observed_events: float,
        expected_events: float,
    ) -> bool:
        """Feed one attempt's failure telemetry; returns True on a switch."""
        if self.mode != "adaptive":
            return False
        estimate = self._monitor_for(channel).observe(
            blocks, observed_events, expected_events
        )
        if estimate is None:
            return False
        level = self.level(channel)
        delta = self._switching_policy.decide(
            estimate, self.margins, level, self._calm.get(channel, 0)
        )
        if delta > 0:
            self._switch(channel, level + 1, now_s)
            return True
        if delta < 0:
            self._switch(channel, level - 1, now_s)
            return True
        # Track consecutive calm windows for the hysteresis downgrade (the
        # qualification predicate lives on the policy, not here).
        if self._switching_policy.qualifies_for_downgrade(estimate, self.margins, level):
            self._calm[channel] = self._calm.get(channel, 0) + 1
        else:
            self._calm[channel] = 0
        return False


@dataclass(frozen=True)
class TransferOutcome:
    """Latency/energy results of one managed transfer."""

    request: CommunicationRequest
    configuration: LinkConfiguration | None
    start_time_s: float
    duration_s: float
    energy_j: float
    deadline_s: float | None
    rejected: bool = False

    @property
    def completion_time_s(self) -> float:
        """Absolute completion time of the transfer."""
        return self.start_time_s + self.duration_s

    @property
    def met_deadline(self) -> bool:
        """True when the transfer finished within its deadline (if any)."""
        if self.rejected:
            return False
        if self.deadline_s is None:
            return True
        return self.duration_s <= self.deadline_s


@dataclass
class RuntimeSimulation:
    """Serve a sequence of transfer requests through the link manager."""

    manager: OpticalLinkManager
    config: PaperConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    def transfer_duration_s(self, configuration: LinkConfiguration, payload_bits: int) -> float:
        """Channel-busy time of a payload under a configuration.

        The payload is stretched by the coding overhead and streamed over
        the channel's wavelengths at the modulation rate.
        """
        coded_bits = payload_bits * configuration.communication_time
        channel_rate = self.config.num_wavelengths * self.config.modulation_rate_hz
        return coded_bits / channel_rate

    def transfer_energy_j(self, configuration: LinkConfiguration, duration_s: float) -> float:
        """Energy drawn by the whole waveguide during a transfer."""
        channel_power = configuration.channel_power_w * self.config.num_wavelengths
        return channel_power * duration_s

    def run(
        self,
        requests: Iterable[tuple[CommunicationRequest, float | None]],
    ) -> List[TransferOutcome]:
        """Serve requests back-to-back on a single shared channel.

        ``requests`` yields ``(request, deadline_s)`` pairs; a ``None``
        deadline means best effort.  Requests the manager cannot satisfy are
        recorded as rejected with zero duration and energy.
        """
        outcomes: List[TransferOutcome] = []
        clock_s = 0.0
        for request, deadline_s in requests:
            try:
                configuration = self.manager.configure(request)
            except InfeasibleDesignError:
                outcomes.append(
                    TransferOutcome(
                        request=request,
                        configuration=None,
                        start_time_s=clock_s,
                        duration_s=0.0,
                        energy_j=0.0,
                        deadline_s=deadline_s,
                        rejected=True,
                    )
                )
                continue
            duration = self.transfer_duration_s(configuration, request.payload_bits)
            energy = self.transfer_energy_j(configuration, duration)
            outcomes.append(
                TransferOutcome(
                    request=request,
                    configuration=configuration,
                    start_time_s=clock_s,
                    duration_s=duration,
                    energy_j=energy,
                    deadline_s=deadline_s,
                )
            )
            clock_s += duration
            self.manager.release(request.source, request.destination)
        return outcomes

    @staticmethod
    def total_energy_j(outcomes: Iterable[TransferOutcome]) -> float:
        """Total energy over a set of outcomes."""
        return sum(o.energy_j for o in outcomes)

    @staticmethod
    def deadline_miss_rate(outcomes: Iterable[TransferOutcome]) -> float:
        """Fraction of transfers that missed their deadline or were rejected."""
        outcome_list = list(outcomes)
        if not outcome_list:
            return 0.0
        missed = sum(1 for o in outcome_list if not o.met_deadline)
        return missed / len(outcome_list)
