"""The long-running simulation service daemon (``repro-serve``).

:class:`SimulationService` composes the durable queue, the results store,
the supervised worker and the route table into one object with a
``start()``/``stop()`` lifecycle, served over the stdlib
``ThreadingHTTPServer`` (no new runtime dependencies).  The data directory
layout::

    <data_dir>/queue/      one checksummed JSON record per job
    <data_dir>/results/    content-addressed result documents
    <data_dir>/jobs/<id>/  per-job checkpoints + sweep/job manifests
    <data_dir>/design-cache.jsonl   persistent link-design points

Shutdown is a *drain*, in order: stop admitting work (the shedder reports
``health-only``, ``/readyz`` flips to 503), SIGTERM the running worker so
it finalizes its checkpoint and re-queues its job, persist everything,
then stop the HTTP loop.  ``repro-serve`` wires SIGTERM/SIGINT to that
drain, so an orchestrated restart (systemd, Kubernetes, ctrl-C) never
loses completed work — the next start recovers the queue and resumes.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..link.design import OpticalLinkDesigner
from ..obs import metrics as obs_metrics
from ..obs.logutil import setup_logging
from .queue import DurableJobQueue
from .routes import LoadShedder, ServiceContext, dispatch
from .store import PersistentDesignCache, ResultsStore
from .supervisor import Supervisor

__all__ = ["ServiceConfig", "SimulationService", "main"]

logger = logging.getLogger("repro.service.server")

#: Largest request body the server will read (a submission is tiny; this
#: bounds what a misbehaving client can make a handler thread buffer).
MAX_BODY_BYTES = 1 << 20


class ServiceConfig:
    """Tunables of one service instance (a plain bag, CLI-mappable 1:1)."""

    def __init__(
        self,
        *,
        max_queue_depth: int = 64,
        job_timeout_s: float = 600.0,
        max_attempts: int = 3,
        max_deterministic_failures: int = 2,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        max_inflight: int = 64,
        shed_depth_fraction: float = 0.75,
    ):
        self.max_queue_depth = int(max_queue_depth)
        self.job_timeout_s = float(job_timeout_s)
        self.max_attempts = int(max_attempts)
        self.max_deterministic_failures = int(max_deterministic_failures)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.max_inflight = int(max_inflight)
        self.shed_depth_fraction = float(shed_depth_fraction)


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON shim over :func:`repro.service.routes.dispatch`."""

    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY: headers and body go out as separate writes, and Nagle
    #: holding the second behind a delayed ACK caps keep-alive clients at
    #: ~25 req/s.  The responses are small; there is nothing to coalesce.
    disable_nagle_algorithm = True
    #: Injected per server instance by :class:`SimulationService`.
    context: ServiceContext = None  # type: ignore[assignment]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _respond(self, status: int, payload, headers: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to recover

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        if length > MAX_BODY_BYTES:
            return ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            return error

    def _handle(self, method: str) -> None:
        context = self.context
        shedder = context.shedder
        shedder.enter()
        try:
            parts = urlsplit(self.path)
            body = self._read_body() if method == "POST" else None
            if isinstance(body, Exception):
                self._respond(400, {"error": f"bad request body: {body}"}, {})
                return
            query = dict(parse_qsl(parts.query))
            try:
                status, payload, headers = dispatch(
                    context, method, parts.path, query, body
                )
            except Exception as error:  # noqa: BLE001 - must answer the socket
                logger.exception("unhandled error on %s %s", method, parts.path)
                status, payload, headers = (
                    500,
                    {"error": f"internal error: {type(error).__name__}"},
                    {},
                )
            self._respond(status, payload, headers)
        finally:
            shedder.exit()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")


class SimulationService:
    """The composed daemon: queue + store + supervisor + HTTP API."""

    def __init__(
        self,
        *,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        config: PaperConfig = DEFAULT_CONFIG,
        service_config: ServiceConfig | None = None,
        supervise: bool = True,
    ):
        self.data_dir = data_dir
        self.paper_config = config
        self.service_config = service_config or ServiceConfig()
        os.makedirs(data_dir, exist_ok=True)
        self.registry = obs_metrics.MetricsRegistry()
        self.store = ResultsStore(os.path.join(data_dir, "results"))
        self.queue = DurableJobQueue(
            os.path.join(data_dir, "queue"),
            max_depth=self.service_config.max_queue_depth,
        )
        self.design_cache = PersistentDesignCache(
            os.path.join(data_dir, "design-cache.jsonl")
        )
        self.designer = OpticalLinkDesigner(
            config=config, persistent_cache=self.design_cache
        )
        self.supervisor = (
            Supervisor(
                self.queue,
                self.store,
                work_dir=os.path.join(data_dir, "jobs"),
                config=config,
                job_timeout_s=self.service_config.job_timeout_s,
                max_attempts=self.service_config.max_attempts,
                max_deterministic_failures=self.service_config.max_deterministic_failures,
                backoff_base_s=self.service_config.backoff_base_s,
                backoff_cap_s=self.service_config.backoff_cap_s,
                registry=self.registry,
            )
            if supervise
            else None
        )
        self.shedder = LoadShedder(
            self.queue,
            max_inflight=self.service_config.max_inflight,
            shed_depth_fraction=self.service_config.shed_depth_fraction,
            registry=self.registry,
        )
        self.context = ServiceContext(
            queue=self.queue,
            store=self.store,
            supervisor=self.supervisor,
            designer=self.designer,
            config=config,
            registry=self.registry,
            shedder=self.shedder,
        )
        handler = type("BoundHandler", (_Handler,), {"context": self.context})
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as error:
            raise ConfigurationError(f"cannot bind {host}:{port}: {error}") from error
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._stopped = False

    # ------------------------------------------------------------------ facts
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "SimulationService":
        """Start the supervisor and the HTTP loop on background threads."""
        if self.supervisor is not None and not self.supervisor.is_alive():
            self.supervisor.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("simulation service listening on %s (data in %s)", self.url, self.data_dir)
        return self

    def stop(self, *, drain_timeout_s: float = 30.0) -> None:
        """Drain and stop (idempotent): shed, stop the worker, stop HTTP."""
        if self._stopped:
            return
        self._stopped = True
        logger.info("draining simulation service on %s", self.url)
        self.shedder.draining = True
        if self.supervisor is not None and self.supervisor.is_alive():
            self.supervisor.stop(drain_timeout_s=drain_timeout_s)
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout_s)
        self._server.server_close()
        logger.info("simulation service stopped")

    def serve_forever(self) -> None:
        """Run in the foreground until SIGTERM/SIGINT, then drain (CLI path)."""
        stop_requested = threading.Event()

        def _signal_drain(signum, frame) -> None:
            logger.info("received signal %d; draining", signum)
            stop_requested.set()

        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, _signal_drain),
            signal.SIGINT: signal.signal(signal.SIGINT, _signal_drain),
        }
        try:
            self.start()
            stop_requested.wait()
        finally:
            self.stop()
            for signum, handler in previous.items():
                signal.signal(signum, handler)


def main(argv: "list[str] | None" = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve link-design queries and simulation sweep jobs "
        "over HTTP, with a durable job queue and supervised workers.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (default: 8642; 0 = ephemeral)"
    )
    parser.add_argument(
        "--data-dir",
        default=".repro-service",
        metavar="DIR",
        help="durable state: queue, results store, per-job checkpoints "
        "(default: .repro-service)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="jobs admitted before submissions get 429 (default: 64)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="wall-clock budget per job attempt (default: 600)",
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per job before it is marked dead (default: 3)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="operational log verbosity on stderr (default: info)",
    )
    args = parser.parse_args(argv)
    if args.max_queue_depth < 1:
        parser.error("--max-queue-depth must be at least 1")
    if args.job_timeout <= 0:
        parser.error("--job-timeout must be positive")
    if args.job_retries < 1:
        parser.error("--job-retries must be at least 1")
    setup_logging(args.log_level)
    service = SimulationService(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        service_config=ServiceConfig(
            max_queue_depth=args.max_queue_depth,
            job_timeout_s=args.job_timeout,
            max_attempts=args.job_retries,
        ),
    )
    print(f"repro-serve listening on {service.url} (data in {args.data_dir})", file=sys.stderr)
    service.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
