"""Linear algebra over GF(2) with numpy uint8 matrices.

The code constructions in this package (Hamming, BCH, parity, SECDED) all
reduce to manipulating binary generator and parity-check matrices.  This
module gathers the GF(2) primitives they need: matrix products, row-reduced
echelon form, rank, null spaces, systematic forms and weight enumeration.

All matrices are ``numpy.ndarray`` objects with dtype ``uint8`` holding only
the values 0 and 1.  Functions always return new arrays and never modify
their arguments.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "as_gf2",
    "gf2_matmul",
    "gf2_rref",
    "gf2_rank",
    "gf2_null_space",
    "gf2_systematic_generator_from_parity_check",
    "gf2_parity_check_from_systematic_generator",
    "hamming_weight",
    "hamming_distance",
    "minimum_distance_exhaustive",
]


def as_gf2(matrix) -> np.ndarray:
    """Coerce an array-like of 0/1 values into a GF(2) uint8 array.

    Values are reduced modulo 2 so integer matrices can be passed directly.
    """
    arr = np.asarray(matrix)
    if arr.dtype == np.uint8 and arr.ndim and arr.size and arr.max(initial=0) <= 1:
        return arr.copy()
    return np.mod(arr.astype(np.int64), 2).astype(np.uint8)


def gf2_matmul(a, b) -> np.ndarray:
    """Matrix product over GF(2)."""
    a2 = as_gf2(a)
    b2 = as_gf2(b)
    return np.mod(a2.astype(np.int64) @ b2.astype(np.int64), 2).astype(np.uint8)


def gf2_rref(matrix) -> Tuple[np.ndarray, list[int]]:
    """Row-reduced echelon form over GF(2).

    Returns the reduced matrix together with the list of pivot column
    indices.  The input is not modified.
    """
    m = as_gf2(matrix).copy()
    rows, cols = m.shape
    pivot_columns: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot_rows = np.nonzero(m[row:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = pivot_rows[0] + row
        if pivot != row:
            m[[row, pivot]] = m[[pivot, row]]
        # Eliminate the pivot column from every other row.
        others = np.nonzero(m[:, col])[0]
        for other in others:
            if other != row:
                m[other] ^= m[row]
        pivot_columns.append(col)
        row += 1
    return m, pivot_columns


def gf2_rank(matrix) -> int:
    """Rank of a binary matrix over GF(2)."""
    _, pivots = gf2_rref(matrix)
    return len(pivots)


def gf2_null_space(matrix) -> np.ndarray:
    """Basis of the right null space of a GF(2) matrix.

    Returns an array of shape ``(nullity, cols)`` whose rows span
    ``{x : matrix @ x = 0}``.  The rows are linearly independent.
    """
    m = as_gf2(matrix)
    rows, cols = m.shape
    rref, pivots = gf2_rref(m)
    free_columns = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_columns), cols), dtype=np.uint8)
    for i, free in enumerate(free_columns):
        basis[i, free] = 1
        for row_index, pivot_col in enumerate(pivots):
            if rref[row_index, free]:
                basis[i, pivot_col] = 1
    return basis


def gf2_systematic_generator_from_parity_check(parity_check) -> np.ndarray:
    """Build a systematic generator matrix ``[I_k | P]`` from a parity check.

    The parity-check matrix is first permuted (conceptually) into the form
    ``[A | I_{n-k}]`` via column operations implied by row reduction; the
    function assumes the parity-check matrix has full row rank and that its
    last ``n - k`` columns can serve as the identity part after reduction,
    which holds for the systematic constructions used in this package.  For
    arbitrary parity-check matrices use :func:`gf2_null_space` instead, which
    this function falls back to.
    """
    h = as_gf2(parity_check)
    n_minus_k, n = h.shape
    k = n - n_minus_k
    null_basis = gf2_null_space(h)
    if null_basis.shape[0] != k:
        raise ValueError(
            "parity-check matrix does not have full row rank: "
            f"expected nullity {k}, got {null_basis.shape[0]}"
        )
    # Reduce the null-space basis so the first k columns form an identity,
    # which yields a systematic generator when possible.
    rref, pivots = gf2_rref(null_basis)
    return rref


def gf2_parity_check_from_systematic_generator(generator) -> np.ndarray:
    """Build the parity-check matrix ``[P^T | I_{n-k}]`` of a systematic code.

    The generator must be in systematic form ``[I_k | P]``.
    """
    g = as_gf2(generator)
    k, n = g.shape
    identity = np.eye(k, dtype=np.uint8)
    if not np.array_equal(g[:, :k], identity):
        raise ValueError("generator matrix is not in systematic form [I_k | P]")
    p = g[:, k:]
    return np.concatenate([p.T, np.eye(n - k, dtype=np.uint8)], axis=1)


def hamming_weight(vector) -> int:
    """Number of ones in a binary vector."""
    return int(np.count_nonzero(as_gf2(vector)))


def hamming_distance(a, b) -> int:
    """Number of positions in which two equal-length binary vectors differ."""
    va = as_gf2(a)
    vb = as_gf2(b)
    if va.shape != vb.shape:
        raise ValueError("vectors must have identical shapes")
    return int(np.count_nonzero(va ^ vb))


def minimum_distance_exhaustive(generator, *, max_messages: int = 1 << 16) -> int:
    """Exact minimum distance of a linear code by codeword enumeration.

    Because the code is linear the minimum distance equals the minimum
    non-zero codeword weight.  Enumeration is exponential in ``k`` so the
    function refuses to enumerate more than ``max_messages`` codewords; it is
    intended for the small codes used in unit tests (k <= 16).
    """
    g = as_gf2(generator)
    k, _ = g.shape
    total = 1 << k
    if total > max_messages:
        raise ValueError(
            f"exhaustive enumeration of 2^{k} codewords exceeds the limit of {max_messages}"
        )
    best = None
    for value in range(1, total):
        message = np.array([(value >> bit) & 1 for bit in range(k)], dtype=np.uint8)
        weight = hamming_weight(gf2_matmul(message[np.newaxis, :], g)[0])
        if best is None or weight < best:
            best = weight
            if best == 1:
                break
    return int(best if best is not None else 0)
