"""Discrete-event simulation of the full MWSR ring under managed traffic.

This is the subsystem that joins the layers the repository previously only
evaluated in isolation: traffic generators produce requests, each request is
configured by the :class:`~repro.manager.manager.OpticalLinkManager` (policy
picks the ECC scheme and laser power for the requested BER), the coded
payload contends for its destination's channel through a per-channel
:class:`~repro.interconnect.arbitration.TokenArbiter`, faults corrupt the
packets at the operating point's raw BER, and CRC-detected failures are
retransmitted (ARQ) until delivered or out of retries.

Event lifecycle of one transfer::

    ARRIVAL(t)                 request reaches its source ONI
      └─ manager.configure()   policy selects code + laser power
      └─ arbiter.request()     token + channel reservation on the reader's
                               channel (FIFO in event order)
      └─ sample packet outcomes (probabilistic or bit-exact)
      └─ schedule DEPARTURE at start + serialization time
    DEPARTURE(t')              attempt finishes serialising
      └─ commit the attempt's sampled outcome
      ├─ CRC-detected failures left and retries remain
      │    └─ arbiter.request() again → schedule next DEPARTURE (ARQ)
      └─ otherwise finalise the record, release the manager entry

Determinism: the event queue is totally ordered by ``(time, insertion
sequence)`` and every random draw — traffic aside — flows through two
``SeedSequence``-resolved generators in deterministic event order, so a
run is a pure function of its seed.  The *primary* stream pays each
attempt's fixed-size per-block uniforms at the moment the attempt is
scheduled; the *resolution* stream (spawned from the primary seed) pays
the data-dependent draws of the rare failing attempts.  Splitting the
streams this way is what lets the epoch-batched engine concatenate many
attempts' primary draws into one vectorized call while staying
byte-identical to this reference engine (see :mod:`repro.netsim.epoch`).
There is no wall-clock anywhere.

Two engines execute that identical event semantics:

* ``engine="batched"`` (the default) — the epoch-batched core of
  :mod:`repro.netsim.epoch`: a merge-ordered event core and flush-on-demand
  vectorized outcome sampling.  ~10x the events/s of the reference loop.
* ``engine="reference"`` — the legacy per-event heap loop below, kept as
  the differential-testing baseline (``tests/netsim/test_engine_parity.py``
  pins the two byte-identical across the full scenario grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple

import numpy as np

from ..coding.montecarlo import resolve_rng
from ..coding.crc import CyclicRedundancyCheck
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError, InfeasibleDesignError, SimulationError
from ..interconnect.arbitration import TokenArbiter
from ..interconnect.mwsr import MWSRChannel
from ..link.design import OpticalLinkDesigner
from ..manager.manager import CommunicationRequest, LinkConfiguration, OpticalLinkManager
from ..manager.policies import DegradationLadder, SelectionPolicy
from ..manager.runtime import AdaptiveEccController
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..simulation.faults import IndependentErrorModel
from ..traffic.generators import TrafficRequest
from .dynamics import ChannelDriftModel
from .events import EventKind, EventQueue
from .failures import HardFaultModel
from .metrics import (
    EMPTY_TRACE_BUCKET,
    IntervalTrace,
    NetworkMetrics,
    build_interval_trace,
    compute_metrics,
)
from .outcomes import (
    BitExactOutcomeSampler,
    ProbabilisticOutcomeSampler,
    TransmissionOutcome,
    packets_for_payload,
)

__all__ = ["NetTransferRecord", "NetworkResult", "NetworkSimulator"]

#: Supported packet-outcome modes.
MODES = ("probabilistic", "bit-exact")

#: Supported event-core engines (the first is the default).
ENGINES = ("batched", "reference")


class NetTransferRecord(NamedTuple):
    """End-to-end outcome of one traffic request.

    A ``NamedTuple`` rather than a frozen dataclass: the engines construct
    one per transfer on their hottest path, and tuple construction is ~6x
    cheaper than a frozen dataclass ``__init__`` (which routes every field
    through ``object.__setattr__``).
    """

    source: int
    destination: int
    payload_bits: int
    code_name: str | None
    arrival_time_s: float
    first_start_time_s: float
    completion_time_s: float
    attempts: int
    packets_total: int
    packets_sent: int
    packets_delivered: int
    packets_dropped: int
    packets_with_residual_errors: int
    residual_bit_errors: int
    coded_bits_sent: int
    energy_j: float
    rejected: bool = False

    @property
    def latency_s(self) -> float:
        """Arrival-to-delivery latency (queueing + token + serialisation + ARQ)."""
        return self.completion_time_s - self.arrival_time_s

    @property
    def delivered_payload_bits(self) -> int:
        """Payload bits delivered (padding of the last packet excluded)."""
        if self.packets_total == 0:
            return 0
        return round(self.payload_bits * self.packets_delivered / self.packets_total)


@dataclass(slots=True)
class NetworkResult:
    """Everything a run produced: per-transfer records plus channel state."""

    records: List[NetTransferRecord]
    busy_s_by_reader: Dict[int, float]
    grant_counts_by_reader: Dict[int, Dict[int, int]]
    num_channels: int
    warmup_fraction: float
    events_processed: int
    #: Online-control accounting (zero / ``None`` without a controller).
    configuration_switches: int = 0
    reconfiguration_energy_j: float = 0.0
    interval_trace: List[IntervalTrace] | None = None
    #: Hard-fault accounting (all zero without a fault model): channel-seconds
    #: spent hard-down, health transitions processed, completed down->up
    #: recoveries with their total duration, and the observed simulation span
    #: the downtime is measured against.
    channel_downtime_s: float = 0.0
    fault_transitions: int = 0
    recoveries: int = 0
    recovery_time_s: float = 0.0
    fault_horizon_s: float = 0.0

    def metrics(self, warmup_fraction: float | None = None) -> NetworkMetrics:
        """Aggregate the records (optionally overriding the warm-up trim)."""
        return compute_metrics(
            self.records,
            busy_s_by_reader=self.busy_s_by_reader,
            num_channels=self.num_channels,
            warmup_fraction=(
                self.warmup_fraction if warmup_fraction is None else warmup_fraction
            ),
            configuration_switches=self.configuration_switches,
            reconfiguration_energy_j=self.reconfiguration_energy_j,
            channel_downtime_s=self.channel_downtime_s,
            fault_transitions=self.fault_transitions,
            recoveries=self.recoveries,
            recovery_time_s=self.recovery_time_s,
            fault_horizon_s=self.fault_horizon_s,
        )

    @property
    def packets_sent(self) -> int:
        """Total packet transmissions of the run (ARQ retries included)."""
        return sum(record.packets_sent for record in self.records)


@dataclass(slots=True)
class _RunState:
    """Per-run mutable state shared by the event handlers."""

    queue: EventQueue = field(default_factory=EventQueue)
    arbiters: Dict[int, TokenArbiter] = field(default_factory=dict)
    busy_s: Dict[int, float] = field(default_factory=dict)
    records: List[NetTransferRecord] = field(default_factory=list)
    #: In-flight transfers per (source, destination) pair.  The manager
    #: keys its active-configuration table by pair, so with overlapping
    #: same-pair transfers only the *last* completion may release the
    #: entry — otherwise an earlier completion would drop the
    #: configuration of a transfer still occupying the channel.
    active_pairs: Dict[tuple, int] = field(default_factory=dict)
    #: Interval-trace accumulators: bucket index -> a list laid out like
    #: :data:`~repro.netsim.metrics.EMPTY_TRACE_BUCKET`.
    trace: Dict[int, list] = field(default_factory=dict)
    #: Hard-fault accounting: channels currently down (channel -> the time
    #: they went down) plus the run-wide downtime / transition / recovery
    #: counters and the time of the last processed event.
    down_since: Dict[int, float] = field(default_factory=dict)
    downtime_s: float = 0.0
    fault_transitions: int = 0
    recoveries: int = 0
    recovery_time_s: float = 0.0
    end_s: float = 0.0
    #: Number of epoch-wide vectorized gate draws the batched engine
    #: performed (always 0 under the reference engine, which draws per
    #: attempt).  Pure accounting — never consulted by the simulation.
    epoch_flushes: int = 0


@dataclass(slots=True)
class _TransferState:
    """Mutable bookkeeping of one in-flight transfer."""

    request: TrafficRequest
    configuration: LinkConfiguration
    sampler: object
    packets_total: int
    packets_remaining: int
    retries_left: int
    first_start_s: float = -1.0
    attempts: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_with_residual_errors: int = 0
    residual_bit_errors: int = 0
    coded_bits_sent: int = 0
    energy_j: float = 0.0
    #: Design-point raw BER of the configuration (set when dynamics or a
    #: fault model are active) and the degraded raw BER of the current
    #: attempt.
    design_raw_ber: float = 0.0
    attempt_raw_ber: float | None = None
    #: Hard-fault bookkeeping: blackout deferrals consumed from the retry
    #: budget, whether the in-flight attempt serialised into a dark channel,
    #: and the absolute per-transfer timeout (``None`` without one).
    deferrals: int = 0
    attempt_blacked_out: bool = False
    deadline_s: float | None = None
    #: Outcome of the in-flight attempt.  Sampled when the attempt is
    #: *scheduled* (both engines share that contract) and committed when its
    #: DEPARTURE pops.  The reference engine stores the resolved
    #: :class:`TransmissionOutcome` eagerly; the batched engine parks a
    #: flush-queue sentinel here until the first dependent departure forces
    #: the epoch's vectorized draw.
    pending_outcome: object = None


def _observe_array(histogram, values: np.ndarray) -> None:
    """Publish a vector of observations into ``histogram`` in one pass.

    ``numpy.searchsorted(side="left")`` reproduces the histogram's inclusive
    upper-edge rule (``bisect_left``) exactly, so the bucket counts match a
    per-value ``observe_many`` loop while costing two C passes.
    """
    if len(values) == 0:
        return
    indices = np.searchsorted(np.asarray(histogram.bounds), values, side="left")
    counts = np.bincount(indices, minlength=len(histogram.bounds) + 1)
    histogram.observe_counts(counts.tolist())


def _publish_record_metrics(
    registry, records: List[NetTransferRecord], events_processed: int, faults: int
) -> None:
    """Deferred metric publication: the per-record sums of a finished run.

    Runs at registry *snapshot* time, not inside the simulation — the run
    parks this via ``MetricsRegistry.defer`` so scanning thousands of
    records never taxes the timed hot path.  Event-kind counts are
    reconstructed instead of tallied per event: every arrival produces
    exactly one record, every scheduled attempt exactly one departure,
    every fault transition one LINK_FAULT, and the remainder of the total
    are backed-off RETRY events.
    """
    arrivals = len(records)
    if arrivals:
        # Transpose once and aggregate column-wise: ``zip(*records)`` and
        # ``sum()`` run at C speed, an order of magnitude cheaper than a
        # per-record Python loop over 10 fields.  The unpack order mirrors
        # the NetTransferRecord field order above.
        (
            _sources,
            _destinations,
            _payloads,
            _codes,
            arrival_times,
            _first_starts,
            completion_times,
            attempts_col,
            _totals,
            sent_col,
            delivered_col,
            dropped_col,
            escape_col,
            residual_col,
            _coded_bits,
            energy_col,
            rejected_col,
        ) = zip(*records)
        departures = sum(attempts_col)
        rejected = sum(rejected_col)
        sent = sum(sent_col)
        delivered = sum(delivered_col)
        dropped = sum(dropped_col)
        escapes = sum(escape_col)
        residual_bits = sum(residual_col)
        energy_j = sum(energy_col)
        attempts_arr = np.asarray(attempts_col)
        attempt_counts = attempts_arr[attempts_arr != 0]
        retransmissions = departures - len(attempt_counts)
        completion = np.asarray(completion_times)
        arrival = np.asarray(arrival_times)
        if rejected:
            keep = ~np.asarray(rejected_col, dtype=bool)
            latencies = completion[keep] - arrival[keep]
        else:
            latencies = completion - arrival
    else:
        departures = retransmissions = rejected = 0
        sent = delivered = dropped = escapes = residual_bits = 0
        energy_j = 0.0
        latencies = np.empty(0)
        attempt_counts = np.empty(0, dtype=np.int64)
    counter = registry.counter
    counter("netsim.events.departure").inc(departures)
    counter("netsim.events.retry").inc(
        max(events_processed - arrivals - departures - faults, 0)
    )
    counter("netsim.transfers.completed").inc(arrivals - rejected)
    counter("netsim.transfers.rejected").inc(rejected)
    counter("netsim.packets.sent").inc(sent)
    counter("netsim.packets.delivered").inc(delivered)
    counter("netsim.packets.dropped").inc(dropped)
    counter("netsim.arq.retransmissions").inc(retransmissions)
    counter("netsim.crc.escapes").inc(escapes)
    counter("netsim.residual_bit_errors").inc(residual_bits)
    registry.gauge("netsim.energy_j").add(energy_j)
    _observe_array(registry.histogram("netsim.latency_s"), latencies)
    _observe_array(
        registry.histogram(
            "netsim.attempts_per_transfer", bounds=(1, 2, 3, 4, 5, 8, 16, 32)
        ),
        attempt_counts,
    )


class NetworkSimulator:
    """Discrete-event simulator of the managed MWSR ring.

    Parameters
    ----------
    config:
        Interconnect parameters (ONI count, wavelengths, rates).
    manager:
        A pre-built :class:`OpticalLinkManager`; one is constructed from
        ``config`` when omitted.  Sharing a manager across runs keeps its
        per-target candidate cache warm.
    policy:
        Selection policy attached to every request (``None`` keeps the
        manager's default).
    mode:
        ``"probabilistic"`` (analytic frame-error sampling, the fast
        default) or ``"bit-exact"`` (real codewords through the batch
        coding API, for cross-validation).
    engine:
        ``"batched"`` (the default) runs the epoch-batched event core of
        :mod:`repro.netsim.epoch`; ``"reference"`` runs the legacy
        per-event heap loop.  The two are byte-identical — same records,
        metrics, traces and event counts for the same seed — differing
        only in speed; the reference engine exists as the differential
        parity baseline.
    packet_bits:
        Payload bits per packet; payloads are split and zero padded.
    crc:
        Name of the per-packet CRC (see
        :class:`~repro.coding.crc.CyclicRedundancyCheck`) or ``None`` to
        disable detection — without a CRC there is no ARQ and every failed
        packet is delivered carrying residual errors.
    max_retries:
        ARQ retransmission budget per transfer; once exhausted the still
        failing packets are dropped.
    fault_model:
        Optional shared fault-injection model (e.g. a
        :class:`~repro.simulation.faults.BurstErrorModel`).  The default
        injects independent flips at each configuration's design-point raw
        BER.  In probabilistic mode a custom model contributes its
        ``expected_ber`` (burst correlation is only visible bit-exactly).
    rng / seed:
        The usual seeding vocabulary (:func:`resolve_rng`); pass at most
        one.  Everything stochastic inside the engine draws from this
        generator — plus a resolution stream spawned from it for the
        data-dependent draws of failing attempts — in event order.
    warmup_fraction:
        Leading fraction of completed transfers excluded from the latency
        summary (queues fill during warm-up).
    dynamics:
        Optional :class:`~repro.netsim.dynamics.ChannelDriftModel` making
        the raw channel BER time-varying (``raw(t) = raw_design * m(t)``
        per destination channel).  Probabilistic mode only, and mutually
        exclusive with a custom ``fault_model``.
    controller:
        Optional :class:`~repro.manager.runtime.AdaptiveEccController`
        choosing each transfer's drift margin online (static worst-case /
        adaptive / oracle).  Level switches charge the controller's
        reconfiguration latency (the channel is blocked) and energy.
    telemetry_seed:
        Seed of the *telemetry* stream the adaptive controller's failure
        monitor samples from.  Kept separate from ``rng``/``seed`` so
        enabling the controller never perturbs the engine's main stream —
        a zero-drift adaptive run is byte-identical to a static one.  Pass
        a seed for reproducible adaptive runs.
    trace_interval_s:
        When set, the run accumulates per-interval energy/latency/switch
        traces (:class:`~repro.netsim.metrics.IntervalTrace`) of this
        width on ``NetworkResult.interval_trace``.
    failures:
        Optional :class:`~repro.netsim.failures.HardFaultModel` injecting
        hard faults (lane fails, stuck rings, laser droop, blackouts) per
        destination channel.  Probabilistic mode only, and mutually
        exclusive with both ``fault_model`` and ``dynamics``.  An attempt
        serialised into a down channel is lost in full (loss of light is
        physically detectable, so the loss counts as detected even without
        a CRC); degraded channels corrupt at the health's penalised raw
        BER, with lost wavelengths contributing randomised bits unless a
        degradation ladder remaps around them.
    degradation:
        Optional :class:`~repro.manager.policies.DegradationLadder` reacting
        to the fault model's health per transfer: remap onto surviving
        wavelengths, escalate the ECC margin, derate the data rate or
        declare the channel down (requests are dropped without spending
        energy).  Requires ``failures`` and a positive ``retry_backoff_s``
        (blackout deferrals re-enter through the backed-off RETRY path).
    retry_backoff_s:
        Base of the exponential ARQ backoff: the ``n``-th re-attempt of a
        transfer is not issued before ``retry_backoff_s * 2**n`` after the
        failure.  The default of 0 keeps the historical immediate-ARQ
        behaviour bit-for-bit.
    transfer_timeout_s:
        Per-transfer deadline relative to arrival: once a retry would start
        beyond it, the remaining packets are dropped instead (bounds how
        long a transfer can chase a dark channel).
    """

    def __init__(
        self,
        *,
        config: PaperConfig = DEFAULT_CONFIG,
        manager: OpticalLinkManager | None = None,
        policy: SelectionPolicy | None = None,
        mode: str = "probabilistic",
        engine: str = "batched",
        packet_bits: int = 512,
        crc: str | None = "crc16-ccitt",
        max_retries: int = 4,
        fault_model=None,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
        warmup_fraction: float = 0.1,
        dynamics: ChannelDriftModel | None = None,
        controller: AdaptiveEccController | None = None,
        telemetry_seed: int | np.random.SeedSequence | None = None,
        trace_interval_s: float | None = None,
        failures: HardFaultModel | None = None,
        degradation: DegradationLadder | None = None,
        retry_backoff_s: float = 0.0,
        transfer_timeout_s: float | None = None,
    ):
        if mode not in MODES:
            raise ConfigurationError(f"unknown mode {mode!r}; available: {MODES}")
        if engine not in ENGINES:
            raise ConfigurationError(f"unknown engine {engine!r}; available: {ENGINES}")
        if packet_bits < 1:
            raise ConfigurationError("packet size must be at least one bit")
        if max_retries < 0:
            raise ConfigurationError("retry budget cannot be negative")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError("warm-up fraction must lie in [0, 1)")
        if dynamics is not None and mode != "probabilistic":
            raise ConfigurationError(
                "time-varying channels are only supported in probabilistic mode"
            )
        if (
            controller is not None
            and controller.wants_observations
            and mode != "probabilistic"
        ):
            raise ConfigurationError(
                "the adaptive controller's failure monitor samples analytic "
                "correction telemetry; it is only supported in probabilistic mode"
            )
        if dynamics is not None and fault_model is not None:
            raise ConfigurationError(
                "a custom fault model fixes the raw BER; it cannot be combined "
                "with channel dynamics"
            )
        if trace_interval_s is not None and trace_interval_s <= 0.0:
            raise ConfigurationError("trace interval must be positive")
        if failures is not None:
            if mode != "probabilistic":
                raise ConfigurationError(
                    "hard-fault models are only supported in probabilistic mode"
                )
            if fault_model is not None or dynamics is not None:
                raise ConfigurationError(
                    "a hard-fault model fixes the per-attempt raw BER; it cannot "
                    "be combined with a custom fault model or channel dynamics"
                )
            if failures.num_channels != config.num_onis:
                raise ConfigurationError(
                    "the fault model must cover every reader channel of the ring"
                )
            if failures.num_wavelengths != config.num_wavelengths:
                raise ConfigurationError(
                    "the fault model's wavelength count must match the interconnect"
                )
        if degradation is not None:
            if failures is None:
                raise ConfigurationError(
                    "a degradation ladder reacts to hard faults; pass failures too"
                )
            if retry_backoff_s <= 0.0:
                raise ConfigurationError(
                    "a degradation ladder defers through the backed-off retry "
                    "path; retry_backoff_s must be positive"
                )
            if degradation.num_wavelengths != config.num_wavelengths:
                raise ConfigurationError(
                    "the degradation ladder's wavelength count must match the "
                    "interconnect"
                )
        if retry_backoff_s < 0.0:
            raise ConfigurationError("retry backoff cannot be negative")
        if transfer_timeout_s is not None and transfer_timeout_s <= 0.0:
            raise ConfigurationError("transfer timeout must be positive")
        self.config = config
        self.manager = manager if manager is not None else OpticalLinkManager(config=config)
        self.policy = policy
        self.mode = mode
        self.engine = engine
        self.packet_bits = int(packet_bits)
        self.crc = CyclicRedundancyCheck.from_name(crc) if crc is not None else None
        self.max_retries = int(max_retries)
        self.warmup_fraction = float(warmup_fraction)
        self._fault_model = fault_model
        self._rng = resolve_rng(rng, seed)
        # The resolution stream (failing attempts' CRC-escape/binomial draws)
        # is a deterministic function of the primary seed, so passing the
        # same rng/seed still makes the whole run a pure function of it.
        try:
            self._resolve_rng = self._rng.spawn(1)[0]
        except (AttributeError, TypeError):  # pragma: no cover - NumPy < 1.25
            self._resolve_rng = np.random.default_rng(
                int(self._rng.integers(0, np.iinfo(np.int64).max))
            )
        self._dynamics = dynamics
        self._controller = controller
        self._telemetry_rng = resolve_rng(None, telemetry_seed)
        self._trace_interval_s = trace_interval_s
        self._failures = failures
        self._degradation = degradation
        self.retry_backoff_s = float(retry_backoff_s)
        self.transfer_timeout_s = (
            float(transfer_timeout_s) if transfer_timeout_s is not None else None
        )
        self._designer = OpticalLinkDesigner(config=config)
        self._codes_by_name = {code.name: code for code in self.manager.codes}
        self._samplers: Dict[tuple, object] = {}

    # ------------------------------------------------------------------ helpers
    @property
    def channel_rate_bits_per_s(self) -> float:
        """Serialisation rate of one waveguide group (NW wavelengths at Fmod)."""
        return self.config.num_wavelengths * self.config.modulation_rate_hz

    def _arbiter_for(self, reader: int, arbiters: Dict[int, TokenArbiter]) -> TokenArbiter:
        if reader not in arbiters:
            channel = MWSRChannel(reader=reader, config=self.config)
            arbiters[reader] = TokenArbiter(writers=channel.writers)
        return arbiters[reader]

    def _raw_ber_for(self, configuration: LinkConfiguration) -> float:
        """Raw channel BER of the selected operating point.

        Solved at the configuration's *design* target — the drift-derated
        one when a margin was provisioned.  The designer memoizes the point
        per (code, target), so this is a dictionary lookup after the first
        request.
        """
        code = self._codes_by_name[configuration.code_name]
        point = self._designer.design_point(code, configuration.design_target_ber)
        return float(point.raw_channel_ber)

    def _sampler_for(self, configuration: LinkConfiguration):
        """Outcome sampler of one (code, design target BER) configuration (cached)."""
        key = (configuration.code_name, float(configuration.design_target_ber))
        if key not in self._samplers:
            code = self._codes_by_name[configuration.code_name]
            raw_ber = (
                float(self._fault_model.expected_ber)
                if self._fault_model is not None
                else self._raw_ber_for(configuration)
            )
            if self.mode == "probabilistic":
                sampler = ProbabilisticOutcomeSampler(
                    code,
                    raw_ber,
                    packet_bits=self.packet_bits,
                    crc_width=self.crc.width if self.crc is not None else 0,
                    rng=self._rng,
                )
            else:
                error_model = (
                    self._fault_model
                    if self._fault_model is not None
                    else IndependentErrorModel(raw_ber, rng=self._rng)
                )
                sampler = BitExactOutcomeSampler(
                    code,
                    error_model,
                    packet_bits=self.packet_bits,
                    crc=self.crc,
                    rng=self._rng,
                )
            self._samplers[key] = sampler
        return self._samplers[key]

    # ------------------------------------------------------------------ simulation
    def run(self, requests: Iterable[TrafficRequest]) -> NetworkResult:
        """Simulate a finite request sequence to completion."""
        tracer = obs_tracing.ACTIVE
        if tracer is None:
            return self._run_engine(requests)
        with tracer.span("netsim.run", engine=self.engine, mode=self.mode):
            return self._run_engine(requests)

    def _run_engine(self, requests: Iterable[TrafficRequest]) -> NetworkResult:
        if self.engine == "reference":
            return self._run_reference(requests)
        from .epoch import run_batched

        return run_batched(self, requests)

    def _run_reference(self, requests: Iterable[TrafficRequest]) -> NetworkResult:
        """The legacy per-event heap loop (the parity-testing baseline)."""
        run = _RunState()
        if self._controller is not None:
            self._controller.reset()
        if self._failures is not None:
            # One LINK_FAULT per compiled health transition; pushed before
            # the arrivals so a fault coinciding with an arrival is applied
            # first (matching the bisect semantics of health queries).
            for transition in self._failures.transitions():
                run.queue.push(transition.time_s, EventKind.LINK_FAULT, transition)
        count = 0
        for request in requests:
            run.queue.push(request.arrival_time_s, EventKind.ARRIVAL, request)
            count += 1
        if count == 0:
            raise ConfigurationError("a simulation needs at least one request")

        # The drain loop is the engine's hottest Python code: bind the two
        # common handlers and their sentinels once instead of resolving the
        # attribute chain per event, and keep all per-run aggregation (the
        # sorted grant-count snapshot below) out of it entirely.  The
        # enclosing try costs nothing until a handler actually raises; it
        # exists so a crash deep inside a controller or sampler names the
        # event that broke the run (the queue itself is never torn — the
        # failing event was popped and no further handler runs).
        handle_arrival = self._handle_arrival
        handle_departure = self._handle_departure
        arrival = EventKind.ARRIVAL
        departure = EventKind.DEPARTURE
        retry = EventKind.RETRY
        event = None
        try:
            for event in run.queue.drain():
                kind = event.kind
                if kind is arrival:
                    handle_arrival(event.time_s, event.payload, run)
                elif kind is departure:
                    handle_departure(event.time_s, event.payload, run)
                elif kind is retry:
                    self._schedule_attempt(event.payload, event.time_s, run)
                else:
                    self._handle_link_fault(event.time_s, event.payload, run)
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(
                f"{event.kind.name} handler failed at t={event.time_s:.9e}s "
                f"(event #{run.queue.events_processed}): {exc}"
            ) from exc
        run.end_s = event.time_s
        return self._finish_run(run)

    def _finish_run(self, run: _RunState) -> NetworkResult:
        """Settle end-of-run fault accounting and assemble the result.

        Shared by both engines: everything here is a pure function of the
        drained run state, so byte-identical run states (which the parity
        suite pins) yield byte-identical results.
        """
        if self._failures is not None and run.down_since:
            # Channels still down when the run ends: their outage is charged
            # up to the last processed event, but does not count as a
            # recovery (they never came back).
            for channel in sorted(run.down_since):
                started = run.down_since[channel]
                if run.end_s > started:
                    run.downtime_s += run.end_s - started
                    self._charge_downtime(run, started, run.end_s)
            run.down_since.clear()

        result = NetworkResult(
            records=run.records,
            busy_s_by_reader=run.busy_s,
            grant_counts_by_reader={
                reader: arbiter.grant_counts()
                for reader, arbiter in sorted(run.arbiters.items())
            },
            num_channels=self.config.num_onis,
            warmup_fraction=self.warmup_fraction,
            events_processed=run.queue.events_processed,
            configuration_switches=(
                self._controller.switch_count if self._controller is not None else 0
            ),
            reconfiguration_energy_j=(
                self._controller.reconfiguration_energy_j
                if self._controller is not None
                else 0.0
            ),
            interval_trace=(
                build_interval_trace(
                    run.trace,
                    self._trace_interval_s,
                    num_channels=self.config.num_onis,
                )
                if self._trace_interval_s is not None
                else None
            ),
            channel_downtime_s=run.downtime_s,
            fault_transitions=run.fault_transitions,
            recoveries=run.recoveries,
            recovery_time_s=run.recovery_time_s,
            fault_horizon_s=run.end_s if self._failures is not None else 0.0,
        )
        registry = obs_metrics.ACTIVE
        if registry is not None:
            self._publish_run_metrics(registry, result, run)
        return result

    def _publish_run_metrics(
        self, registry, result: NetworkResult, run: _RunState
    ) -> None:
        """Publish the finished run's telemetry into the active registry.

        Everything is derived from aggregates the engines maintain anyway
        (records, event counts, fault accounting), so metrics collection
        adds nothing to the per-event hot path and — crucially — reads no
        random generator: a run with metrics on is byte-identical to one
        with metrics off.  Scalars the run already tracks are published
        eagerly; sums that must scan the (immutable, possibly huge) record
        table are deferred to snapshot time via
        :meth:`MetricsRegistry.defer`, keeping the instrumented ``run()``
        within a few percent of the uninstrumented one.
        """
        records = result.records
        arrivals = len(records)
        faults = result.fault_transitions
        events = result.events_processed
        counter = registry.counter
        counter("netsim.events.total").inc(events)
        counter("netsim.events.arrival").inc(arrivals)
        counter("netsim.events.link_fault").inc(faults)
        counter("netsim.epoch.flushes").inc(run.epoch_flushes)
        counter("netsim.transfers.total").inc(arrivals)
        counter("netsim.controller.switches").inc(result.configuration_switches)
        counter("netsim.faults.transitions").inc(faults)
        counter("netsim.faults.recoveries").inc(result.recoveries)
        gauge = registry.gauge
        gauge("netsim.reconfiguration_energy_j").add(result.reconfiguration_energy_j)
        gauge("netsim.downtime_s").add(result.channel_downtime_s)
        gauge("netsim.recovery_time_s").add(result.recovery_time_s)
        registry.defer(
            lambda target: _publish_record_metrics(target, records, events, faults)
        )

    def _charge_trace(
        self,
        run: _RunState,
        time_s: float,
        *,
        energy_j: float = 0.0,
        packets: int = 0,
        completed: int = 0,
        latency_s: float = 0.0,
        switches: int = 0,
        dropped: int = 0,
        fault_transitions: int = 0,
        recoveries: int = 0,
        recovery_s: float = 0.0,
    ) -> None:
        """Accumulate one event's contribution to the interval trace."""
        if self._trace_interval_s is None:
            return
        bucket = run.trace.setdefault(
            int(time_s // self._trace_interval_s), list(EMPTY_TRACE_BUCKET)
        )
        bucket[0] += energy_j
        bucket[1] += packets
        bucket[2] += completed
        bucket[3] += latency_s
        bucket[4] += switches
        bucket[5] += dropped
        bucket[6] += fault_transitions
        bucket[7] += recoveries
        bucket[8] += recovery_s

    def _charge_downtime(self, run: _RunState, start_s: float, end_s: float) -> None:
        """Spread one channel-down interval over the trace buckets it covers."""
        if self._trace_interval_s is None or end_s <= start_s:
            return
        width = self._trace_interval_s
        for index in range(int(start_s // width), int(end_s // width) + 1):
            overlap = min(end_s, (index + 1) * width) - max(start_s, index * width)
            if overlap > 0.0:
                bucket = run.trace.setdefault(index, list(EMPTY_TRACE_BUCKET))
                bucket[9] += overlap

    def _handle_link_fault(self, now_s, transition, run: _RunState) -> None:
        """Apply one health transition: availability accounting + escalation."""
        run.fault_transitions += 1
        channel = transition.channel
        health = self._failures.health(channel, now_s)
        was_down = channel in run.down_since
        if health.down and not was_down:
            run.down_since[channel] = now_s
        elif not health.down and was_down:
            started = run.down_since.pop(channel)
            duration = now_s - started
            run.downtime_s += duration
            run.recoveries += 1
            run.recovery_time_s += duration
            self._charge_downtime(run, started, now_s)
            self._charge_trace(run, now_s, recoveries=1, recovery_s=duration)
        self._charge_trace(run, now_s, fault_transitions=1)
        if (
            self._controller is not None
            and self._degradation is not None
            and health.ber_penalty_multiplier > 1.0
        ):
            # A ladder deployment implies a fault-management plane that
            # announces detected penalties; jump the controller straight to
            # the covering level instead of waiting for telemetry.
            if self._controller.force_margin(
                channel, health.ber_penalty_multiplier, now_s
            ):
                self._record_switch(run, now_s)

    def _record_switch(self, run: _RunState, time_s: float) -> None:
        """Trace one controller level switch (its energy is charged here)."""
        self._charge_trace(
            run,
            time_s,
            energy_j=self._controller.switch_energy_j,
            switches=1,
        )

    def _handle_arrival(self, now_s, request, run: _RunState) -> None:
        communication = CommunicationRequest(
            source=request.source,
            destination=request.destination,
            target_ber=request.target_ber,
            payload_bits=request.payload_bits,
            policy=self.policy,
        )
        margin = 1.0
        if self._controller is not None:
            multiplier = (
                self._dynamics.multiplier(request.destination, now_s)
                if self._dynamics is not None
                else 1.0
            )
            margin, switched = self._controller.margin_for(
                request.destination, now_s, true_multiplier=multiplier
            )
            if switched:
                self._record_switch(run, now_s)
        try:
            if self._degradation is not None:
                health = self._failures.health(request.destination, now_s)
                configuration, action = self.manager.configure_degraded(
                    communication,
                    health,
                    self._degradation,
                    base_margin_multiplier=margin,
                )
                if configuration is None:
                    # The ladder declared the channel down: drop the request
                    # without spending a single attempt's energy on it.
                    self._drop_on_arrival(request, now_s, run)
                    return
            else:
                configuration = self.manager.configure(
                    communication, margin_multiplier=margin
                )
        except InfeasibleDesignError:
            run.records.append(
                NetTransferRecord(
                    source=request.source,
                    destination=request.destination,
                    payload_bits=request.payload_bits,
                    code_name=None,
                    arrival_time_s=now_s,
                    first_start_time_s=now_s,
                    completion_time_s=now_s,
                    attempts=0,
                    packets_total=0,
                    packets_sent=0,
                    packets_delivered=0,
                    packets_dropped=0,
                    packets_with_residual_errors=0,
                    residual_bit_errors=0,
                    coded_bits_sent=0,
                    energy_j=0.0,
                    rejected=True,
                )
            )
            return
        packets = packets_for_payload(request.payload_bits, self.packet_bits)
        state = _TransferState(
            request=request,
            configuration=configuration,
            sampler=self._sampler_for(configuration),
            packets_total=packets,
            packets_remaining=packets,
            retries_left=self.max_retries if self.crc is not None else 0,
        )
        if self._dynamics is not None or self._failures is not None:
            state.design_raw_ber = self._raw_ber_for(configuration)
        if self.transfer_timeout_s is not None:
            state.deadline_s = now_s + self.transfer_timeout_s
        pair = (request.source, request.destination)
        run.active_pairs[pair] = run.active_pairs.get(pair, 0) + 1
        self._schedule_attempt(state, now_s, run)

    def _drop_on_arrival(self, request, now_s, run: _RunState) -> None:
        """Record a request refused at arrival (channel declared down)."""
        packets = packets_for_payload(request.payload_bits, self.packet_bits)
        run.records.append(
            NetTransferRecord(
                source=request.source,
                destination=request.destination,
                payload_bits=request.payload_bits,
                code_name=None,
                arrival_time_s=now_s,
                first_start_time_s=now_s,
                completion_time_s=now_s,
                attempts=0,
                packets_total=packets,
                packets_sent=0,
                packets_delivered=0,
                packets_dropped=packets,
                packets_with_residual_errors=0,
                residual_bit_errors=0,
                coded_bits_sent=0,
                energy_j=0.0,
            )
        )
        self._charge_trace(run, now_s, dropped=packets)

    def _schedule_attempt(
        self, state, now_s, run: _RunState, *, not_before_s: float | None = None
    ) -> None:
        """Reserve the destination channel for one attempt and time its end.

        The arbiter grants in request order (the event loop guarantees
        requests are issued in simulation-time order), charges the token
        hops from the current holder and queues behind the channel's busy
        window; the attempt's DEPARTURE fires when serialisation completes.
        ``not_before_s`` is the ARQ backoff floor of a re-attempt.  Under a
        degradation ladder a down channel defers the attempt (blackout) or
        drops the transfer (permanent outage) instead of serialising into
        the dark.
        """
        destination = state.request.destination
        request_time_s = now_s
        if not_before_s is not None and not_before_s > request_time_s:
            request_time_s = not_before_s
        if self._controller is not None:
            # A channel mid-reconfiguration (lasers re-locking, coder mode
            # switching) cannot accept the next transfer until it finishes.
            request_time_s = max(request_time_s, self._controller.blocked_until(destination))
        wavelengths = self.config.num_wavelengths
        rate_factor = 1.0
        action = None
        if self._failures is not None and self._degradation is not None:
            health = self._failures.health(destination, request_time_s)
            if health.down:
                self._defer_or_drop(state, now_s, health, run)
                return
            action = self._degradation.action_for(health)
            if not action.serve:
                self._finalize_transfer(state, now_s, run, dropped=state.packets_remaining)
                return
            wavelengths = action.wavelengths
            rate_factor = (
                self.config.num_wavelengths / wavelengths
            ) * action.derate_factor
        duration_s = (
            state.packets_remaining
            * state.sampler.coded_bits_per_packet
            / self.channel_rate_bits_per_s
        )
        if rate_factor != 1.0:
            # Remapped / derated attempts serialise slower: the same coded
            # bits over fewer wavelengths and/or at a reduced rate.
            duration_s *= rate_factor
        arbiter = self._arbiter_for(destination, run.arbiters)
        start_s = arbiter.request(state.request.source, request_time_s, duration_s)
        if state.first_start_s < 0.0:
            state.first_start_s = start_s
        state.attempts += 1
        state.packets_sent += state.packets_remaining
        state.coded_bits_sent += state.packets_remaining * state.sampler.coded_bits_per_packet
        channel_power_w = state.configuration.channel_power_w * wavelengths
        attempt_energy_j = channel_power_w * duration_s
        state.energy_j += attempt_energy_j
        if self._dynamics is not None:
            # The attempt is corrupted at the channel conditions of its
            # serialisation start.
            multiplier = self._dynamics.multiplier(destination, start_s)
            state.attempt_raw_ber = min(1.0, state.design_raw_ber * multiplier)
        elif self._failures is not None:
            self._apply_attempt_health(state, destination, start_s, action)
        if not state.attempt_blacked_out:
            # The attempt's outcome is drawn at *schedule* time — the
            # contract both engines share: the primary stream is consumed
            # in attempt-schedule order (fixed size per attempt), failing
            # attempts resolve from the separate resolution stream.  A
            # blacked-out attempt consumes no randomness at all (its loss
            # is certain), keeping the streams aligned with a fault-free
            # run.  The outcome is committed when the DEPARTURE pops.
            if self.mode == "probabilistic":
                state.pending_outcome = state.sampler.sample(
                    state.packets_remaining,
                    raw_ber=state.attempt_raw_ber,
                    resolve_rng=self._resolve_rng,
                )
            else:
                state.pending_outcome = state.sampler.sample(state.packets_remaining)
        self._charge_trace(
            run, start_s, energy_j=attempt_energy_j, packets=state.packets_remaining
        )
        run.busy_s[destination] = run.busy_s.get(destination, 0.0) + duration_s
        run.queue.push(start_s + duration_s, EventKind.DEPARTURE, state)

    def _apply_attempt_health(self, state, destination, start_s, action) -> None:
        """Set the attempt's raw BER (or dark-channel flag) from its health.

        Like dynamics, the attempt is corrupted at the conditions of its
        serialisation *start* — a blackout beginning between the channel
        request and the grant still eats the attempt.  Without a ladder,
        lost wavelengths are still driven (the transmitter does not know):
        their share of the coded bits arrives as coin flips, so the
        effective raw BER blends the survivors' penalised BER with 0.5.
        With a ladder, ``action`` already remapped (no dead-wavelength
        bits) and its derate divides the penalty (a halved rate buys a 2x
        raw-BER allowance from the energy-per-bit gain).
        """
        health = self._failures.health(destination, start_s)
        if health.down:
            state.attempt_blacked_out = True
            state.attempt_raw_ber = None
            return
        state.attempt_blacked_out = False
        penalty = health.ber_penalty_multiplier
        if action is not None:
            raw = state.design_raw_ber * (penalty / action.derate_factor)
        else:
            raw = state.design_raw_ber * penalty
            lost = self.config.num_wavelengths - health.wavelengths_available
            if lost > 0:
                fraction = lost / self.config.num_wavelengths
                raw = fraction * 0.5 + (1.0 - fraction) * raw
        state.attempt_raw_ber = min(1.0, raw)

    def _retry_delay_s(self, state) -> float:
        """Exponential backoff: doubles with every re-attempt already consumed."""
        previous = max(state.attempts - 1, 0) + state.deferrals
        return self.retry_backoff_s * (2.0 ** previous)

    def _defer_or_drop(self, state, now_s, health, run: _RunState) -> None:
        """A down channel under the ladder: wait out a blackout or give up."""
        if health.failed or not health.blacked_out:
            # Permanent outage (hard fail or all wavelengths gone): waiting
            # cannot help, drop what remains immediately.
            self._finalize_transfer(state, now_s, run, dropped=state.packets_remaining)
            return
        retry_at = now_s + self._retry_delay_s(state)
        if state.retries_left <= 0 or (
            state.deadline_s is not None and retry_at > state.deadline_s
        ):
            self._finalize_transfer(state, now_s, run, dropped=state.packets_remaining)
            return
        state.retries_left -= 1
        state.deferrals += 1
        run.queue.push(retry_at, EventKind.RETRY, state)

    def _handle_departure(self, now_s, state, run: _RunState) -> None:
        if state.attempt_blacked_out:
            # The channel was dark when serialisation started: every packet
            # of the attempt is lost, and loss of light is detected at the
            # receiver even without a CRC.  The outcome is certain, so no
            # randomness is consumed — the main stream stays aligned with a
            # fault-free run — and the controller sees no telemetry (there
            # is no decoded block to count corrections on).
            state.attempt_blacked_out = False
            outcome = TransmissionOutcome(
                packets=state.packets_remaining,
                failed_detected=state.packets_remaining,
                delivered_with_errors=0,
                residual_bit_errors=0,
            )
        else:
            outcome = state.pending_outcome
            state.pending_outcome = None
            if self._controller is not None and self._controller.wants_observations:
                self._feed_controller(now_s, state, outcome, run)
        state.packets_delivered += outcome.delivered
        state.packets_with_residual_errors += outcome.delivered_with_errors
        state.residual_bit_errors += outcome.residual_bit_errors
        if outcome.failed_detected and state.retries_left > 0:
            state.packets_remaining = outcome.failed_detected
            not_before = now_s
            if self.retry_backoff_s > 0.0:
                not_before = now_s + self._retry_delay_s(state)
            if state.deadline_s is None or not_before <= state.deadline_s:
                state.retries_left -= 1
                self._schedule_attempt(state, now_s, run, not_before_s=not_before)
                return
            # The backed-off re-attempt would land past the transfer's
            # deadline: give up now instead of burning the channel on it.
        self._finalize_transfer(state, now_s, run, dropped=outcome.failed_detected)

    def _finalize_transfer(self, state, now_s, run: _RunState, *, dropped: int) -> None:
        """Record a transfer's terminal state (delivered, exhausted or dropped).

        ``dropped`` is the number of packets that never made it: the last
        attempt's detected failures when ARQ gave up, or everything still
        pending when a fault dropped the transfer outright.  A transfer
        dropped before any attempt started reports its drop time as its
        first start.
        """
        request = state.request
        first_start = state.first_start_s if state.first_start_s >= 0.0 else now_s
        run.records.append(
            NetTransferRecord(
                source=request.source,
                destination=request.destination,
                payload_bits=request.payload_bits,
                code_name=state.configuration.code_name,
                arrival_time_s=request.arrival_time_s,
                first_start_time_s=first_start,
                completion_time_s=now_s,
                attempts=state.attempts,
                packets_total=state.packets_total,
                packets_sent=state.packets_sent,
                packets_delivered=state.packets_delivered,
                packets_dropped=dropped,
                packets_with_residual_errors=state.packets_with_residual_errors,
                residual_bit_errors=state.residual_bit_errors,
                coded_bits_sent=state.coded_bits_sent,
                energy_j=state.energy_j,
            )
        )
        self._charge_trace(
            run,
            now_s,
            completed=1,
            latency_s=now_s - request.arrival_time_s,
            dropped=dropped,
        )
        pair = (request.source, request.destination)
        run.active_pairs[pair] -= 1
        if run.active_pairs[pair] == 0:
            del run.active_pairs[pair]
            self.manager.release(request.source, request.destination)

    def _feed_controller(self, now_s, state, outcome, run: _RunState) -> None:
        """Sample the attempt's failure telemetry and feed the monitor.

        The receiver-visible telemetry is the number of ECC blocks the
        decoder had to correct plus the CRC-detected packet failures.
        Correction events are sampled from the *telemetry* stream — never
        the engine's main generator — so enabling the monitor does not
        perturb packet outcomes.  (The CRC failures are drawn independently
        of the correction draw; the double count is negligible at operating
        points where corrections dominate failures by orders of magnitude.)
        """
        sampler = state.sampler
        blocks = outcome.packets * sampler.blocks_per_packet
        disturb = sampler.block_disturb_probability(state.attempt_raw_ber)
        observed = float(self._telemetry_rng.binomial(blocks, disturb))
        expected = blocks * sampler.block_disturb_probability()
        switched = self._controller.observe(
            state.request.destination,
            now_s,
            blocks=blocks,
            observed_events=observed + outcome.failed_detected,
            expected_events=expected,
        )
        if switched:
            self._record_switch(run, now_s)
