"""Parametric area/power/timing models of the interface building blocks.

The paper's Table I characterises the exact blocks it needs (H(7,4) x16,
H(71,64), 64/71/112-bit SER/DES, 3-to-1 muxes).  To let users explore other
codes, bus widths and modulation rates, this module provides parametric
estimators calibrated on those entries:

* Hamming encoders are XOR trees (one per parity bit) plus output registers;
* Hamming decoders add syndrome decode and correction logic per codeword bit;
* serialisers / deserialisers are register pipelines whose depth equals the
  block length, clocked at the modulation rate;
* path muxes scale linearly with their width.

Estimates are intentionally simple (linear in gate counts, frequency-scaled
dynamic power) — they are meant to extend Table I by interpolation, not to
replace a synthesis flow.  ``tests/interfaces`` checks that the estimators
land within ~25% of every Table I entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..exceptions import ConfigurationError
from .techlib import BlockCharacterisation, FDSOI_28NM, TechnologyLibrary

__all__ = [
    "HardwareBlock",
    "hamming_codec_block",
    "serializer_block",
    "deserializer_block",
    "mux_block",
    "aggregate_blocks",
]


@dataclass(frozen=True)
class HardwareBlock:
    """A block instance: its characterisation plus the mode(s) that use it."""

    characterisation: BlockCharacterisation
    modes: tuple[str, ...]
    always_on: bool = False

    @property
    def name(self) -> str:
        """Block name (taken from the characterisation)."""
        return self.characterisation.name

    def active_in(self, mode: str) -> bool:
        """True when the block consumes dynamic power in the given mode."""
        return self.always_on or mode in self.modes


def _codec_gate_counts(code, num_instances: int) -> tuple[int, int, int]:
    """(xor2 gates, output flip-flops, codeword bits) of a codec bank.

    Each parity bit is an XOR tree over the message bits it covers; the
    number of 2-input XORs is (inputs - 1).  The generator matrix gives the
    exact cover sizes, so the estimate adapts to shortened codes.
    """
    generator = code.generator_matrix
    parity_columns = generator[:, code.k:]
    xor2 = 0
    for parity_index in range(parity_columns.shape[1]):
        inputs = int(parity_columns[:, parity_index].sum())
        xor2 += max(inputs - 1, 0)
    flipflops = code.n
    return xor2 * num_instances, flipflops * num_instances, code.n * num_instances


def hamming_codec_block(
    code,
    *,
    role: str,
    num_instances: int = 1,
    ip_clock_hz: float = 1e9,
    tech: TechnologyLibrary = FDSOI_28NM,
) -> BlockCharacterisation:
    """Estimate a bank of Hamming encoders or decoders.

    Parameters
    ----------
    code:
        A systematic linear block code (needs ``generator_matrix``/``n``/``k``).
    role:
        Either ``"encoder"`` or ``"decoder"``.
    num_instances:
        Number of parallel codec instances (16 for H(7,4) on a 64-bit bus).
    ip_clock_hz:
        Clock of the codec stage; dynamic power scales linearly with it.
    tech:
        Technology library providing the calibration constants.
    """
    if role not in {"encoder", "decoder"}:
        raise ConfigurationError("role must be 'encoder' or 'decoder'")
    if num_instances < 1:
        raise ConfigurationError("at least one codec instance is required")
    xor2, flipflops, codeword_bits = _codec_gate_counts(code, num_instances)
    xor_area = tech.calibration("xor2_area_um2")
    ff_area = tech.calibration("flipflop_area_um2")
    area = xor2 * xor_area + flipflops * ff_area
    # Critical path: the deepest parity tree (log2 depth) plus register setup.
    generator = code.generator_matrix
    max_inputs = max(
        int(generator[:, code.k + i].sum()) for i in range(code.num_parity_bits)
    )
    import math

    tree_depth = max(1, math.ceil(math.log2(max(max_inputs, 2))))
    critical_path = tree_depth * tech.calibration("xor2_delay_ps") + tech.calibration(
        "register_setup_ps"
    )
    if role == "decoder":
        area += codeword_bits * tech.calibration("decode_correct_area_um2_per_bit")
        critical_path += 2 * tech.calibration("xor2_delay_ps")
    density = tech.calibration("codec_dynamic_power_density_uw_per_um2_at_1ghz")
    dynamic = area * density * (ip_clock_hz / tech.calibration("reference_ip_clock_hz"))
    static = area * tech.calibration("static_power_density_nw_per_um2")
    label = f"{role}:{code.name}x{num_instances}"
    return BlockCharacterisation(
        name=label,
        area_um2=area,
        critical_path_ps=critical_path,
        static_power_nw=static,
        dynamic_power_uw=dynamic,
    )


def serializer_block(
    num_bits: int,
    *,
    modulation_rate_hz: float = 10e9,
    tech: TechnologyLibrary = FDSOI_28NM,
) -> BlockCharacterisation:
    """Estimate an ``num_bits``-deep serialiser clocked at the modulation rate."""
    if num_bits < 1:
        raise ConfigurationError("serialiser depth must be positive")
    area = num_bits * tech.calibration("serializer_area_um2_per_bit")
    rate_scale = modulation_rate_hz / tech.calibration("reference_modulation_rate_hz")
    dynamic = num_bits * tech.calibration("serializer_dynamic_uw_per_bit_at_10g") * rate_scale
    static = area * tech.calibration("static_power_density_nw_per_um2") * 4.0
    return BlockCharacterisation(
        name=f"ser:{num_bits}b",
        area_um2=area,
        critical_path_ps=70.0,
        static_power_nw=static,
        dynamic_power_uw=dynamic,
    )


def deserializer_block(
    num_bits: int,
    *,
    modulation_rate_hz: float = 10e9,
    tech: TechnologyLibrary = FDSOI_28NM,
) -> BlockCharacterisation:
    """Estimate an ``num_bits``-deep deserialiser clocked at the modulation rate."""
    if num_bits < 1:
        raise ConfigurationError("deserialiser depth must be positive")
    area = num_bits * tech.calibration("deserializer_area_um2_per_bit")
    rate_scale = modulation_rate_hz / tech.calibration("reference_modulation_rate_hz")
    dynamic = (
        num_bits * tech.calibration("deserializer_dynamic_uw_per_bit_at_10g") * rate_scale
    )
    static = area * tech.calibration("static_power_density_nw_per_um2") * 4.0
    return BlockCharacterisation(
        name=f"deser:{num_bits}b",
        area_um2=area,
        critical_path_ps=60.0,
        static_power_nw=static,
        dynamic_power_uw=dynamic,
    )


def mux_block(
    width_bits: int,
    num_inputs: int = 3,
    *,
    tech: TechnologyLibrary = FDSOI_28NM,
) -> BlockCharacterisation:
    """Estimate a ``num_inputs``-to-1 path multiplexer of a given width."""
    if width_bits < 1 or num_inputs < 2:
        raise ConfigurationError("mux needs a positive width and at least two inputs")
    scale = (num_inputs - 1) / 2.0
    area = width_bits * tech.calibration("mux_area_um2_per_bit") * scale
    dynamic = width_bits * tech.calibration("mux_dynamic_uw_per_bit") * scale
    static = area * tech.calibration("static_power_density_nw_per_um2") * 4.0
    return BlockCharacterisation(
        name=f"mux:{width_bits}b_{num_inputs}to1",
        area_um2=area,
        critical_path_ps=80.0,
        static_power_nw=static,
        dynamic_power_uw=dynamic,
    )


def aggregate_blocks(blocks: Iterable[BlockCharacterisation], name: str) -> BlockCharacterisation:
    """Sum areas and powers of several blocks; critical path is the maximum."""
    blocks = list(blocks)
    if not blocks:
        raise ConfigurationError("cannot aggregate an empty block list")
    return BlockCharacterisation(
        name=name,
        area_um2=sum(b.area_um2 for b in blocks),
        critical_path_ps=max(b.critical_path_ps for b in blocks),
        static_power_nw=sum(b.static_power_nw for b in blocks),
        dynamic_power_uw=sum(b.dynamic_power_uw for b in blocks),
    )
