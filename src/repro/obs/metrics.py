"""Process-local metrics registry: counters, gauges, histograms.

Design constraints, in priority order:

1. **Zero perturbation.**  Nothing here touches a random generator or a
   simulation observable.  Instrumented code publishes *after* computing
   its results (or increments plain integers), so a run with metrics on is
   byte-identical to one with metrics off.
2. **Exact mergeability.**  Counters are exact Python integers and
   histogram buckets are exact integer counts, so merging per-shard
   snapshots (sums for counters, bucket-wise sums for histograms) gives
   *the same numbers* as a serial run — not approximately, byte for byte
   once serialized.  This is what makes ``--jobs N`` telemetry trustworthy.
3. **Near-zero disabled overhead.**  The hot paths guard on the
   module-level :data:`ACTIVE` registry being ``None`` (one attribute read
   and an identity check); most publication happens once per run from
   already-maintained aggregates, never per event.  Aggregation that must
   scan a large result table is *deferred*: the run parks a closure via
   :meth:`MetricsRegistry.defer` and the scan happens at snapshot time,
   outside the simulation's critical path.

Gauges hold the last value set (floats allowed); merging keeps the last
shard's value in shard order, which is deterministic because shards are
merged in grid order regardless of completion order.
"""

from __future__ import annotations

import contextlib
from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Sequence

from ..exceptions import ConfigurationError

__all__ = [
    "ACTIVE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "collecting",
    "disable_metrics",
    "enable_metrics",
    "merge_snapshots",
]

#: The active registry instrumented code publishes into, or ``None`` when
#: metrics are disabled (the default).  Read it as ``metrics.ACTIVE`` —
#: hot paths must not cache it across enable/disable boundaries.
ACTIVE: "MetricsRegistry | None" = None


class Counter:
    """A monotonically increasing exact integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        self.value += int(amount)


class Gauge:
    """A point-in-time value (float or int); holds the last value set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)


#: Default histogram buckets: half-open latency decades in seconds,
#: ``(-inf, 1e-9], (1e-9, 1e-8], ..., (1e-1, 1], (1, inf)``.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0**e for e in range(-9, 1))


class Histogram:
    """Fixed-bound bucket histogram with exact integer counts.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last edge.
    No float sum is kept — float accumulation order would make merged
    snapshots depend on shard scheduling, which would break the exact
    serial-equals-parallel merge guarantee.
    """

    __slots__ = ("name", "bounds", "counts", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        edges = [float(edge) for edge in bounds]
        if not edges or sorted(edges) != edges or len(set(edges)) != len(edges):
            raise ConfigurationError(
                f"histogram {name!r} needs strictly increasing bucket bounds"
            )
        self.name = name
        self.bounds = tuple(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0

    def observe(self, value: float) -> None:
        self.observe_many((value,))

    def observe_many(self, values: Iterable[float]) -> None:
        bounds = self.bounds
        counts = self.counts
        n = 0
        for value in values:
            index = bisect_right(bounds, value)
            # bisect_right puts an exact edge hit one past its bucket;
            # pull it back so edges are inclusive upper bounds.
            if index and bounds[index - 1] == value:
                index -= 1
            counts[index] += 1
            n += 1
        self.count += n

    def observe_counts(self, counts: Sequence[int]) -> None:
        """Add pre-bucketed observation counts in one shot.

        ``counts`` must align with this histogram's buckets —
        ``len(bounds) + 1`` entries with the overflow bucket last.  Callers
        that bucket large batches vectorially (e.g. the netsim engines via
        ``numpy.searchsorted``) publish through this instead of paying a
        per-value Python loop; the addition stays exact-integer, so merge
        semantics are unchanged.
        """
        if len(counts) != len(self.counts):
            raise ConfigurationError(
                f"histogram {self.name!r} expected {len(self.counts)} bucket "
                f"counts, got {len(counts)}"
            )
        total = 0
        own = self.counts
        for index, value in enumerate(counts):
            value = int(value)
            if value < 0:
                raise ConfigurationError(
                    f"histogram {self.name!r} bucket counts must be >= 0"
                )
            own[index] += value
            total += value
        self.count += total


class MetricsRegistry:
    """Named counters/gauges/histograms with deterministic JSON snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._deferred: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif tuple(float(edge) for edge in bounds) != instrument.bounds:
            raise ConfigurationError(
                f"histogram {name!r} already registered with different bounds"
            )
        return instrument

    def inc(self, name: str, amount: int = 1) -> None:
        """Get-or-create convenience for one-shot counter increments."""
        self.counter(name).inc(amount)

    # -------------------------------------------------------- deferred publish
    def defer(self, publish: Callable[["MetricsRegistry"], None]) -> None:
        """Queue a publication callback to run at the next snapshot.

        This moves table-scan aggregation off an instrumented hot path: the
        caller parks a closure over its finished, immutable data (e.g. the
        netsim engines defer their per-record sums over thousands of
        transfer records) and the scan runs at scrape time instead of
        inside the timed simulation.  Callbacks run FIFO, so deferred
        publication produces the same deterministic totals as eager
        publication would.
        """
        self._deferred.append(publish)

    def flush_deferred(self) -> None:
        """Run queued publication callbacks (a callback may defer more)."""
        while self._deferred:
            pending, self._deferred = self._deferred, []
            for publish in pending:
                publish(self)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """Plain-JSON state, keys sorted — deterministic for identical runs."""
        self.flush_deferred()
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].counts),
                    "count": self._histograms[name].count,
                }
                for name in sorted(self._histograms)
            },
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge per-shard snapshots exactly, in the order given.

    Counters sum (exact integers), histograms sum bucket-wise (their bounds
    must agree), gauges keep the last shard's value.  Merging the shard
    snapshots of a ``--jobs N`` sweep in grid order therefore reproduces
    the serial run's telemetry byte for byte.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = value
        for name, state in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(state["bounds"]),
                    "counts": list(state["counts"]),
                    "count": int(state["count"]),
                }
                continue
            if merged["bounds"] != list(state["bounds"]):
                raise ConfigurationError(
                    f"histogram {name!r} bucket bounds differ across shards"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], state["counts"])
            ]
            merged["count"] += int(state["count"])
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }


# ------------------------------------------------------------------ activation
def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process's active registry."""
    global ACTIVE
    ACTIVE = registry if registry is not None else MetricsRegistry()
    return ACTIVE


def disable_metrics() -> None:
    """Deactivate metrics collection (instrumented code reverts to no-ops)."""
    global ACTIVE
    ACTIVE = None


def active_registry() -> MetricsRegistry | None:
    """The registry instrumented code currently publishes into, if any."""
    return ACTIVE


@contextlib.contextmanager
def collecting(registry: MetricsRegistry | None = None):
    """Scope a registry activation; restores the previous one on exit."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous
