"""Tests for the netsim statistics layer (percentiles, warm-up, throughput)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.engine import NetTransferRecord
from repro.netsim.metrics import (
    LatencySummary,
    compute_metrics,
    nearest_rank_percentile,
)


def _record(arrival: float, completion: float, **overrides) -> NetTransferRecord:
    defaults = dict(
        source=1,
        destination=0,
        payload_bits=512,
        code_name="H(71,64)",
        arrival_time_s=arrival,
        first_start_time_s=arrival,
        completion_time_s=completion,
        attempts=1,
        packets_total=1,
        packets_sent=1,
        packets_delivered=1,
        packets_dropped=0,
        packets_with_residual_errors=0,
        residual_bit_errors=0,
        coded_bits_sent=568,
        energy_j=1e-9,
        rejected=False,
    )
    defaults.update(overrides)
    return NetTransferRecord(**defaults)


class TestNearestRankPercentile:
    def test_known_values(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
        assert nearest_rank_percentile(samples, 50.0) == 5.0
        assert nearest_rank_percentile(samples, 95.0) == 10.0
        assert nearest_rank_percentile(samples, 100.0) == 10.0
        assert nearest_rank_percentile(samples, 10.0) == 1.0

    def test_empty_vector_gives_zero(self):
        assert nearest_rank_percentile(np.array([]), 50.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        samples = np.array([7.25])
        for percentile in (1e-9, 1.0, 50.0, 99.0, 100.0):
            assert nearest_rank_percentile(samples, percentile) == 7.25

    def test_p100_is_the_maximum(self):
        samples = np.array([1.0, 2.0, 3.0])
        assert nearest_rank_percentile(samples, 100.0) == 3.0

    @pytest.mark.parametrize("percentile", [0.0, -1.0, -50.0, 100.0001, 101.0, 1000.0])
    def test_out_of_range_rejected(self, percentile):
        with pytest.raises(ConfigurationError):
            nearest_rank_percentile(np.array([1.0]), percentile)

    def test_tiny_percentile_hits_first_sample_without_clamping(self):
        # rank = ceil(p/100 * N) is already >= 1 for every valid p; the old
        # max(rank, 1) clamp only ever masked the invalid p = 0 case.
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert nearest_rank_percentile(samples, 0.001) == 1.0


class TestLatencySummary:
    def test_summary_matches_numpy(self):
        samples = [3.0, 1.0, 2.0, 4.0]
        summary = LatencySummary.from_samples(samples)
        assert summary.count == 4
        assert summary.mean_s == pytest.approx(2.5)
        assert summary.min_s == 1.0
        assert summary.max_s == 4.0
        assert summary.p50_s == 2.0

    def test_empty_summary_is_all_zero(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean_s == 0.0


class TestComputeMetrics:
    def test_warmup_trims_in_arrival_order(self):
        # Records appended out of arrival order; the first (by arrival) 20%
        # must be excluded from the latency summary.
        records = [_record(arrival=float(i), completion=float(i) + (i + 1)) for i in range(10)]
        records.reverse()
        metrics = compute_metrics(
            records, busy_s_by_reader={}, num_channels=12, warmup_fraction=0.2
        )
        assert metrics.warmup_transfers_trimmed == 2
        assert metrics.latency.count == 8
        # Trimmed records are the arrival-earliest ones (latencies 1 and 2).
        assert metrics.latency.min_s == 3.0

    def test_throughput_and_utilization(self):
        records = [_record(0.0, 1.0), _record(0.5, 2.0)]
        metrics = compute_metrics(
            records,
            busy_s_by_reader={0: 1.0},
            num_channels=2,
            warmup_fraction=0.0,
        )
        assert metrics.sim_end_time_s == 2.0
        assert metrics.offered_payload_bits == 1024
        assert metrics.offered_throughput_bits_per_s == pytest.approx(512.0)
        assert metrics.channel_utilization[0] == pytest.approx(0.5)
        assert metrics.channel_utilization[1] == 0.0
        assert metrics.mean_channel_utilization == pytest.approx(0.25)
        assert metrics.peak_channel_utilization == pytest.approx(0.5)

    def test_rejected_records_count_as_offered_but_not_delivered(self):
        records = [
            _record(0.0, 1.0),
            _record(0.0, 0.0, rejected=True, packets_sent=0, packets_delivered=0, energy_j=0.0),
        ]
        metrics = compute_metrics(
            records, busy_s_by_reader={}, num_channels=1, warmup_fraction=0.0
        )
        assert metrics.transfers_completed == 1
        assert metrics.transfers_rejected == 1
        assert metrics.offered_payload_bits == 1024
        assert metrics.delivered_payload_bits == 512

    def test_partial_delivery_scales_payload_bits(self):
        record = _record(0.0, 1.0, packets_total=4, packets_delivered=3, packets_dropped=1)
        assert record.delivered_payload_bits == 384

    def test_error_rates(self):
        records = [
            _record(
                0.0,
                1.0,
                packets_sent=12,
                packets_total=10,
                packets_delivered=10,
                packets_with_residual_errors=2,
                residual_bit_errors=5,
            )
        ]
        metrics = compute_metrics(
            records, busy_s_by_reader={}, num_channels=1, warmup_fraction=0.0
        )
        assert metrics.delivered_packet_error_rate == pytest.approx(0.2)
        assert metrics.retransmission_rate == pytest.approx(2 / 12)
        assert metrics.delivered_bit_error_rate == pytest.approx(5 / 512)

    def test_bad_warmup_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_metrics([], busy_s_by_reader={}, num_channels=1, warmup_fraction=1.0)
