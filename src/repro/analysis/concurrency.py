"""Concurrency rules (``RPR2xx``): lock discipline for threaded code.

The analyzer does not require annotations.  For each class it

1. finds the *lock attributes* — ``self.X = threading.Lock()`` (or
   ``RLock``/``Condition``) assignments;
2. infers the *guarded set* — every ``self._y`` attribute that is ever
   read or written inside a ``with self.X:`` block is taken to be state
   that ``X`` protects;
3. flags any access to a guarded attribute outside a ``with`` block of
   (one of) its observed lock(s).

Construction is exempt (``__init__``/``__post_init__``/``__del__`` run
before/after the object is shared), and so is any method whose docstring
declares the convention ``"caller holds the lock"`` — the idiom this
codebase already uses for private helpers invoked under an outer ``with``.
That makes the contract machine-checked *and* self-documenting: delete the
docstring sentence and the linter immediately demands the lock.

``RPR202`` separately flags manual ``.acquire()`` calls that are not
paired with a ``try/finally`` release — the pattern that leaks a held lock
on any exception between acquire and release.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from .astutil import ancestors, dotted_name, enclosing_function, is_self_attribute
from .registry import rule

__all__ = ["check_lock_discipline", "check_manual_acquire"]

#: Constructors whose result is treated as a lock object.
_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "multiprocessing.Lock", "multiprocessing.RLock",
    }
)

#: Methods that run while the object is not yet (or no longer) shared.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__del__"})

_HELD_BY_CALLER_RE = re.compile(r"caller\s+(?:must\s+)?holds?\s+(?:the\s+)?\S*lock", re.I)


def _lock_attributes(cls: ast.ClassDef, imports) -> Set[str]:
    """Names X where ``self.X = threading.Lock()``-style assignments occur."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        resolved = imports.resolve_call(node.value.func)
        if resolved not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if is_self_attribute(target):
                locks.add(target.attr)
    return locks


def _with_lock_names(node: ast.AST, locks: Set[str]) -> Set[str]:
    """Lock attrs held at ``node`` (every enclosing ``with self.X:``)."""
    held: Set[str] = set()
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expression = item.context_expr
                if is_self_attribute(expression) and expression.attr in locks:
                    held.add(expression.attr)
    return held


def _is_write(node: ast.Attribute) -> bool:
    """Whether the access stores (directly or through ``self._x[k] = v``)."""
    if isinstance(node.ctx, (ast.Store, ast.Del)):
        return True
    current: ast.AST = node
    parent = getattr(node, "parent", None)
    while isinstance(parent, ast.Subscript) and parent.value is current:
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
        current, parent = parent, getattr(parent, "parent", None)
    return False


def _method_exempt(node: ast.AST) -> bool:
    """Whether the enclosing method is construction or a documented helper."""
    function = enclosing_function(node)
    while function is not None:
        if function.name in _EXEMPT_METHODS:
            return True
        docstring = ast.get_docstring(function)
        if docstring and _HELD_BY_CALLER_RE.search(docstring):
            return True
        function = enclosing_function(function)
    return False


@rule(
    "RPR201",
    "lock-discipline",
    "attributes observed under `with self._lock:` must always be accessed "
    "under it",
    scope="lock_paths",
)
def check_lock_discipline(ctx) -> List:
    findings = []
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attributes(cls, ctx.imports)
        if not locks:
            continue
        # Bound methods read through ``self._helper(...)`` are code, not
        # shared state — reading one is always safe.
        methods = {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Pass 1: infer which self._* attributes each lock guards.
        guarded: Dict[str, Set[str]] = {}
        accesses = []
        for node in ast.walk(cls):
            if not is_self_attribute(node) or node.attr in locks:
                continue
            if not node.attr.startswith("_") or node.attr.startswith("__"):
                continue
            if node.attr in methods:
                continue
            held = _with_lock_names(node, locks)
            accesses.append((node, held))
            for lock in held:
                guarded.setdefault(node.attr, set()).add(lock)
        # Pass 2: flag accesses to guarded attributes with none of their
        # locks held (outside construction / documented helpers).
        for node, held in accesses:
            lock_set = guarded.get(node.attr)
            if not lock_set or held & lock_set:
                continue
            if _method_exempt(node):
                continue
            lock_names = " / ".join(f"self.{name}" for name in sorted(lock_set))
            verb = "written" if _is_write(node) else "read"
            findings.append(
                ctx.finding(
                    node,
                    "RPR201",
                    f"self.{node.attr} is guarded by `with {lock_names}:` "
                    f"elsewhere in {cls.name} but {verb} here without the "
                    "lock (racy); hold the lock, or document the helper with "
                    "'caller holds the lock'",
                )
            )
    return findings


def _releases(tree_nodes, target: Optional[str]) -> bool:
    """Whether any node in ``tree_nodes`` calls ``<target>.release()``."""
    for node in tree_nodes:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "release"
                and dotted_name(child.func.value) == target
            ):
                return True
    return False


def _sibling_statements(statement: ast.stmt) -> List[ast.stmt]:
    """Statements following ``statement`` in its enclosing block."""
    parent = getattr(statement, "parent", None)
    if parent is None:
        return []
    for attribute in ("body", "orelse", "finalbody"):
        block = getattr(parent, attribute, None)
        if isinstance(block, list) and statement in block:
            index = block.index(statement)
            return block[index + 1:]
    return []


@rule(
    "RPR202",
    "manual-acquire",
    "lock.acquire() must be `with lock:` or paired with try/finally release",
    scope="lock_paths",
)
def check_manual_acquire(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        if (
            not isinstance(node, ast.Call)
            or not isinstance(node.func, ast.Attribute)
            or node.func.attr != "acquire"
        ):
            continue
        target = dotted_name(node.func.value)
        if target is None or "lock" not in target.lower():
            continue
        # Acceptable shape 1: the acquire sits inside a Try whose finally
        # releases the same object.
        safe = False
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.Try) and _releases(ancestor.finalbody, target):
                safe = True
                break
        # Acceptable shape 2: acquire immediately precedes such a Try.
        if not safe:
            statement = node
            while statement is not None and not isinstance(statement, ast.stmt):
                statement = getattr(statement, "parent", None)
            if statement is not None:
                for sibling in _sibling_statements(statement):
                    if isinstance(sibling, ast.Try) and _releases(
                        sibling.finalbody, target
                    ):
                        safe = True
                    break
        if not safe:
            findings.append(
                ctx.finding(
                    node,
                    "RPR202",
                    f"{target}.acquire() without `with` or a try/finally "
                    "release leaks the lock on any exception in between; use "
                    f"`with {target}:`",
                )
            )
    return findings
