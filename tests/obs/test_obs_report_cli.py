"""CLI surfacing tests: --metrics/--progress/--trace/--log-level, obs-report."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.experiments.runner import main
from repro.obs.logutil import setup_logging, shard_logging_context
from repro.obs.report import render_run_report

#: Fast single-table experiment for CLI round-trips.
EXPERIMENT = "calibration"
#: Fast experiment whose shards exercise instrumented code paths.
METRIC_EXPERIMENT = "figure5"


@pytest.fixture
def manifest_dir(tmp_path):
    return str(tmp_path / "obs")


class TestRunnerFlags:
    def test_metrics_flag_prints_merged_counters(self, capsys, manifest_dir):
        assert main([METRIC_EXPERIMENT, "--metrics", "--manifest-dir", manifest_dir]) == 0
        out = capsys.readouterr().out
        assert f"[metrics] {METRIC_EXPERIMENT}" in out
        assert "link.design_point.cache_misses" in out

    def test_progress_flag_streams_heartbeat_to_stderr(self, capsys, manifest_dir):
        assert main([EXPERIMENT, "--progress", "--manifest-dir", manifest_dir]) == 0
        captured = capsys.readouterr()
        assert f"[{EXPERIMENT}]" in captured.err
        assert "shards" in captured.err
        assert f"[{EXPERIMENT}]" not in captured.out  # reports stay clean

    def test_trace_flag_appends_span_lines(self, tmp_path, capsys, manifest_dir):
        trace = str(tmp_path / "trace.jsonl")
        assert main([EXPERIMENT, "--trace", trace, "--manifest-dir", manifest_dir]) == 0
        with open(trace, encoding="utf-8") as handle:
            names = {json.loads(line)["name"] for line in handle}
        assert "orchestrator.shard" in names

    def test_log_level_info_reports_csv_write(self, tmp_path, capsys, manifest_dir):
        csv_dir = str(tmp_path / "csv")
        assert (
            main(
                [
                    EXPERIMENT,
                    "--csv",
                    csv_dir,
                    "--log-level",
                    "info",
                    "--manifest-dir",
                    manifest_dir,
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "INFO repro.experiments.runner" in err
        assert f"{EXPERIMENT}.csv" in err


class TestObsReportSubcommand:
    def test_renders_manifest_written_by_a_run(self, capsys, manifest_dir):
        assert main([METRIC_EXPERIMENT, "--manifest-dir", manifest_dir]) == 0
        capsys.readouterr()
        assert main(["obs-report", METRIC_EXPERIMENT, "--manifest-dir", manifest_dir]) == 0
        out = capsys.readouterr().out
        assert f"Run report — experiment {METRIC_EXPERIMENT!r}" in out
        assert "Merged metrics (exact across shards)" in out

    def test_without_names_renders_every_manifest(self, capsys, manifest_dir):
        assert main([EXPERIMENT, "--manifest-dir", manifest_dir]) == 0
        capsys.readouterr()
        assert main(["obs-report", "--manifest-dir", manifest_dir]) == 0
        assert "Run report" in capsys.readouterr().out

    def test_missing_manifest_directory_fails(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert main(["obs-report", "--manifest-dir", missing]) == 1
        assert "no run manifests" in capsys.readouterr().err

    def test_render_mentions_resumed_shards(self):
        text = render_run_report(
            {
                "experiment": "demo",
                "fingerprint": "abc",
                "num_shards": 2,
                "resumed_shards": [0],
                "metrics": {"counters": {"n": 1}, "gauges": {}, "histograms": {}},
                "shards": [
                    {"index": 0, "params": {}, "metrics": None},
                    {
                        "index": 1,
                        "params": {},
                        "metrics": {
                            "counters": {"netsim.events.total": 7},
                            "gauges": {},
                            "histograms": {},
                        },
                    },
                ],
            }
        )
        assert "(1 resumed from checkpoint)" in text
        assert "(resumed from checkpoint)" in text
        assert "7 events" in text


class TestLogging:
    def test_setup_logging_is_idempotent(self):
        logger = setup_logging("info")
        before = [h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)]
        logger = setup_logging("debug")
        after = [h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(before) == len(after) == 1
        assert logger.level == logging.DEBUG
        setup_logging("warning")

    def test_shard_context_tags_records(self):
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        logger = setup_logging("info")
        # Route through the real handler's formatter by borrowing it.
        real = next(
            h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)
        )
        handler.setFormatter(real.formatter)
        for log_filter in real.filters:
            handler.addFilter(log_filter)
        logger.addHandler(handler)
        try:
            with shard_logging_context(4):
                logging.getLogger("repro.experiments.orchestrator").info("inside")
            logging.getLogger("repro.experiments.orchestrator").info("outside")
        finally:
            logger.removeHandler(handler)
            setup_logging("warning")
        lines = stream.getvalue().splitlines()
        assert lines[0] == "INFO repro.experiments.orchestrator [shard 4]: inside"
        assert lines[1] == "INFO repro.experiments.orchestrator: outside"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("chatty")
