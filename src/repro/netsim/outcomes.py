"""Packet-outcome sampling for the network simulator.

A transfer is carried as fixed-size packets, each protected by an optional
CRC and encoded with the link configuration's ECC.  What the engine needs
per (re)transmission attempt is only the *outcome*: how many packets failed
and were caught by the CRC (candidates for ARQ retransmission), how many
slipped through with residual errors, and how many payload bits those
residual errors corrupted.  Two interchangeable samplers produce that
outcome:

* :class:`ProbabilisticOutcomeSampler` — the fast default.  Per-block
  decode failures are i.i.d. Bernoulli in the decoder's analytic
  frame-error probability (:func:`repro.coding.theory.block_error_probability`,
  exact for the paper's Hamming codes), sampled as one attempt-level gate
  draw plus a conditional failed-block pattern for the rare attempts the
  gate flags; CRC escapes use the standard ``2^-width`` random-error
  approximation, and residual bit counts are drawn with the
  dominant-error-event conditional mean (a weight-``2t+1`` codeword error
  per failed block).  No codeword ever materialises, which is what keeps
  the engine in the 10^6 packets/s range.

  The sampler's stream contract is what makes the epoch-batched engine
  possible: every attempt consumes exactly *one* double from the primary
  stream — compared against the attempt-level failure probability
  ``1 - (1 - p_block)^(packets x blocks)``, so "any block failed" is
  decided without materialising per-block uniforms — while the
  data-dependent draws of the rare failing attempts (the conditional
  failed-block pattern, CRC escapes, residual-bit binomials) come from a
  separate *resolution* stream.  Because ``Generator.random`` fills
  sequentially from the bit stream, one vectorized primary draw for many
  attempts is bit-identical to per-attempt draws — so the batched engine
  draws whole epochs at once (:meth:`~ProbabilisticOutcomeSampler.outcome_from_uniform`
  per queued attempt) and stays byte-identical to the reference engine's
  per-event draws.  The per-block joint distribution is unchanged: the
  conditional pattern (first failed block truncated-geometric, the rest
  i.i.d. Bernoulli) is exactly i.i.d. per-block failures conditioned on at
  least one.
* :class:`BitExactOutcomeSampler` — the cross-validation twin.  Every
  packet is CRC-appended (batch table CRC), encoded, corrupted by a real
  fault-injection model
  (:class:`~repro.simulation.faults.IndependentErrorModel` /
  :class:`~repro.simulation.faults.BurstErrorModel`) and decoded — all on
  the packed ``uint64`` substrate: codewords, error masks and corrections
  stay packed end to end, residual payload errors are popcounts against
  per-block payload-column masks, and only the rare packets whose
  protected bits were actually disturbed re-run the CRC on their decoded
  bits.  Still slower than the probabilistic mode, but no longer by orders
  of magnitude — it is the ground truth the probabilistic mode is tested
  against (``tests/netsim/test_engine.py``).

Both samplers draw from engine-owned generators (a primary stream plus, for
the probabilistic sampler, the derived resolution stream), so a simulation's
outcome depends only on its seed and event order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..coding.base import decode_blocks_packed, encode_blocks_packed
from ..coding.crc import CyclicRedundancyCheck
from ..coding.packed import bit_weights, pack_bits, range_mask, unpack_bits
from ..coding.theory import block_error_probability
from ..exceptions import ConfigurationError

if hasattr(np, "bitwise_count"):
    _bitwise_count = np.bitwise_count
else:  # pragma: no cover - NumPy < 2.0 fallback
    from ..coding.packed import popcount_rows

    def _bitwise_count(words):
        return popcount_rows(words.reshape(-1, words.shape[-1])).reshape(words.shape[:-1] + (1,))


def _mask_popcounts(residual_frames: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Per-packet popcounts of ``(P, bpp, W)`` residual words under ``(bpp, W)`` masks."""
    return _bitwise_count(residual_frames & masks[np.newaxis, :, :]).sum(
        axis=(1, 2), dtype=np.int64
    )


#: Word value of each in-word bit position, derived from the substrate's own
#: packing (endian-agnostic by construction).
_BIT_WEIGHTS = bit_weights()


def _packed_mask_from_positions(positions: np.ndarray, num_blocks: int, n: int) -> np.ndarray:
    """Packed ``(num_blocks, W)`` XOR mask with ones at flat bit ``positions``.

    Positions index the attempt's bits in row-major transmission order; the
    in-word placement comes from :func:`repro.coding.packed.bit_weights`,
    so it matches :func:`pack_bits` on any host.
    """
    num_words = -(-n // 64)
    mask = np.zeros(num_blocks * num_words, dtype=np.uint64)
    block, offset = np.divmod(positions, n)
    word, bit = np.divmod(offset, 64)
    np.bitwise_or.at(mask, block * num_words + word, _BIT_WEIGHTS[bit])
    return mask.reshape(num_blocks, num_words)

__all__ = [
    "TransmissionOutcome",
    "ProbabilisticOutcomeSampler",
    "BitExactOutcomeSampler",
    "packets_for_payload",
]


@dataclass(frozen=True, slots=True)
class TransmissionOutcome:
    """What happened to the packets of one (re)transmission attempt.

    ``slots=True``: the engine materialises one of these per transmission
    attempt, so the instance dict would be pure allocation overhead.
    """

    packets: int
    failed_detected: int
    delivered_with_errors: int
    residual_bit_errors: int

    @property
    def delivered(self) -> int:
        """Packets handed to the destination (clean or with escaped errors)."""
        return self.packets - self.failed_detected


def _frame_geometry(code, packet_bits: int, crc_width: int) -> int:
    """ECC blocks needed to carry one packet plus its CRC (zero padded)."""
    if packet_bits < 1:
        raise ConfigurationError("packet size must be at least one bit")
    return -(-(packet_bits + crc_width) // code.k)


class ProbabilisticOutcomeSampler:
    """Sample packet outcomes from analytic per-block failure probabilities.

    Parameters
    ----------
    code:
        The configured coding scheme (``n``, ``k``, ``correctable_errors``).
    raw_ber:
        Raw channel bit error probability at the link's operating point (or
        the fault model's long-run average when a burst model is active).
    packet_bits:
        Payload bits per packet.
    crc_width:
        CRC bits appended per packet; ``0`` disables detection entirely
        (every failed packet is delivered carrying residual errors).
    rng:
        The engine's generator; all draws consume this single stream.

    Residual *bit* counts are thinned to the payload fraction of the frame
    (errors landing in the CRC slot or zero padding do not corrupt
    payload), matching the bit-exact sampler's payload-column comparison.
    The packet-level ``delivered_with_errors`` flag stays frame-wide: any
    failed block marks the packet, payload-touching or not.
    """

    __slots__ = (
        "code", "raw_ber", "packet_bits", "crc_width", "blocks_per_packet",
        "_rng", "undetected_probability", "_payload_fraction",
        "_failure_params", "_disturb_cache", "_attempt_failure_cache",
        "block_failure_probability", "_residual_rate",
    )

    def __init__(
        self,
        code,
        raw_ber: float,
        *,
        packet_bits: int,
        crc_width: int = 0,
        rng: np.random.Generator,
    ):
        if not 0.0 <= raw_ber <= 1.0:
            raise ConfigurationError("raw BER must lie in [0, 1]")
        self.code = code
        self.raw_ber = float(raw_ber)
        self.packet_bits = int(packet_bits)
        self.crc_width = int(crc_width)
        self.blocks_per_packet = _frame_geometry(code, packet_bits, self.crc_width)
        self._rng = rng

        #: Probability a failed packet passes the CRC anyway (random-error
        #: approximation: a uniformly random remainder matches with 2^-w).
        self.undetected_probability = 2.0 ** (-self.crc_width) if self.crc_width else 1.0
        #: Fraction of the packet's frame occupied by payload.  Residual
        #: errors land uniformly over the frame's message bits; those in the
        #: CRC slot or the zero padding do not corrupt payload, so the
        #: sampled counts are thinned by this fraction — mirroring the
        #: bit-exact sampler, which only compares the payload columns.
        self._payload_fraction = self.packet_bits / (self.blocks_per_packet * int(code.k))
        #: (block failure probability, residual rate) per raw BER.  With a
        #: time-varying channel the engine passes the drifted raw BER per
        #: attempt; the drift model quantises its multipliers, so this cache
        #: stays small.
        self._failure_params: dict[float, tuple[float, float]] = {}
        self._disturb_cache: dict[float, float] = {}
        #: (num_packets, raw BER) -> attempt-level failure probability.
        self._attempt_failure_cache: dict[tuple, float] = {}
        self.block_failure_probability, self._residual_rate = self._params_for(self.raw_ber)

    def _params_for(self, raw_ber: float) -> tuple[float, float]:
        """Block failure probability and residual-bit rate at one raw BER."""
        cached = self._failure_params.get(raw_ber)
        if cached is not None:
            return cached
        if not 0.0 <= raw_ber <= 1.0:
            raise ConfigurationError("raw BER must lie in [0, 1]")
        t = int(getattr(self.code, "correctable_errors", 0))
        n, k = int(self.code.n), int(self.code.k)
        failure = block_error_probability(raw_ber, n, t)
        # Conditional mean residual message-bit errors per *failed* block.
        # For t >= 1 the dominant failure event (t+1 channel errors) leaves a
        # weight-(2t+1) codeword error, of which k/n lands in message bits;
        # for t = 0 it is the mean raw error count conditioned on >= 1.
        if t >= 1:
            mean = (2 * t + 1) * k / n
        elif failure > 0.0:
            mean = n * raw_ber / failure * (k / n)
        else:
            mean = 1.0
        mean = min(float(k), max(1.0, mean))
        # Per-bit rate of the 1 + Binomial(k-1, r) residual draw whose mean
        # matches the conditional expectation above.
        residual_rate = (mean - 1.0) / (k - 1) if k > 1 else 0.0
        self._failure_params[raw_ber] = (failure, residual_rate)
        return failure, residual_rate

    def failure_probability_for(self, raw_ber: float | None = None) -> float:
        """Per-block decode-failure probability at one raw BER (cached)."""
        if raw_ber is None:
            return self.block_failure_probability
        return self._params_for(float(raw_ber))[0]

    def primary_draw_count(self, num_packets: int) -> int:
        """Doubles one attempt consumes from the primary stream (always 1).

        Fixed and known before any randomness is drawn — the property the
        epoch-batched engine relies on to draw many attempts' uniforms in
        one vectorized ``Generator.random`` call.
        """
        return 1

    def attempt_failure_probability(
        self, num_packets: int, raw_ber: float | None = None
    ) -> float:
        """Probability at least one block of the attempt fails to decode.

        ``1 - (1 - p_block)^(packets x blocks_per_packet)`` — the threshold
        the attempt's single primary uniform is compared against.  Cached
        per ``(num_packets, raw BER)``; the drift model quantises its
        multipliers and attempt sizes repeat (full transfers plus ARQ
        remainders), so the cache stays small.
        """
        key = (num_packets, raw_ber)
        cached = self._attempt_failure_cache.get(key)
        if cached is None:
            p = (
                self.block_failure_probability
                if raw_ber is None
                else self._params_for(float(raw_ber))[0]
            )
            blocks = num_packets * self.blocks_per_packet
            if p <= 0.0:
                cached = 0.0
            elif p >= 1.0:
                cached = 1.0
            else:
                cached = -math.expm1(blocks * math.log1p(-p))
            self._attempt_failure_cache[key] = cached
        return cached

    def block_disturb_probability(self, raw_ber: float | None = None) -> float:
        """Probability one block suffers at least one raw channel flip.

        This is the receiver-visible event rate of the decoder's correction
        telemetry — the signal the adaptive controller's failure monitor
        feeds on.  Much larger than the block *failure* probability at the
        design points the links operate at, which is what makes drift
        observable within a simulation's packet budget.
        """
        p = self.raw_ber if raw_ber is None else float(raw_ber)
        cached = self._disturb_cache.get(p)
        if cached is None:
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError("raw BER must lie in [0, 1]")
            cached = float(-np.expm1(int(self.code.n) * np.log1p(-p))) if p < 1.0 else 1.0
            self._disturb_cache[p] = cached
        return cached

    @property
    def coded_bits_per_packet(self) -> int:
        """Wire bits occupied by one packet (blocks x n)."""
        return self.blocks_per_packet * int(self.code.n)

    def sample(
        self,
        num_packets: int,
        *,
        raw_ber: float | None = None,
        resolve_rng: np.random.Generator | None = None,
    ) -> TransmissionOutcome:
        """Draw the outcome of transmitting ``num_packets`` packets.

        ``raw_ber`` overrides the channel's raw error probability for this
        attempt (the engine passes the drift-degraded value under a
        time-varying channel).  No extra randomness is consumed for the
        override itself, and an override equal to the design BER reproduces
        the static channel draw for draw — which is what makes a zero-drift
        adaptive run byte-identical to a static one.

        ``resolve_rng`` is the stream the data-dependent draws of a failing
        attempt come from (the engine passes its dedicated resolution
        stream, keeping the primary stream's consumption fixed per attempt);
        the default resolves from the sampler's own generator, preserving
        the historical single-stream behaviour for standalone use.
        """
        if num_packets < 1:
            raise ConfigurationError("an attempt must carry at least one packet")
        return self.outcome_from_uniform(
            self._rng.random(),
            num_packets,
            raw_ber=raw_ber,
            resolve_rng=self._rng if resolve_rng is None else resolve_rng,
        )

    def outcome_from_uniform(
        self,
        uniform: float,
        num_packets: int,
        *,
        raw_ber: float | None = None,
        resolve_rng: np.random.Generator,
    ) -> TransmissionOutcome:
        """Resolve an attempt's outcome from its pre-drawn primary uniform.

        ``uniform`` is the attempt's single primary-stream double (e.g. cut
        out of one epoch-wide draw); the rare failing attempts consume
        further draws from ``resolve_rng`` only.  Calling this per attempt
        in schedule order on a vectorized draw is bit-identical to
        per-attempt :meth:`sample` calls against the same two streams.
        """
        if uniform >= self.attempt_failure_probability(num_packets, raw_ber):
            return TransmissionOutcome(num_packets, 0, 0, 0)
        return self.resolve_failed_attempt(
            num_packets, raw_ber=raw_ber, resolve_rng=resolve_rng
        )

    def resolve_failed_attempt(
        self,
        num_packets: int,
        *,
        raw_ber: float | None = None,
        resolve_rng: np.random.Generator,
    ) -> TransmissionOutcome:
        """Outcome of an attempt *known* to have at least one failed block.

        Samples the failed-block pattern conditioned on the attempt-level
        failure event the primary uniform decided: the first failed block
        index is truncated-geometric (one inverse-CDF uniform), the blocks
        after it fail i.i.d. (one binomial for the count, a uniform subset
        for the positions) — together exactly the joint law of i.i.d.
        per-block Bernoulli failures given at least one.  Every draw comes
        from ``resolve_rng``.
        """
        failure_probability, residual_rate = (
            (self.block_failure_probability, self._residual_rate)
            if raw_ber is None
            else self._params_for(float(raw_ber))
        )
        rng = resolve_rng
        blocks_per_packet = self.blocks_per_packet
        total_blocks = num_packets * blocks_per_packet
        # First failed block (flat, row-major transmission order): smallest
        # j with CDF(j) = (1 - q^(j+1)) / (1 - q^N) >= v.
        v = rng.random()
        if failure_probability >= 1.0:
            first = 0
        else:
            attempt_probability = self.attempt_failure_probability(num_packets, raw_ber)
            first = (
                math.ceil(
                    math.log1p(-v * attempt_probability)
                    / math.log1p(-failure_probability)
                )
                - 1
            )
            if first < 0:
                first = 0
            elif first >= total_blocks:
                first = total_blocks - 1
        remaining_blocks = total_blocks - first - 1
        extra = int(rng.binomial(remaining_blocks, failure_probability)) if remaining_blocks else 0
        if extra:
            offsets = rng.choice(remaining_blocks, size=extra, replace=False)
            flat = np.concatenate(([first], first + 1 + offsets))
        else:
            flat = np.array([first])
        failed_per_packet = np.bincount(flat // blocks_per_packet, minlength=num_packets)
        failed_indices = np.nonzero(failed_per_packet)[0]

        if self.crc_width:
            escaped = rng.random(failed_indices.size) < self.undetected_probability
        else:
            escaped = np.ones(failed_indices.size, dtype=bool)
        delivered_failed = failed_indices[escaped]
        failed_detected = int(failed_indices.size - delivered_failed.size)

        residual = 0
        if delivered_failed.size:
            blocks_in_error = int(failed_per_packet[delivered_failed].sum())
            residual = blocks_in_error
            if residual_rate > 0.0 and self.code.k > 1:
                residual += int(
                    rng.binomial(self.code.k - 1, residual_rate, size=blocks_in_error).sum()
                )
            if self._payload_fraction < 1.0 and residual:
                residual = int(rng.binomial(residual, self._payload_fraction))
        return TransmissionOutcome(
            packets=num_packets,
            failed_detected=failed_detected,
            delivered_with_errors=int(delivered_failed.size),
            residual_bit_errors=int(residual),
        )


class BitExactOutcomeSampler:
    """Round-trip real codewords on the packed substrate.

    Packets are CRC-appended (batch table CRC), framed, packed into
    ``uint64`` words, encoded, corrupted and decoded without ever leaving
    packed storage; the fault model corrupts the whole attempt's block
    matrix in row-major (transmission) order, so burst models span adjacent
    blocks exactly like on the serialised wire.  Residual payload errors
    are popcounts of ``corrected XOR transmitted`` against per-block
    payload-column masks, and the CRC re-check only runs — on the decoded
    bits, exactly like the pre-packing implementation — for packets whose
    protected columns were actually disturbed (clean packets trivially
    pass).  Outcomes are deterministic per seed and *distribution*-identical
    to the pre-packing implementation — not draw-for-draw identical: the
    error mask is drawn before the payload, clean attempts skip the payload
    draw entirely, and independent flips are sampled by exact binomial
    thinning (:meth:`~repro.simulation.faults.IndependentErrorModel.sparse_error_positions`).
    """

    __slots__ = (
        "code", "error_model", "packet_bits", "crc", "crc_width",
        "blocks_per_packet", "_rng", "_payload_masks", "_protected_masks",
    )

    def __init__(
        self,
        code,
        error_model,
        *,
        packet_bits: int,
        crc: CyclicRedundancyCheck | None = None,
        rng: np.random.Generator,
    ):
        self.code = code
        self.error_model = error_model
        self.packet_bits = int(packet_bits)
        self.crc = crc
        self.crc_width = crc.width if crc is not None else 0
        self.blocks_per_packet = _frame_geometry(code, packet_bits, self.crc_width)
        self._rng = rng
        n, k = int(code.n), int(code.k)
        # Per-block masks over the systematic message prefix: which codeword
        # bits of frame block j carry payload (respectively payload+CRC)
        # columns.  Errors beyond them land in zero padding and corrupt
        # nothing.
        def _prefix_masks(limit: int) -> np.ndarray:
            return np.stack(
                [
                    range_mask(n, 0, min(k, max(0, limit - block * k)))
                    for block in range(self.blocks_per_packet)
                ]
            )

        self._payload_masks = _prefix_masks(self.packet_bits)
        self._protected_masks = _prefix_masks(self.packet_bits + self.crc_width)

    @property
    def coded_bits_per_packet(self) -> int:
        """Wire bits occupied by one packet (blocks x n)."""
        return self.blocks_per_packet * int(self.code.n)

    def sample(self, num_packets: int) -> TransmissionOutcome:
        """Transmit ``num_packets`` fresh random packets end to end.

        The error mask of the whole attempt is drawn *first*: when it comes
        back all-zero — the overwhelmingly common case at the raw BERs the
        link designs operate at — the received words provably equal the
        transmitted ones (zero syndrome decodes to the codeword itself and
        the CRC of an untouched packet matches), so every packet is
        delivered clean without materialising a single codeword.  Only
        attempts that actually suffered bit flips round-trip real payloads
        through encode → XOR mask → decode → CRC.
        """
        if num_packets < 1:
            raise ConfigurationError("an attempt must carry at least one packet")
        rng = self._rng
        n, k = int(self.code.n), int(self.code.k)
        blocks_per_packet = self.blocks_per_packet
        total_blocks = num_packets * blocks_per_packet
        error_mask = None
        sparse = getattr(self.error_model, "sparse_error_positions", None)
        if sparse is not None:
            positions = sparse(total_blocks * n)
            if positions.size == 0:
                return TransmissionOutcome(num_packets, 0, 0, 0)
            error_mask = _packed_mask_from_positions(positions, total_blocks, n)
        else:
            mask_source = getattr(self.error_model, "error_mask_packed", None)
            if mask_source is not None:
                error_mask = mask_source(total_blocks, n=n)
                if not error_mask.any():
                    return TransmissionOutcome(num_packets, 0, 0, 0)
        payload = rng.integers(0, 2, size=(num_packets, self.packet_bits), dtype=np.uint8)
        protected_bits = self.packet_bits + self.crc_width
        frame_bits = blocks_per_packet * k
        if protected_bits == frame_bits and self.crc is None:
            # No CRC slot and no padding: the payload *is* the frame.
            frame = payload
        else:
            frame = np.zeros((num_packets, frame_bits), dtype=np.uint8)
            frame[:, : self.packet_bits] = payload
            if self.crc is not None:
                frame[:, self.packet_bits : protected_bits] = self.crc.checksum_batch_bits(
                    payload
                )

        encoded = encode_blocks_packed(self.code, pack_bits(frame.reshape(-1, k)))
        if error_mask is not None:
            corrupted = encoded ^ error_mask
        else:
            # Duck-typed fault models without a packed mask API consume the
            # same stream on the unpacked image.
            corrupted = pack_bits(self.error_model.apply(unpack_bits(encoded, n)))
        decoded = decode_blocks_packed(self.code, corrupted)
        residual_frames = (decoded.corrected_words ^ encoded).reshape(
            num_packets, blocks_per_packet, -1
        )

        if self.crc is not None:
            protected_errors = _mask_popcounts(residual_frames, self._protected_masks)
            ok = protected_errors == 0
            suspects = np.nonzero(~ok)[0]
            payload_errors = np.zeros(num_packets, dtype=np.int64)
            if suspects.size:
                # Re-run the CRC on the decoded bits of the disturbed
                # packets only (clean packets trivially pass); an error
                # pattern whose CRC happens to match the corrupted checksum
                # escapes detection here exactly as it would in hardware.
                payload_errors[suspects] = _mask_popcounts(
                    residual_frames[suspects], self._payload_masks
                )
                rows = decoded.corrected_words.reshape(num_packets, blocks_per_packet, -1)
                words = rows[suspects].reshape(suspects.size * blocks_per_packet, -1)
                received = (
                    unpack_bits(words, n)[:, :k].reshape(suspects.size, frame_bits)
                )
                ok[suspects] = self.crc.verify_batch(received[:, :protected_bits])
        else:
            ok = np.ones(num_packets, dtype=bool)
            payload_errors = _mask_popcounts(residual_frames, self._payload_masks)
        failed_detected = int(np.count_nonzero(~ok))
        delivered_with_errors = int(np.count_nonzero(ok & (payload_errors > 0)))
        residual = int(payload_errors[ok].sum())
        return TransmissionOutcome(
            packets=num_packets,
            failed_detected=failed_detected,
            delivered_with_errors=delivered_with_errors,
            residual_bit_errors=residual,
        )


def packets_for_payload(payload_bits: int, packet_bits: int) -> int:
    """Packets needed to carry a payload (last one zero padded)."""
    if payload_bits < 1:
        raise ConfigurationError("payload must contain at least one bit")
    if packet_bits < 1:
        raise ConfigurationError("packet size must be at least one bit")
    return math.ceil(payload_bits / packet_bits)
