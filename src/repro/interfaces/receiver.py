"""Receiver-side electrical interface (paper Figure 2.d, Table I bottom half).

The receiver deserialises the photodetector bit stream at the modulation
rate, decodes it on the path matching the transmitter's configuration
(direct, H(7,4) bank or H(71,64) decoder) and multiplexes the decoded word
back onto the 64-bit IP bus.  Mirroring the transmitter, only the selected
path consumes dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..exceptions import ConfigurationError
from .blocks import (
    HardwareBlock,
    aggregate_blocks,
    deserializer_block,
    hamming_codec_block,
    mux_block,
)
from .techlib import BlockCharacterisation, FDSOI_28NM, TechnologyLibrary
from .transmitter import H71_MODE, H74_MODE, UNCODED_MODE

__all__ = ["ReceiverInterface"]


@dataclass
class ReceiverInterface:
    """An assembly of receiver blocks with per-mode activity."""

    blocks: tuple[HardwareBlock, ...]
    name: str = "receiver"

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ConfigurationError("an interface needs at least one block")

    # ------------------------------------------------------------------ factories
    @classmethod
    def paper_default(cls, tech: TechnologyLibrary = FDSOI_28NM) -> "ReceiverInterface":
        """The exact receiver the paper synthesised (Table I, bottom half)."""
        blocks = (
            HardwareBlock(tech.block("rx/mux_64bit_3to1"), (UNCODED_MODE, H74_MODE, H71_MODE), always_on=True),
            HardwareBlock(tech.block("rx/h74_decoders_x16"), (H74_MODE,)),
            HardwareBlock(tech.block("rx/h71_64_decoder"), (H71_MODE,)),
            HardwareBlock(tech.block("rx/deser_112bit_h74"), (H74_MODE,)),
            HardwareBlock(tech.block("rx/deser_71bit_h71_64"), (H71_MODE,)),
            HardwareBlock(tech.block("rx/deser_64bit_uncoded"), (UNCODED_MODE,)),
        )
        return cls(blocks=blocks, name="receiver (Table I)")

    @classmethod
    def from_codes(
        cls,
        codes: Iterable,
        *,
        ip_bus_width_bits: int = 64,
        ip_clock_hz: float = 1e9,
        modulation_rate_hz: float = 10e9,
        tech: TechnologyLibrary = FDSOI_28NM,
    ) -> "ReceiverInterface":
        """Build a receiver for an arbitrary set of coding schemes."""
        codes = list(codes)
        mode_names = [getattr(code, "name", str(code)) for code in codes]
        block_list: list[HardwareBlock] = [
            HardwareBlock(
                mux_block(ip_bus_width_bits, num_inputs=len(codes) + 1, tech=tech),
                tuple(mode_names) + (UNCODED_MODE,),
                always_on=True,
            ),
            HardwareBlock(
                deserializer_block(
                    ip_bus_width_bits, modulation_rate_hz=modulation_rate_hz, tech=tech
                ),
                (UNCODED_MODE,),
            ),
        ]
        for code, mode in zip(codes, mode_names):
            if code.num_parity_bits == 0:
                continue
            if ip_bus_width_bits % code.k != 0:
                raise ConfigurationError(
                    f"bus width {ip_bus_width_bits} is not a multiple of k={code.k} for {mode}"
                )
            instances = ip_bus_width_bits // code.k
            block_list.append(
                HardwareBlock(
                    hamming_codec_block(
                        code,
                        role="decoder",
                        num_instances=instances,
                        ip_clock_hz=ip_clock_hz,
                        tech=tech,
                    ),
                    (mode,),
                )
            )
            block_list.append(
                HardwareBlock(
                    deserializer_block(
                        instances * code.n, modulation_rate_hz=modulation_rate_hz, tech=tech
                    ),
                    (mode,),
                )
            )
        return cls(blocks=tuple(block_list), name="receiver (parametric)")

    # ------------------------------------------------------------------ queries
    def modes(self) -> list[str]:
        """All communication modes any block participates in."""
        names: list[str] = []
        for block in self.blocks:
            for mode in block.modes:
                if mode not in names:
                    names.append(mode)
        return names

    def _check_mode(self, mode: str) -> None:
        if mode not in self.modes():
            raise ConfigurationError(f"unknown mode {mode!r}; available: {self.modes()}")

    @property
    def total_area_um2(self) -> float:
        """Total interface area (all paths are physically present)."""
        return sum(block.characterisation.area_um2 for block in self.blocks)

    @property
    def total_static_power_nw(self) -> float:
        """Total static power (every block leaks regardless of the mode)."""
        return sum(block.characterisation.static_power_nw for block in self.blocks)

    def active_blocks(self, mode: str) -> list[HardwareBlock]:
        """Blocks toggling in a given communication mode."""
        self._check_mode(mode)
        return [block for block in self.blocks if block.active_in(mode)]

    def dynamic_power_uw(self, mode: str) -> float:
        """Dynamic power of the selected path, in microwatts (Table I rows)."""
        return sum(b.characterisation.dynamic_power_uw for b in self.active_blocks(mode))

    def total_power_uw(self, mode: str) -> float:
        """Dynamic power of the path plus the full static power, in microwatts."""
        return self.dynamic_power_uw(mode) + self.total_static_power_nw * 1e-3

    def total_power_w(self, mode: str) -> float:
        """Total interface power in watts for a communication mode."""
        return self.total_power_uw(mode) * 1e-6

    def critical_path_ps(self, mode: str) -> float:
        """Critical path of the active blocks in a mode."""
        return max(b.characterisation.critical_path_ps for b in self.active_blocks(mode))

    def mode_summary(self, mode: str) -> BlockCharacterisation:
        """Aggregate characterisation of the active path of one mode."""
        return aggregate_blocks(
            (b.characterisation for b in self.active_blocks(mode)),
            name=f"{self.name} [{mode}]",
        )

    def as_table(self) -> Dict[str, BlockCharacterisation]:
        """Every block keyed by name, for report generation."""
        return {block.name: block.characterisation for block in self.blocks}
