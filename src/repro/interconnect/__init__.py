"""Interconnect-level architecture: topology, channels, interfaces, arbitration.

The paper's Figure 2-a shows a 3D-IC whose optical layer implements one MWSR
channel per reader ONI: every other ONI owns a writer on that channel, and a
channel carries ``NW`` wavelengths over (in the evaluation) 16 parallel
waveguides.  This package models that structure:

* :mod:`repro.interconnect.topology` — ONI placement on the optical layer
  and the waveguide distances between them.
* :mod:`repro.interconnect.mwsr` — a single MWSR channel: its writers, its
  reader, per-writer path losses and worst-case laser requirements.
* :mod:`repro.interconnect.oni` — the optical network interface pairing the
  electrical TX/RX interfaces with the channel end-points.
* :mod:`repro.interconnect.arbitration` — token-based arbitration of the
  multiple writers of a channel.
* :mod:`repro.interconnect.network` — the full interconnect: one channel per
  reader, aggregate power and bandwidth queries.
"""

from .topology import RingTopology
from .mwsr import MWSRChannel, WriterPath
from .oni import OpticalNetworkInterface
from .arbitration import TokenArbiter
from .network import OpticalNetwork

__all__ = [
    "RingTopology",
    "MWSRChannel",
    "WriterPath",
    "OpticalNetworkInterface",
    "TokenArbiter",
    "OpticalNetwork",
]
