"""Thermally-limited on-chip VCSEL laser model (paper Figure 4).

The paper assumes CMOS-compatible PCM-VCSEL sources whose wall-plug
efficiency degrades strongly with temperature.  Because the laser heats
itself (and sits above an electrical layer whose activity adds a thermal
floor), the electrical power needed to emit a given optical power grows
faster than linearly: Figure 4 shows an approximately linear region below
~500 uW of emitted power and a super-linear ("exponential") region above,
with a hard ceiling of 700 uW deliverable optical power — the reason an
uncoded BER of 1e-12 is unreachable.

The model implemented here captures that behaviour with an exponential
efficiency droop:

``P_laser(OP) = OP / (eta_base * activity_derating * exp(-OP / OP_droop))``

* ``eta_base`` is the cold wall-plug efficiency (paper: "around 5%"; we use
  6% so the BER=1e-11 uncoded operating point lands near the paper's
  14.3 mW),
* ``activity_derating`` lowers the efficiency as the electrical layer
  activity (and hence the ambient temperature under the laser) rises; it is
  normalised to 1.0 at the paper's 25% reference activity,
* ``OP_droop`` sets where the super-linear region starts,
* optical powers above ``max_output_power_w`` (700 uW) are simply not
  deliverable and raise :class:`~repro.exceptions.LaserPowerExceededError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, LaserPowerExceededError

__all__ = ["LaserOperatingPoint", "VCSELModel"]


@dataclass(frozen=True)
class LaserOperatingPoint:
    """A solved laser operating point."""

    optical_power_w: float
    electrical_power_w: float
    efficiency: float
    activity: float

    @property
    def wall_plug_efficiency_percent(self) -> float:
        """Efficiency expressed in percent."""
        return self.efficiency * 100.0


@dataclass(frozen=True)
class VCSELModel:
    """Thermal/efficiency model of one on-chip VCSEL source.

    Parameters
    ----------
    base_efficiency:
        Wall-plug efficiency in the linear (cool) regime at the reference
        activity.
    droop_power_w:
        Optical-power scale of the exponential efficiency droop; smaller
        values make the super-linear region start earlier.
    max_output_power_w:
        Maximum deliverable optical power (700 uW for the paper's PCM-VCSEL).
    reference_activity:
        Chip activity at which ``base_efficiency`` is specified (0.25 in the
        paper).
    activity_sensitivity:
        Fractional efficiency loss per unit of activity above the reference
        (e.g. 0.3 means full activity costs ~22% of the efficiency relative
        to 25% activity).
    """

    base_efficiency: float = 0.06
    droop_power_w: float = 2.0e-3
    max_output_power_w: float = 700e-6
    reference_activity: float = 0.25
    activity_sensitivity: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.base_efficiency < 1.0:
            raise ConfigurationError("base efficiency must lie in (0, 1)")
        if self.droop_power_w <= 0:
            raise ConfigurationError("droop power must be positive")
        if self.max_output_power_w <= 0:
            raise ConfigurationError("maximum output power must be positive")
        if not 0.0 < self.reference_activity <= 1.0:
            raise ConfigurationError("reference activity must lie in (0, 1]")
        if self.activity_sensitivity < 0:
            raise ConfigurationError("activity sensitivity cannot be negative")

    # ------------------------------------------------------------------ efficiency
    def activity_derating(self, activity: float) -> float:
        """Efficiency multiplier for a given electrical-layer activity.

        Normalised to 1.0 at the reference activity; hotter chips (higher
        activity) reduce the laser efficiency linearly with
        ``activity_sensitivity``.
        """
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must lie in [0, 1]")
        derating = 1.0 - self.activity_sensitivity * (activity - self.reference_activity)
        return float(max(derating, 1e-3))

    def efficiency(self, optical_power_w: float, *, activity: float | None = None) -> float:
        """Wall-plug efficiency when emitting ``optical_power_w``."""
        if optical_power_w < 0:
            raise ConfigurationError("optical power cannot be negative")
        act = self.reference_activity if activity is None else activity
        droop = math.exp(-optical_power_w / self.droop_power_w)
        return self.base_efficiency * self.activity_derating(act) * droop

    # ------------------------------------------------------------------ power
    def electrical_power(
        self,
        optical_power_w: float,
        *,
        activity: float | None = None,
        enforce_limit: bool = True,
    ) -> float:
        """Electrical (wall-plug) power needed to emit ``optical_power_w``.

        This is the paper's ``P_laser`` as a function of ``OP_laser``
        (Figure 4).  Zero optical power costs zero (the paper separately
        cites laser shut-down techniques for idle periods [9]).
        """
        if optical_power_w < 0:
            raise ConfigurationError("optical power cannot be negative")
        if optical_power_w == 0.0:
            return 0.0
        if enforce_limit and optical_power_w > self.max_output_power_w:
            raise LaserPowerExceededError(optical_power_w, self.max_output_power_w)
        eta = self.efficiency(optical_power_w, activity=activity)
        return float(optical_power_w / eta)

    def electrical_power_curve(
        self, optical_powers_w: np.ndarray, *, activity: float | None = None
    ) -> np.ndarray:
        """Vectorised ``P_laser(OP_laser)`` without the 700 uW feasibility cut.

        Used to regenerate Figure 4, whose x-axis extends to 800 uW to show
        the infeasible region.
        """
        powers = np.asarray(optical_powers_w, dtype=float)
        return np.array(
            [
                self.electrical_power(op, activity=activity, enforce_limit=False)
                for op in powers
            ]
        )

    def operating_point(
        self, optical_power_w: float, *, activity: float | None = None
    ) -> LaserOperatingPoint:
        """Solve and package a full operating point."""
        act = self.reference_activity if activity is None else activity
        electrical = self.electrical_power(optical_power_w, activity=act)
        eta = self.efficiency(optical_power_w, activity=act) if optical_power_w > 0 else 0.0
        return LaserOperatingPoint(
            optical_power_w=float(optical_power_w),
            electrical_power_w=electrical,
            efficiency=eta,
            activity=act,
        )

    def can_deliver(self, optical_power_w: float) -> bool:
        """True when the requested optical power is within the laser rating."""
        return 0.0 <= optical_power_w <= self.max_output_power_w

    @classmethod
    def from_config(cls, config) -> "VCSELModel":
        """Build the model from a :class:`repro.config.PaperConfig`."""
        return cls(
            base_efficiency=config.laser_base_efficiency,
            droop_power_w=config.laser_droop_power_w,
            max_output_power_w=config.laser_max_output_power_w,
            reference_activity=config.chip_activity,
        )
