"""Tests for the name-based code registry."""

from __future__ import annotations

import pytest

from repro.coding.registry import available_codes, get_code, paper_code_set, register_code
from repro.exceptions import ConfigurationError


class TestRegisteredNames:
    def test_paper_names_are_registered(self):
        names = available_codes()
        assert "h(7,4)" in names
        assert "h(71,64)" in names
        assert "w/oecc" in names

    def test_get_h74(self):
        code = get_code("H(7,4)")
        assert (code.n, code.k) == (7, 4)

    def test_get_h7164(self):
        code = get_code("H(71,64)")
        assert (code.n, code.k) == (71, 64)

    def test_get_uncoded(self):
        code = get_code("w/o ECC")
        assert code.code_rate == 1.0

    def test_names_are_whitespace_and_case_insensitive(self):
        assert get_code("h( 7 , 4 )").name == "H(7,4)"
        assert get_code("UNCODED").code_rate == 1.0


class TestPatternConstruction:
    def test_full_hamming_from_pattern(self):
        code = get_code("H(15,11)")
        assert (code.n, code.k) == (15, 11)

    def test_shortened_hamming_from_pattern(self):
        code = get_code("H(38,32)")
        assert (code.n, code.k) == (38, 32)

    def test_invalid_hamming_pattern_raises(self):
        with pytest.raises(ConfigurationError):
            get_code("H(70,64)")

    def test_secded_pattern(self):
        code = get_code("SECDED(32)")
        assert code.k == 32
        assert code.minimum_distance == 4

    def test_bch_pattern(self):
        code = get_code("BCH(4,2)")
        assert (code.n, code.k) == (15, 7)

    def test_repetition_pattern(self):
        code = get_code("REP(5)")
        assert (code.n, code.k) == (5, 1)

    def test_parity_pattern(self):
        code = get_code("SPC(8)")
        assert (code.n, code.k) == (9, 8)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_code("turbo-code")


class TestRegistration:
    def test_register_and_retrieve_custom_code(self):
        from repro.coding.hamming import HammingCode

        register_code("my-test-code", lambda: HammingCode(5), overwrite=True)
        assert get_code("my-test-code").n == 31

    def test_duplicate_registration_without_overwrite_raises(self):
        from repro.coding.hamming import HammingCode

        register_code("dup-code", lambda: HammingCode(3), overwrite=True)
        with pytest.raises(ConfigurationError):
            register_code("dup-code", lambda: HammingCode(3))


class TestPaperCodeSet:
    def test_order_and_names(self):
        names = [code.name for code in paper_code_set()]
        assert names == ["w/o ECC", "H(71,64)", "H(7,4)"]

    def test_respects_bus_width(self):
        codes = paper_code_set(32)
        assert codes[0].n == 32
        assert codes[1].k == 32

    def test_communication_times_match_paper(self):
        uncoded, h71, h74 = paper_code_set()
        assert uncoded.communication_time_overhead == pytest.approx(1.0)
        assert h71.communication_time_overhead == pytest.approx(1.109, abs=1e-3)
        assert h74.communication_time_overhead == pytest.approx(1.75)
