"""The pass-through "w/o ECC" transmission scheme.

The paper's baseline transmits raw data: no redundancy, no correction, and a
communication-time overhead of exactly 1.  Modelling it as a degenerate code
object lets every downstream component (link design, power model, manager,
simulators) treat coded and uncoded transmissions uniformly.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .base import BatchDecodeResult, DecodeResult, PackedBatchDecodeResult
from .matrices import as_gf2
from .packed import require_packed_blocks

__all__ = ["UncodedScheme"]


class UncodedScheme:
    """Identity "code" used for transmissions without ECC.

    It mirrors the :class:`~repro.coding.base.LinearBlockCode` interface
    (``n``, ``k``, ``encode``, ``decode``, rate and CT properties) so the
    rest of the library does not special-case the uncoded path, exactly as
    the paper's interface multiplexes between the direct path and the
    Hamming paths.
    """

    def __init__(self, block_length: int = 64, *, name: str = "w/o ECC"):
        if block_length < 1:
            raise ConfigurationError("block length must be positive")
        self._n = int(block_length)
        self._name = name

    # ------------------------------------------------------------------ metadata
    @property
    def name(self) -> str:
        """Display name used in reports and figure legends."""
        return self._name

    @property
    def n(self) -> int:
        """Block length (equal to the message length for the uncoded scheme)."""
        return self._n

    @property
    def k(self) -> int:
        """Message length."""
        return self._n

    @property
    def num_parity_bits(self) -> int:
        """Uncoded transmissions carry no redundancy."""
        return 0

    @property
    def minimum_distance(self) -> int:
        """Distance of the identity map: any single bit flip is a new word."""
        return 1

    @property
    def correctable_errors(self) -> int:
        """No errors can be corrected without redundancy."""
        return 0

    @property
    def detectable_errors(self) -> int:
        """No errors can be detected without redundancy."""
        return 0

    @property
    def code_rate(self) -> float:
        """Rate of the uncoded scheme is exactly 1."""
        return 1.0

    @property
    def communication_time_overhead(self) -> float:
        """CT = 1 by definition (the paper normalises to this case)."""
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UncodedScheme(n={self._n})"

    # ------------------------------------------------------------------ coding API
    def encode_batch(self, messages) -> np.ndarray:
        """Return the ``(B, n)`` message matrix unchanged (after coercion)."""
        blocks = as_gf2(messages)
        if blocks.ndim != 2 or blocks.shape[1] != self._n:
            raise CodewordLengthError(
                f"uncoded scheme expected a (B, {self._n}) matrix, got shape {blocks.shape}"
            )
        return blocks.copy()

    def decode_batch(self, received, *, strict: bool = False) -> BatchDecodeResult:
        """Accept every received block verbatim; nothing can be detected."""
        blocks = self.encode_batch(received)
        clean = np.zeros(blocks.shape[0], dtype=bool)
        return BatchDecodeResult(
            message_bits=blocks.copy(),
            corrected_codewords=blocks,
            detected_error=clean,
            corrected=clean.copy(),
            failure=clean.copy(),
        )

    def _require_packed(self, words) -> np.ndarray:
        """Validate a ``(B, ceil(n/64))`` packed uint64 matrix (shared validator)."""
        try:
            return require_packed_blocks(words, self._n, what="uncoded")
        except ConfigurationError as error:
            raise CodewordLengthError(str(error)) from None

    def encode_batch_packed(self, message_words) -> np.ndarray:
        """Return the packed message words unchanged (identity encoding)."""
        return self._require_packed(message_words)

    def decode_batch_packed(self, received_words, *, strict: bool = False) -> PackedBatchDecodeResult:
        """Accept every packed block verbatim; nothing can be detected."""
        words = self._require_packed(received_words)
        clean = np.zeros(words.shape[0], dtype=bool)
        return PackedBatchDecodeResult(
            corrected_words=words,
            detected_error=clean,
            corrected=clean,
            failure=clean,
            n=self._n,
            k=self._n,
        )

    def encode_block(self, message_bits) -> np.ndarray:
        """Return the message unchanged (after GF(2) coercion)."""
        message = as_gf2(message_bits).ravel()
        if message.size != self._n:
            raise CodewordLengthError(
                f"uncoded scheme expected {self._n} bits, got {message.size}"
            )
        return message.copy()

    def encode(self, bits) -> np.ndarray:
        """Return the stream unchanged (after GF(2) coercion)."""
        stream = as_gf2(bits).ravel()
        if stream.size % self._n != 0:
            raise CodewordLengthError(
                f"stream length {stream.size} is not a multiple of {self._n}"
            )
        return stream.copy()

    def decode_block(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Accept the received block verbatim; nothing can be detected."""
        received = as_gf2(received_bits).ravel()
        if received.size != self._n:
            raise CodewordLengthError(
                f"uncoded scheme expected {self._n} bits, got {received.size}"
            )
        return DecodeResult(
            message_bits=received.copy(),
            corrected_codeword=received.copy(),
            detected_error=False,
            corrected=False,
        )

    def decode(self, bits, *, strict: bool = False) -> np.ndarray:
        """Return the stream unchanged."""
        return self.encode(bits)

    def is_codeword(self, bits) -> bool:
        """Every n-bit vector is a valid uncoded word."""
        return as_gf2(bits).ravel().size == self._n
