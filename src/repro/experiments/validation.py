"""Monte-Carlo validation of the analytic BER chain (batched engine).

The paper's evaluation rests on three analytic relations: the OOK error
probability (Eq. 3), the post-decoding Hamming BER (Eq. 2) and the link SNR
(Eq. 4).  This experiment closes the loop empirically for every scheme of
the paper's code set: it designs operating points at Monte-Carlo-friendly
BER targets, simulates the physical link bit by bit through the batched
:class:`~repro.simulation.linksim.OpticalLinkSimulator`, and compares the
measured raw and post-decoding error rates with the analytic predictions.

Before the array-at-a-time coding engine this validation was too slow to
run as a routine experiment; with batching it simulates hundreds of
thousands of codewords per second, so it is registered alongside the
figure experiments in :mod:`repro.experiments.runner` as ``validation``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..coding.registry import paper_code_set
from ..coding.theory import output_ber
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..link.design import OpticalLinkDesigner
from ..simulation.linksim import OpticalLinkSimulator

__all__ = ["ValidationPoint", "ValidationResult", "run_validation"]


@dataclass(frozen=True)
class ValidationPoint:
    """Analytic-vs-measured error rates of one (code, target BER) link."""

    code_name: str
    target_ber: float
    analytic_raw_ber: float
    measured_raw_ber: float
    analytic_post_ber: float
    measured_post_ber: float
    blocks_simulated: int

    @property
    def raw_ber_relative_error(self) -> float:
        """Relative deviation of the measured raw BER from Eq. 3."""
        return self.measured_raw_ber / self.analytic_raw_ber - 1.0

    def as_dict(self) -> dict:
        """Flat dict for CSV export."""
        return {
            "code": self.code_name,
            "target_ber": self.target_ber,
            "analytic_raw_ber": self.analytic_raw_ber,
            "measured_raw_ber": self.measured_raw_ber,
            "analytic_post_ber": self.analytic_post_ber,
            "measured_post_ber": self.measured_post_ber,
            "blocks": self.blocks_simulated,
        }


@dataclass
class ValidationResult:
    """Monte-Carlo validation sweep over the paper's code set."""

    points: List[ValidationPoint]
    num_blocks: int

    def point_for(self, code_name: str, target_ber: float) -> ValidationPoint:
        """Look up the validation point of one (code, target) pair."""
        for point in self.points:
            if point.code_name == code_name and point.target_ber == target_ber:
                return point
        raise KeyError(f"no validation point for {code_name!r} at {target_ber:g}")

    def to_rows(self) -> List[dict]:
        """CSV rows for the experiment runner."""
        return [point.as_dict() for point in self.points]

    def render_text(self) -> str:
        """Human-readable validation table."""
        header = (
            f"{'code':<12} {'target':>9} {'raw (Eq.3)':>12} {'raw (sim)':>12} "
            f"{'post (Eq.2)':>12} {'post (sim)':>12}"
        )
        lines = [
            "Monte-Carlo validation of the analytic BER chain "
            f"({self.num_blocks} blocks per point, batched engine)",
            header,
            "-" * len(header),
        ]
        for point in self.points:
            lines.append(
                f"{point.code_name:<12} {point.target_ber:9.0e} "
                f"{point.analytic_raw_ber:12.3e} {point.measured_raw_ber:12.3e} "
                f"{point.analytic_post_ber:12.3e} {point.measured_post_ber:12.3e}"
            )
        lines.append(
            "The simulated raw BER tracks Eq. 3 and the simulated post-decoding "
            "BER tracks Eq. 2 within Monte-Carlo noise."
        )
        return "\n".join(lines)


def run_validation(
    config: PaperConfig = DEFAULT_CONFIG,
    *,
    targets: Sequence[float] = (1e-3, 1e-4),
    num_blocks: int = 20000,
    batch_size: int = 8192,
    seed: int = 2024,
) -> ValidationResult:
    """Validate the analytic chain at Monte-Carlo-friendly BER targets.

    Parameters
    ----------
    config:
        Evaluation parameters; defaults to the paper's Section V setup.
    targets:
        Target post-decoding BERs to design links for.  Kept moderate so a
        Monte-Carlo run observes errors in reasonable time.
    num_blocks:
        Codewords simulated per (code, target) point.
    batch_size:
        Blocks per vectorized simulation batch.
    seed:
        Seed of the shared random generator, for reproducible reports.
    """
    if num_blocks < 1:
        raise ConfigurationError("at least one block must be simulated")
    designer = OpticalLinkDesigner(config=config)
    rng = np.random.default_rng(seed)
    points: List[ValidationPoint] = []
    for target_ber in targets:
        for code in paper_code_set():
            design = designer.design_point(code, target_ber)
            simulator = OpticalLinkSimulator(code, design, config=config, rng=rng)
            result = simulator.run(num_blocks, batch_size=batch_size)
            points.append(
                ValidationPoint(
                    code_name=code.name,
                    target_ber=float(target_ber),
                    analytic_raw_ber=design.raw_channel_ber,
                    measured_raw_ber=result.measured_raw_ber,
                    analytic_post_ber=float(output_ber(code, design.raw_channel_ber)),
                    measured_post_ber=result.measured_post_decoding_ber,
                    blocks_simulated=result.blocks_simulated,
                )
            )
    return ValidationResult(points=points, num_blocks=num_blocks)
