"""Streaming statistics with confidence intervals.

The simulators accumulate latency, energy and error counts over many
transfers; this helper keeps running mean/variance (Welford's algorithm) so
long simulations do not need to retain every sample, and provides normal-
approximation confidence intervals for the reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["StreamingStatistics"]


@dataclass
class StreamingStatistics:
    """Online mean/variance accumulator (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the statistics."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.total += value

    def extend(self, values) -> None:
        """Fold an iterable of samples into the statistics."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def standard_deviation(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return 0.0
        return self.standard_deviation / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the mean."""
        half_width = z * self.standard_error
        return (self.mean - half_width, self.mean + half_width)

    def as_dict(self) -> dict[str, float]:
        """Summary dictionary for reports."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.standard_deviation,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "total": self.total,
        }
