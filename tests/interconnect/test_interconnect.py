"""Tests for topology, MWSR channels, ONIs, arbitration and the network."""

from __future__ import annotations

import pytest

from repro.coding.hamming import ShortenedHammingCode
from repro.coding.uncoded import UncodedScheme
from repro.config import DEFAULT_CONFIG
from repro.exceptions import ArbitrationError, ConfigurationError
from repro.interconnect.arbitration import TokenArbiter
from repro.interconnect.mwsr import MWSRChannel
from repro.interconnect.network import OpticalNetwork
from repro.interconnect.oni import OpticalNetworkInterface
from repro.interconnect.topology import RingTopology


class TestRingTopology:
    def test_from_config_worst_case_distance_matches_the_paper(self):
        topology = RingTopology.from_config(DEFAULT_CONFIG)
        assert topology.worst_case_distance(reader=0) == pytest.approx(0.06, rel=1e-6)

    def test_positions_are_uniform(self):
        topology = RingTopology(num_onis=4, loop_length_m=0.04)
        assert [topology.position(i) for i in range(4)] == pytest.approx([0.0, 0.01, 0.02, 0.03])

    def test_downstream_distance_wraps_around(self):
        topology = RingTopology(num_onis=4, loop_length_m=0.04)
        assert topology.downstream_distance(3, 1) == pytest.approx(0.02)
        assert topology.downstream_distance(1, 3) == pytest.approx(0.02)
        assert topology.downstream_distance(2, 2) == 0.0

    def test_onis_crossed(self):
        topology = RingTopology(num_onis=6, loop_length_m=0.06)
        assert list(topology.onis_crossed(1, 4)) == [2, 3]
        assert list(topology.onis_crossed(4, 1)) == [5, 0]
        assert list(topology.onis_crossed(0, 1)) == []

    def test_explicit_positions_validation(self):
        with pytest.raises(ConfigurationError):
            RingTopology(num_onis=3, loop_length_m=0.03, positions_m=(0.0, 0.01))
        with pytest.raises(ConfigurationError):
            RingTopology(num_onis=2, loop_length_m=0.03, positions_m=(0.02, 0.01))

    def test_index_validation(self):
        topology = RingTopology(num_onis=4, loop_length_m=0.04)
        with pytest.raises(ConfigurationError):
            topology.position(4)


class TestMWSRChannel:
    def test_writers_exclude_the_reader(self):
        channel = MWSRChannel(reader=0)
        assert 0 not in channel.writers
        assert len(channel.writers) == 11

    def test_worst_case_path_loss_tracks_the_link_budget(self):
        from repro.link.power_budget import LinkPowerBudget

        channel = MWSRChannel(reader=0)
        worst = channel.worst_case_path()
        budget = LinkPowerBudget()
        assert worst.loss_db == pytest.approx(budget.signal_path_loss_db, abs=0.05)

    def test_closer_writers_have_lower_loss(self):
        channel = MWSRChannel(reader=0)
        paths = channel.all_writer_paths()
        # Writer 11 sits just upstream of reader 0; writer 1 is the farthest.
        assert paths[11].loss_db < paths[1].loss_db

    def test_the_reader_cannot_write(self):
        channel = MWSRChannel(reader=5)
        with pytest.raises(ConfigurationError):
            channel.writer_path(5)

    def test_bandwidths(self):
        channel = MWSRChannel(reader=0)
        assert channel.raw_bandwidth_bits_per_s == pytest.approx(16 * 16 * 10e9)
        code = ShortenedHammingCode(64)
        assert channel.effective_bandwidth_bits_per_s(code) == pytest.approx(
            channel.raw_bandwidth_bits_per_s * 64 / 71
        )

    def test_crosstalk_ratio_positive_and_small(self):
        channel = MWSRChannel(reader=0)
        assert 0.0 < channel.crosstalk_ratio < 0.1


class TestOpticalNetworkInterface:
    def test_default_modes_are_uncoded(self):
        oni = OpticalNetworkInterface(index=0)
        assert oni.transmit_mode == "w/o ECC"
        assert oni.receive_mode == "w/o ECC"

    def test_configure_modes(self):
        oni = OpticalNetworkInterface(index=0)
        oni.configure_transmit("H(7,4)")
        oni.configure_receive("H(7,4)")
        assert oni.transmit_mode == "H(7,4)"
        assert oni.interface_power_w() > 0

    def test_unknown_mode_rejected(self):
        oni = OpticalNetworkInterface(index=0)
        with pytest.raises(ConfigurationError):
            oni.configure_transmit("H(1024,1000)")

    def test_area_is_the_sum_of_both_interfaces(self):
        oni = OpticalNetworkInterface(index=0)
        assert oni.interface_area_um2 == pytest.approx(2013.0 + 3050.0)

    def test_coded_mode_draws_more_interface_power(self):
        oni = OpticalNetworkInterface(index=0)
        uncoded_power = oni.interface_power_w()
        oni.configure_transmit("H(7,4)")
        oni.configure_receive("H(7,4)")
        assert oni.interface_power_w() > uncoded_power


class TestTokenArbiter:
    def test_single_writer_gets_immediate_grants(self):
        arbiter = TokenArbiter(writers=[1], token_hop_time_s=0.0)
        assert arbiter.request(1, now_s=0.0, duration_s=1e-6) == pytest.approx(0.0)
        assert arbiter.request(1, now_s=0.0, duration_s=1e-6) == pytest.approx(1e-6)

    def test_transfers_serialise_on_the_channel(self):
        arbiter = TokenArbiter(writers=[1, 2, 3], token_hop_time_s=0.0)
        first = arbiter.request(1, 0.0, 5e-9)
        second = arbiter.request(2, 0.0, 5e-9)
        assert first == pytest.approx(0.0)
        assert second >= first + 5e-9

    def test_token_hops_add_latency(self):
        arbiter = TokenArbiter(writers=[1, 2, 3], token_hop_time_s=1e-9)
        arbiter.request(1, 0.0, 0.0)
        start = arbiter.request(3, 0.0, 0.0)
        assert start == pytest.approx(2e-9)

    def test_grant_counts(self):
        arbiter = TokenArbiter(writers=[1, 2])
        arbiter.request(1, 0.0, 1e-9)
        arbiter.request(1, 0.0, 1e-9)
        arbiter.request(2, 0.0, 1e-9)
        assert arbiter.grant_counts() == {1: 2, 2: 1}

    def test_unknown_writer_rejected(self):
        arbiter = TokenArbiter(writers=[1, 2])
        with pytest.raises(ArbitrationError):
            arbiter.request(9, 0.0, 1e-9)

    def test_idle_advance_cycles_the_token(self):
        arbiter = TokenArbiter(writers=[1, 2, 3])
        assert arbiter.current_holder == 1
        arbiter.idle_advance()
        assert arbiter.current_holder == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenArbiter(writers=[])
        with pytest.raises(ConfigurationError):
            TokenArbiter(writers=[1, 1])


class TestOpticalNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return OpticalNetwork()

    def test_one_channel_per_reader(self, network):
        assert network.num_onis == 12
        assert set(network.channels) == set(range(12))

    def test_aggregate_bandwidth(self, network):
        per_channel = 16 * 16 * 10e9
        assert network.aggregate_raw_bandwidth_bits_per_s == pytest.approx(12 * per_channel)

    def test_total_power_scales_from_channel_power(self, network):
        code = UncodedScheme(64)
        breakdown = network.channel_power(code, 1e-11)
        expected = breakdown.total_power_w * 16 * 16 * 12
        assert network.total_power_w(code, 1e-11) == pytest.approx(expected)

    def test_power_saving_matches_headline_scale(self, network):
        saving = network.power_saving_w(UncodedScheme(64), ShortenedHammingCode(64), 1e-11)
        assert saving == pytest.approx(22.0, rel=0.25)

    def test_interface_area_scales_with_onis(self, network):
        assert network.total_interface_area_um2 == pytest.approx(12 * (2013.0 + 3050.0))

    def test_unknown_reader_rejected(self, network):
        with pytest.raises(ConfigurationError):
            network.channel_for_reader(42)
