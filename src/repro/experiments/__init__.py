"""Reproduction harness: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning a structured result with
the series/rows the paper plots, plus helpers comparing the reproduction to
the paper's reported values (:mod:`repro.experiments.paperdata`), plus a
*grid descriptor* (``sweep_shards`` / ``run_sweep_shard`` / ``merge_sweep``)
that decomposes the sweep into independent shards for the parallel
orchestrator (:mod:`repro.experiments.orchestrator`).  The command-line
entry point :mod:`repro.experiments.runner` regenerates everything —
serially or with ``--jobs N`` worker processes, resumable from JSON
checkpoints with ``--resume`` — and renders text reports; the
pytest-benchmark targets under ``benchmarks/`` time and validate the same
code paths.

Experiment index
----------------
======== ==================================================================
table1    Synthesis results of the TX/RX interfaces (Table I)
figure3   Micro-ring transmission spectra in ON/OFF states (Figure 3)
figure4   Laser electrical power vs emitted optical power (Figure 4)
figure5   Laser power vs target BER per coding scheme (Figure 5)
figure6a  Channel power breakdown per wavelength at BER 1e-11 (Figure 6a)
figure6b  Power vs communication-time Pareto trade-off (Figure 6b)
headline  Headline claims: ~50% laser power cut, 92% laser share, 22 W saved
validation Monte-Carlo validation of Eq. 2/3 with the batched link simulator
network   Discrete-event load sweep of the managed ring (pattern x rate x policy)
adaptive  Online adaptive-ECC control vs static worst-case under channel drift
availability Hard-fault tolerance: graceful degradation vs blind retransmission
======== ==================================================================
"""

from .adaptive import AdaptiveSweepResult, run_adaptive
from .availability import AvailabilitySweepResult, run_availability
from .orchestrator import ExperimentGrid, available_experiments, describe_grid, run_experiment
from .table1 import Table1Result, run_table1
from .figure3 import Figure3Result, run_figure3
from .figure4 import Figure4Result, run_figure4
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6aResult, Figure6bResult, run_figure6a, run_figure6b
from .headline import HeadlineResult, run_headline
from .calibration import CalibrationSummary, run_calibration
from .network import NetworkSweepResult, run_network
from .validation import ValidationPoint, ValidationResult, run_validation

__all__ = [
    "ExperimentGrid",
    "available_experiments",
    "describe_grid",
    "run_experiment",
    "Table1Result",
    "run_table1",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6aResult",
    "Figure6bResult",
    "run_figure6a",
    "run_figure6b",
    "HeadlineResult",
    "run_headline",
    "CalibrationSummary",
    "run_calibration",
    "ValidationPoint",
    "ValidationResult",
    "run_validation",
    "NetworkSweepResult",
    "run_network",
    "AdaptiveSweepResult",
    "run_adaptive",
    "AvailabilitySweepResult",
    "run_availability",
]
