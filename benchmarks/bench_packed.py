"""Throughput gates of the packed uint64 coding substrate.

Two comparisons, both written to ``benchmarks/BENCH_packed.json``:

* **Packed vs unpacked decode** — H(71,64) at raw BER 1e-3, identical
  corrupted batches.  ``decode_batch`` (the unpacked API, now a pack →
  packed decode → unpack wrapper) against ``decode_batch_packed`` fed
  already-packed words, which is what the Monte-Carlo/netsim pipelines do.
  Gate: the packed path must clear **2x** the unpacked throughput.
* **Bit-exact netsim** — the same workload as the bit-exact leg of
  ``bench_netsim.py`` (60 uniform transfers of 8192 bits at load 0.5,
  CRC-free, no retries).  Gate: **150k** simulated packets/s, ~3x the
  pre-packing ``BENCH_netsim.json`` baseline of ~56k.

Run either way::

    PYTHONPATH=src python benchmarks/bench_packed.py
    pytest benchmarks/bench_packed.py -q
"""

from __future__ import annotations

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import numpy as np  # noqa: E402

import benchlib  # noqa: E402
from repro.coding.packed import pack_bits  # noqa: E402
from repro.coding.registry import get_code  # noqa: E402
from repro.experiments.network import request_rate_for_load  # noqa: E402
from repro.netsim import NetworkSimulator  # noqa: E402
from repro.traffic.generators import UniformTrafficGenerator  # noqa: E402

CODE_NAME = "H(71,64)"
RAW_BER = 1e-3
NUM_BLOCKS = 8192
DECODE_REPEATS = 40
DECODE_SPEEDUP_GATE = 2.0

NETSIM_REQUESTS = 60
NETSIM_PAYLOAD_BITS = 8192
NETSIM_LOAD = 0.5
NETSIM_PACKET_GATE_PER_SEC = 150_000.0

_JSON_PATH = os.path.join(_HERE, "BENCH_packed.json")


def _timed(function, repeats: int) -> float:
    """Best-of-repeats wall time of ``function`` (after one warm-up call)."""
    function()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def bench_decode(num_blocks: int = NUM_BLOCKS, repeats: int = DECODE_REPEATS) -> dict:
    """Packed vs unpacked decode throughput on identical corrupted batches."""
    code = get_code(CODE_NAME)
    rng = np.random.default_rng(2024)
    messages = rng.integers(0, 2, size=(num_blocks, code.k), dtype=np.uint8)
    codewords = code.encode_batch(messages)
    flips = (rng.random((num_blocks, code.n)) < RAW_BER).astype(np.uint8)
    received = codewords ^ flips
    received_words = pack_bits(received)

    unpacked_seconds = _timed(lambda: code.decode_batch(received), repeats)
    packed_seconds = _timed(lambda: code.decode_batch_packed(received_words), repeats)
    return {
        "code": code.name,
        "raw_ber": RAW_BER,
        "num_blocks": num_blocks,
        "unpacked_blocks_per_sec": num_blocks / unpacked_seconds,
        "packed_blocks_per_sec": num_blocks / packed_seconds,
        "unpacked_seconds": unpacked_seconds,
        "packed_seconds": packed_seconds,
        "speedup": unpacked_seconds / packed_seconds,
        "speedup_gate": DECODE_SPEEDUP_GATE,
    }


def bench_bit_exact_netsim(num_requests: int = NETSIM_REQUESTS) -> dict:
    """Bit-exact netsim throughput on the BENCH_netsim bit-exact workload."""
    rate = request_rate_for_load(NETSIM_LOAD, payload_bits=NETSIM_PAYLOAD_BITS)
    generator = UniformTrafficGenerator(
        12, mean_request_rate_hz=rate, payload_bits=NETSIM_PAYLOAD_BITS, seed=7
    )
    requests = list(generator.generate(num_requests))
    simulator = NetworkSimulator(seed=11, mode="bit-exact", crc=None, max_retries=0)
    # Warm the manager/designer caches so the timing measures the event loop
    # and the packed pipeline, not the one-off operating-point solves.
    simulator.run(requests[:5])
    start = time.perf_counter()
    result = simulator.run(requests)
    seconds = time.perf_counter() - start
    return {
        "load": NETSIM_LOAD,
        "payload_bits": NETSIM_PAYLOAD_BITS,
        "num_requests": num_requests,
        "seconds": seconds,
        "transfers": len(result.records),
        "packets": result.packets_sent,
        "events": result.events_processed,
        "packets_per_sec": result.packets_sent / seconds,
        "events_per_sec": result.events_processed / seconds,
        "packet_gate_per_sec": NETSIM_PACKET_GATE_PER_SEC,
    }


def run_benchmark(
    *, include_decode: bool = True, include_netsim: bool = True, num_requests: int = NETSIM_REQUESTS
) -> dict:
    results: dict = {}
    if include_decode:
        results["decode"] = bench_decode()
    if include_netsim:
        results["bit_exact_netsim"] = bench_bit_exact_netsim(num_requests)
    if include_decode and include_netsim:
        results["gates_met"] = (
            results["decode"]["speedup"] >= DECODE_SPEEDUP_GATE
            and results["bit_exact_netsim"]["packets_per_sec"] >= NETSIM_PACKET_GATE_PER_SEC
        )
    return results


def test_packed_decode_meets_speedup_gate():
    """Acceptance gate: packed decode >= 2x the unpacked decode_batch."""
    decode = bench_decode(repeats=20)
    assert decode["speedup"] >= DECODE_SPEEDUP_GATE, decode


def test_bit_exact_netsim_meets_packet_gate():
    """Acceptance gate: bit-exact netsim >= 150k simulated packets/s.

    Unlike the decode gate this is an absolute wall-clock throughput, so a
    transiently oversubscribed runner could dip below it; the best of three
    attempts is taken to reject scheduler noise without weakening the bar.
    """
    attempts = [bench_bit_exact_netsim() for _ in range(3)]
    best = max(attempt["packets_per_sec"] for attempt in attempts)
    assert best >= NETSIM_PACKET_GATE_PER_SEC, attempts


def main(argv: list[str] | None = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark()
    benchlib.write_bench_json(_JSON_PATH, "packed", results)
    if args.history:
        benchlib.append_history(
            args.history,
            "packed",
            {
                "packed_blocks_per_sec": results["decode"]["packed_blocks_per_sec"],
                "unpacked_blocks_per_sec": results["decode"]["unpacked_blocks_per_sec"],
                "bit_exact_packets_per_sec": results["bit_exact_netsim"][
                    "packets_per_sec"
                ],
            },
        )
    decode = results["decode"]
    netsim = results["bit_exact_netsim"]
    print(
        f"decode {decode['code']}: unpacked {decode['unpacked_blocks_per_sec']:,.0f} blocks/s, "
        f"packed {decode['packed_blocks_per_sec']:,.0f} blocks/s ({decode['speedup']:.2f}x); "
        f"bit-exact netsim {netsim['packets_per_sec']:,.0f} packets/s "
        f"(gates met: {results['gates_met']})"
    )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
