"""Quickstart: design an ECC-assisted optical link and compare laser powers.

This is the 60-second tour of the library: take the paper's MWSR channel
(12 ONIs, 16 wavelengths, 6 cm waveguide), pick a target bit error rate, and
see how much laser power each transmission scheme needs — the uncoded
baseline, the shortened Hamming H(71,64) and the H(7,4) bank.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DEFAULT_CONFIG, OpticalLinkDesigner, paper_code_set
from repro.power import channel_power_breakdown, energy_metrics


def main() -> None:
    """Design the paper's link at BER 1e-11 and print the comparison."""
    target_ber = 1e-11
    designer = OpticalLinkDesigner()

    print(f"MWSR channel: {DEFAULT_CONFIG.num_onis} ONIs, "
          f"{DEFAULT_CONFIG.num_wavelengths} wavelengths, "
          f"{DEFAULT_CONFIG.waveguide_length_m * 100:.0f} cm waveguide")
    print(f"Target post-decoding BER: {target_ber:g}\n")

    header = (
        f"{'scheme':<12} {'OP_laser':>10} {'P_laser':>9} {'P_channel':>10} "
        f"{'CT':>6} {'E/bit':>9}"
    )
    print(header)
    print("-" * len(header))
    for code in paper_code_set():
        point = designer.design_point(code, target_ber)
        breakdown = channel_power_breakdown(code, target_ber, designer=designer)
        energy = energy_metrics(breakdown)
        print(
            f"{code.name:<12} {point.laser_output_power_uw:8.1f} uW "
            f"{point.laser_power_mw:6.2f} mW {breakdown.total_power_mw:7.2f} mW "
            f"{point.communication_time:6.2f} {energy.energy_per_bit_modulation_pj:6.2f} pJ"
        )

    print("\nAt BER 1e-12 the laser cannot serve an uncoded link at all:")
    for code in paper_code_set():
        point = designer.design_point(code, 1e-12)
        status = f"{point.laser_power_mw:.2f} mW" if point.feasible else "infeasible (laser rating exceeded)"
        print(f"  {code.name:<12} {status}")


if __name__ == "__main__":
    main()
