"""Benchmark ``figure6b``: power vs communication-time Pareto trade-off.

Paper artefact: Figure 6b (per-wavelength channel power against the
communication-time overhead of each scheme for BER targets 1e-6..1e-12; all
coding schemes sit on the Pareto front of their BER column).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import run_figure6b


def test_bench_figure6b_pareto(benchmark):
    """Time the Figure 6b sweep and validate the Pareto structure."""
    result = benchmark(run_figure6b)

    for ber in result.target_bers:
        points = result.points_for_ber(ber)
        front = result.front_for_ber(ber)
        # Every feasible scheme is Pareto-optimal at its own CT (paper's claim).
        assert {p.code_name for p in front} == {p.code_name for p in points}
        # Power decreases along the front as the communication time grows.
        ordered = sorted(front, key=lambda p: p.communication_time)
        powers = [p.channel_power_w for p in ordered]
        assert all(a >= b for a, b in zip(powers, powers[1:]))

    # At 1e-12 the uncoded scheme is absent (infeasible), so the cloud shrinks.
    names_at_1e12 = {p.code_name for p in result.points_for_ber(1e-12)}
    assert names_at_1e12 == {"H(71,64)", "H(7,4)"}

    # Stricter BER targets cost more channel power for every scheme.
    relaxed = {p.code_name: p.channel_power_w for p in result.points_for_ber(1e-6)}
    strict = {p.code_name: p.channel_power_w for p in result.points_for_ber(1e-10)}
    for name in ("H(71,64)", "H(7,4)", "w/o ECC"):
        assert strict[name] > relaxed[name]


def test_bench_pareto_front_extraction(benchmark):
    """Micro-benchmark of the Pareto-front computation on a larger cloud."""
    from repro.manager.pareto import ParetoPoint, pareto_front

    points = [
        ParetoPoint(
            code_name=f"c{i}",
            target_ber=1e-9,
            communication_time=1.0 + (i % 37) / 36.0,
            channel_power_w=0.005 + ((i * 7919) % 101) / 101.0 * 0.015,
        )
        for i in range(500)
    ]
    front = benchmark(pareto_front, points)
    assert 0 < len(front) <= len(points)
