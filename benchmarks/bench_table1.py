"""Benchmark ``table1``: regenerate the synthesis table of the interfaces.

Paper artefact: Table I (area, critical path, static/dynamic power of the
transmitter and receiver interfaces for no-ECC, H(7,4) and H(71,64) modes).
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_table1


def test_bench_table1_regeneration(benchmark):
    """Time the Table I regeneration and validate its totals."""
    result = benchmark(run_table1)
    # The library-backed totals must match the paper; the parametric
    # estimates must stay in the same ballpark.
    library = [c for c in result.comparisons if not c.quantity.startswith("parametric")]
    assert max(abs(c.relative_error) for c in library) < 0.01
    assert result.report.transmitter_area_um2 == pytest.approx(2013.0)
    assert result.report.receiver_area_um2 == pytest.approx(3050.0)


def test_bench_table1_parametric_estimation(benchmark):
    """Time the parametric (non-library) synthesis estimation path."""
    from repro.interfaces.synthesis import synthesize_interfaces

    report = benchmark(synthesize_interfaces, parametric=True)
    assert report.transmitter_area_um2 > 0
    assert report.receiver_area_um2 > report.transmitter_area_um2
