"""On-off-keyed optical channel with Gaussian decision noise.

This is the physical-level counterpart of the analytic Eq. 3/4 chain: a '1'
is transmitted as the high optical level and a '0' as the low level (finite
extinction ratio), the photodetector converts power to current and a
Gaussian noise current perturbs the threshold decision.

The paper defines the link SNR as ``R * (OPsignal - OPcrosstalk) / i_n``
(Eq. 4) and the raw bit error probability as ``0.5 * erfc(sqrt(SNR))``
(Eq. 3).  That SNR is a *current ratio* convention rather than a physical
noise-variance ratio, so the channel calibrates its Gaussian noise standard
deviation such that a mid-eye threshold decision reproduces exactly the
Eq. 3 error probability at the configured operating point:

``sigma = (eye current) / (2 * sqrt(2) * sqrt(SNR))``

where the eye current is ``R * OPsignal`` (OPsignal being the useful eye
power delivered by the link budget, i.e. already net of the extinction-ratio
penalty).  With that calibration the Monte-Carlo raw BER of the simulated
link converges to the analytic raw BER, which the integration tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..coding.matrices import as_gf2
from ..coding.packed import pack_bits, require_packed_blocks
from ..exceptions import ConfigurationError
from ..units import db_to_linear

__all__ = ["OOKAWGNChannel"]


@dataclass(frozen=True)
class _Levels:
    """Photocurrents of the two OOK symbols and the decision threshold."""

    high_a: float
    low_a: float
    threshold_a: float
    noise_sigma_a: float


class OOKAWGNChannel:
    """OOK transmission with finite extinction ratio and calibrated Gaussian noise.

    Parameters
    ----------
    signal_power_w:
        Useful optical signal power (eye opening, '1' level minus '0' level)
        reaching the photodetector — the ``OPsignal`` produced by
        :class:`repro.link.power_budget.LinkPowerBudget`.
    crosstalk_power_w:
        Worst-case optical crosstalk power, added to both levels and
        subtracted from the useful signal in the SNR (``OPcrosstalk``).
    extinction_ratio_db:
        Ratio between the '1' and '0' optical levels; fixes where the two
        levels sit for a given eye opening.
    responsivity_a_per_w:
        Photodetector responsivity (A/W).
    dark_current_a:
        The noise reference current ``i_n`` of Eq. 4 (4 uA in the paper).
    rng:
        Optional numpy random generator for reproducibility.
    """

    def __init__(
        self,
        signal_power_w: float,
        *,
        crosstalk_power_w: float = 0.0,
        extinction_ratio_db: float = 6.9,
        responsivity_a_per_w: float = 1.0,
        dark_current_a: float = 4e-6,
        rng: np.random.Generator | None = None,
    ):
        if signal_power_w <= 0:
            raise ConfigurationError("signal power must be positive")
        if crosstalk_power_w < 0:
            raise ConfigurationError("crosstalk power cannot be negative")
        if extinction_ratio_db <= 0:
            raise ConfigurationError("extinction ratio must be positive in dB")
        if responsivity_a_per_w <= 0:
            raise ConfigurationError("responsivity must be positive")
        if dark_current_a <= 0:
            raise ConfigurationError("dark current must be positive")
        if crosstalk_power_w >= signal_power_w:
            raise ConfigurationError("crosstalk exceeds the useful signal; the eye is closed")
        self._signal_power_w = float(signal_power_w)
        self._crosstalk_power_w = float(crosstalk_power_w)
        self._er_linear = float(db_to_linear(extinction_ratio_db))
        self._responsivity = float(responsivity_a_per_w)
        self._dark_current = float(dark_current_a)
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------ SNR
    @property
    def effective_snr(self) -> float:
        """SNR in the paper's Eq. 4 convention."""
        useful = self._responsivity * (self._signal_power_w - self._crosstalk_power_w)
        return useful / self._dark_current

    @property
    def analytic_ber(self) -> float:
        """Raw BER predicted by Eq. 3 for this channel's SNR."""
        from .ber import raw_ber_from_snr

        return float(raw_ber_from_snr(self.effective_snr))

    # ------------------------------------------------------------------ levels
    def _levels(self) -> _Levels:
        """Photocurrent levels, threshold and calibrated noise sigma."""
        # The eye opening is the useful signal power; with extinction ratio
        # ER the '1' level is eye / (1 - 1/ER) and the '0' level is '1' / ER.
        eye_power = self._signal_power_w
        one_level_power = eye_power / (1.0 - 1.0 / self._er_linear)
        zero_level_power = one_level_power / self._er_linear
        high = self._responsivity * (one_level_power + self._crosstalk_power_w)
        low = self._responsivity * (zero_level_power + self._crosstalk_power_w)
        half_eye = 0.5 * self._responsivity * eye_power
        snr = self.effective_snr
        sigma = half_eye / (math.sqrt(2.0) * math.sqrt(snr))
        return _Levels(
            high_a=high,
            low_a=low,
            threshold_a=0.5 * (high + low),
            noise_sigma_a=sigma,
        )

    # ------------------------------------------------------------------ transmission
    def transmit(self, bits) -> np.ndarray:
        """Transmit a bit vector and return the hard decisions at the receiver."""
        return self._decide(as_gf2(bits).ravel())

    def transmit_batch(self, blocks) -> np.ndarray:
        """Transmit a ``(B, n)`` block matrix with one Gaussian noise matrix.

        Batch counterpart of :meth:`transmit` used by the Monte-Carlo link
        simulator: the noise for every bit of every block is sampled as a
        single ``(B, n)`` normal draw and the hard decisions are returned
        with the same shape.
        """
        matrix = as_gf2(blocks)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"transmit_batch expects a (B, n) block matrix, got shape {matrix.shape}"
            )
        return self._decide(matrix)

    def transmit_batch_packed(self, words, *, n: int) -> np.ndarray:
        """Transmit a packed ``(B, ceil(n/64))`` matrix of ``n``-bit blocks.

        Packed counterpart of :meth:`transmit_batch`: one ``(B, n)``
        Gaussian noise matrix is sampled exactly like the unpacked path
        (same stream), thresholded into two per-bit decision planes — what
        the receiver would output had the bit been a '1' (high level) or a
        '0' (low level) — and those planes are packed straight into words
        and muxed by the transmitted bits.  ``high + noise`` here is the
        same float sum as ``currents + noise`` in :meth:`_decide`, so both
        paths make bit-identical decisions for the same generator state.
        """
        matrix = require_packed_blocks(words, n)
        levels = self._levels()
        noise = self._rng.normal(0.0, levels.noise_sigma_a, size=(matrix.shape[0], n))
        decisions_if_one = pack_bits((levels.high_a + noise) > levels.threshold_a)
        decisions_if_zero = pack_bits((levels.low_a + noise) > levels.threshold_a)
        return (matrix & decisions_if_one) | (~matrix & decisions_if_zero)

    def _decide(self, stream: np.ndarray) -> np.ndarray:
        """Shared shape-preserving modulate/noise/threshold chain."""
        levels = self._levels()
        currents = np.where(stream == 1, levels.high_a, levels.low_a).astype(float)
        noisy = currents + self._rng.normal(0.0, levels.noise_sigma_a, size=currents.shape)
        return (noisy > levels.threshold_a).astype(np.uint8)

    def transmit_soft(self, bits) -> np.ndarray:
        """Transmit a bit vector and return the noisy photocurrents (amps)."""
        stream = as_gf2(bits).ravel()
        levels = self._levels()
        currents = np.where(stream == 1, levels.high_a, levels.low_a).astype(float)
        return currents + self._rng.normal(0.0, levels.noise_sigma_a, size=currents.size)
