"""Per-wavelength channel power breakdown (paper Section IV-E, Figure 6a).

``P_channel = P_ENC+DEC + P_MR + P_laser`` evaluated per wavelength:

* ``P_laser`` comes from the link operating point (laser electrical power
  for the OP_laser required by the selected code and BER target),
* ``P_MR`` is the modulator driver power (1.36 mW per wavelength),
* ``P_ENC+DEC`` is the interface power of the active mode divided by the
  number of wavelengths of the channel (the Table I interfaces serve the
  whole 16-wavelength channel).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..interfaces.synthesis import SynthesisReport, synthesize_interfaces
from ..link.design import LinkDesignPoint, OpticalLinkDesigner

__all__ = ["ChannelPowerBreakdown", "channel_power_breakdown"]


@dataclass(frozen=True)
class ChannelPowerBreakdown:
    """Power contributions of one wavelength of an MWSR channel, in watts."""

    code_name: str
    target_ber: float
    laser_power_w: float
    modulator_power_w: float
    interface_power_w: float
    feasible: bool
    communication_time: float
    code_rate: float

    @property
    def total_power_w(self) -> float:
        """P_channel per wavelength."""
        return self.laser_power_w + self.modulator_power_w + self.interface_power_w

    @property
    def total_power_mw(self) -> float:
        """P_channel per wavelength in milliwatts (Figure 6a y-axis)."""
        return self.total_power_w * 1e3

    @property
    def laser_share(self) -> float:
        """Fraction of the channel power drawn by the laser (0.92 w/o ECC)."""
        total = self.total_power_w
        if total <= 0:
            raise ConfigurationError("total channel power must be positive")
        return self.laser_power_w / total

    def as_dict(self) -> dict[str, float]:
        """Breakdown as a plain dictionary (report/CSV friendly)."""
        return {
            "code": self.code_name,
            "target_ber": self.target_ber,
            "laser_mw": self.laser_power_w * 1e3,
            "modulator_mw": self.modulator_power_w * 1e3,
            "interface_mw": self.interface_power_w * 1e3,
            "total_mw": self.total_power_mw,
            "laser_share": self.laser_share,
            "communication_time": self.communication_time,
            "feasible": float(self.feasible),
        }


def channel_power_breakdown(
    code,
    target_ber: float,
    *,
    config: PaperConfig = DEFAULT_CONFIG,
    designer: OpticalLinkDesigner | None = None,
    synthesis: SynthesisReport | None = None,
    design_point: LinkDesignPoint | None = None,
) -> ChannelPowerBreakdown:
    """Compute the per-wavelength power breakdown for one code and BER target.

    A pre-computed designer, synthesis report or design point can be passed
    in to avoid recomputation inside sweeps.
    """
    if designer is None:
        designer = OpticalLinkDesigner(config=config)
    if synthesis is None:
        synthesis = synthesize_interfaces(config=config)
    if design_point is None:
        design_point = designer.design_point(code, target_ber)

    mode = getattr(code, "name", str(code))
    try:
        interface_power_w = synthesis.interface_power_w(mode)
    except KeyError:
        # Codes outside the Table I set fall back to the parametric report.
        parametric = synthesize_interfaces(config=config, parametric=True)
        try:
            interface_power_w = parametric.interface_power_w(mode)
        except KeyError:
            # Last resort: charge the uncoded interface path.
            interface_power_w = synthesis.interface_power_w("w/o ECC")
    per_wavelength_interface = interface_power_w / config.num_wavelengths

    return ChannelPowerBreakdown(
        code_name=design_point.code_name,
        target_ber=design_point.target_ber,
        laser_power_w=design_point.laser_electrical_power_w,
        modulator_power_w=config.modulator_power_w,
        interface_power_w=per_wavelength_interface,
        feasible=design_point.feasible,
        communication_time=design_point.communication_time,
        code_rate=design_point.code_rate,
    )
