"""BER/SNR relations for the on-off-keyed optical link (paper Eq. 1–3).

The paper models detection with the classic complementary-error-function
relation between (power) signal-to-noise ratio and raw bit error
probability:

* Eq. 3: ``p = 0.5 * erfc(sqrt(SNR))``
* Eq. 1 (inverted form): ``SNR = [erfc^-1(2 * BER)]^2``

Note on Eq. 1 as printed in the paper: it reads
``SNR = [erfc^-1(1 - 2 BER)]^2``, which is only consistent with Eq. 3 if the
``erfc^-1`` is read as ``erf^-1`` (since ``erf^-1(1 - x) = erfc^-1(x)``).
This module implements the self-consistent pair, i.e. the exact inverse of
Eq. 3, and documents the discrepancy (see DESIGN.md, "errata handled").

For coded links the chain is: target post-decoding BER → tolerable raw
channel BER (inverting Eq. 2, :func:`repro.coding.theory.raw_ber_for_target_output_ber`)
→ required SNR (this module) → required optical power (``repro.link``).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc, erfcinv

from ..coding.theory import raw_ber_for_target_output_ber
from ..exceptions import ConfigurationError
from ..units import linear_to_db

__all__ = [
    "raw_ber_from_snr",
    "snr_from_ber",
    "required_raw_ber",
    "required_snr",
    "snr_margin_db",
]


def raw_ber_from_snr(snr: float | np.ndarray) -> float | np.ndarray:
    """Raw bit error probability of OOK detection at a given power SNR.

    Implements paper Eq. 3: ``p = 0.5 * erfc(sqrt(SNR))``.
    """
    snr_arr = np.asarray(snr, dtype=float)
    if np.any(snr_arr < 0):
        raise ConfigurationError("SNR must be non-negative")
    result = 0.5 * erfc(np.sqrt(snr_arr))
    if np.isscalar(snr):
        return float(result)
    return result


def snr_from_ber(ber: float | np.ndarray) -> float | np.ndarray:
    """Power SNR required to reach a raw bit error probability (paper Eq. 1).

    Self-consistent inverse of :func:`raw_ber_from_snr`:
    ``SNR = [erfc^-1(2 * BER)]^2``.
    """
    ber_arr = np.asarray(ber, dtype=float)
    if np.any(ber_arr <= 0) or np.any(ber_arr >= 0.5):
        raise ConfigurationError("BER must lie in (0, 0.5) for the SNR to be defined")
    result = erfcinv(2.0 * ber_arr) ** 2
    if np.isscalar(ber):
        return float(result)
    return result


def required_raw_ber(code, target_ber: float) -> float:
    """Raw channel BER tolerated by ``code`` while meeting ``target_ber``.

    Thin wrapper around the coding-theory inversion so link-level code only
    needs this module.
    """
    return raw_ber_for_target_output_ber(code, target_ber)


def required_snr(code, target_ber: float) -> float:
    """SNR required at the photodetector for a coded link to hit ``target_ber``.

    Chains the inversion of Eq. 2 (code) with the inversion of Eq. 3 (OOK
    detection).  For the uncoded scheme this reduces to
    ``snr_from_ber(target_ber)``.
    """
    raw = required_raw_ber(code, target_ber)
    return float(snr_from_ber(raw))


def snr_margin_db(actual_snr: float, required: float) -> float:
    """Margin (in dB) between an achieved SNR and the required SNR.

    Positive margins mean the link is over-provisioned; the runtime manager
    uses this to decide how far the laser power can be scaled down.
    """
    if actual_snr <= 0 or required <= 0:
        raise ConfigurationError("SNR values must be positive to compute a margin")
    return float(linear_to_db(actual_snr / required))
