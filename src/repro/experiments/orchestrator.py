"""Parallel sweep orchestrator: shard, fan out, checkpoint, merge.

Every experiment module exposes a *grid descriptor* — three functions that
decompose its sweep into independent, JSON-serializable shards:

* ``sweep_shards(config, options)`` lists the shard parameter dicts (the
  grid: BER chunks for Figure 5, (code, target) Monte-Carlo points for the
  validation sweep, a single ``{}`` for indivisible experiments);
* ``run_sweep_shard(params, config)`` computes one shard and returns a
  JSON payload;
* ``merge_sweep(payloads, config, options)`` assembles the ordered payloads
  into the final ``(text report, CSV rows)`` pair.

:func:`run_experiment` drives those descriptors either serially or through
a process pool (``jobs > 1``).  Three properties make the parallel run
byte-identical to the serial one:

1. shards never share state — stochastic shards rebuild their generator
   from ``SeedSequence(seed, spawn_key=(index,))`` (see
   :func:`repro.coding.montecarlo.shard_seed_sequences`), so the outcome
   depends only on the grid position, not on scheduling;
2. payloads are reduced to plain JSON types the moment they are produced,
   so the in-process, pickled-over-a-pipe and reloaded-from-checkpoint
   paths all carry exactly the same values (JSON round-trips floats
   losslessly);
3. merging consumes payloads in grid order regardless of completion order.

When a ``checkpoint_dir`` is given, completed shards are flushed to
``<dir>/<experiment>.json`` (atomically, after every shard) together with a
fingerprint of the grid; ``resume=True`` reloads any checkpoint whose
fingerprint still matches and only runs the missing shards.  An interrupted
eight-hour sweep therefore restarts where it stopped, and a finished one
merges instantly.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from . import (
    adaptive,
    calibration,
    figure3,
    figure4,
    figure5,
    figure6,
    headline,
    network,
    table1,
    validation,
)

__all__ = [
    "GridFunctions",
    "ExperimentGrid",
    "available_experiments",
    "describe_grid",
    "run_experiment",
    "checkpoint_path",
]


@dataclass(frozen=True)
class GridFunctions:
    """The three grid-descriptor callables of one experiment."""

    shards: Callable[..., List[dict]]
    run_shard: Callable[..., dict]
    merge: Callable[..., tuple]


#: Registry mapping experiment names to their grid descriptors.  Populated at
#: import time so worker processes (which re-import this module) can dispatch
#: shards by experiment name alone.
_GRIDS: Dict[str, GridFunctions] = {
    "table1": GridFunctions(table1.sweep_shards, table1.run_sweep_shard, table1.merge_sweep),
    "validation": GridFunctions(
        validation.sweep_shards, validation.run_sweep_shard, validation.merge_sweep
    ),
    "figure3": GridFunctions(figure3.sweep_shards, figure3.run_sweep_shard, figure3.merge_sweep),
    "figure4": GridFunctions(figure4.sweep_shards, figure4.run_sweep_shard, figure4.merge_sweep),
    "figure5": GridFunctions(figure5.sweep_shards, figure5.run_sweep_shard, figure5.merge_sweep),
    "figure6a": GridFunctions(
        figure6.figure6a_sweep_shards,
        figure6.run_figure6a_sweep_shard,
        figure6.merge_figure6a_sweep,
    ),
    "figure6b": GridFunctions(
        figure6.figure6b_sweep_shards,
        figure6.run_figure6b_sweep_shard,
        figure6.merge_figure6b_sweep,
    ),
    "headline": GridFunctions(headline.sweep_shards, headline.run_sweep_shard, headline.merge_sweep),
    "calibration": GridFunctions(
        calibration.sweep_shards, calibration.run_sweep_shard, calibration.merge_sweep
    ),
    "network": GridFunctions(network.sweep_shards, network.run_sweep_shard, network.merge_sweep),
    "adaptive": GridFunctions(adaptive.sweep_shards, adaptive.run_sweep_shard, adaptive.merge_sweep),
}


def available_experiments() -> list[str]:
    """Sorted names of the experiments the orchestrator can run."""
    return sorted(_GRIDS)


@dataclass(frozen=True)
class ExperimentGrid:
    """A fully described sweep: the shard list plus its identity fingerprint."""

    experiment: str
    shard_params: tuple
    options: dict | None

    @property
    def fingerprint(self) -> str:
        """Hash identifying the grid; a checkpoint is only valid if it matches."""
        canonical = json.dumps(
            {
                "experiment": self.experiment,
                "shards": list(self.shard_params),
                "options": self.options,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def describe_grid(
    experiment: str,
    config: PaperConfig = DEFAULT_CONFIG,
    options: dict | None = None,
) -> ExperimentGrid:
    """Build the grid descriptor of one experiment (without running it)."""
    functions = _grid_functions(experiment)
    shards = tuple(_jsonable(params) for params in functions.shards(config, options))
    return ExperimentGrid(experiment=experiment, shard_params=shards, options=options)


def checkpoint_path(checkpoint_dir: str, experiment: str) -> str:
    """Location of one experiment's checkpoint inside a checkpoint directory."""
    return os.path.join(checkpoint_dir, f"{experiment}.json")


def run_experiment(
    experiment: str,
    *,
    config: PaperConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    options: dict | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> tuple[str, list[dict]]:
    """Run one experiment's full grid and return ``(text report, CSV rows)``.

    Parameters
    ----------
    experiment:
        A name from :func:`available_experiments`.
    config:
        Evaluation parameters; must be picklable when ``jobs > 1``.
    jobs:
        Number of worker processes.  ``1`` (the default) runs the shards
        in-process; the report is byte-identical either way.
    options:
        Experiment-specific grid overrides (e.g. ``{"target_bers": [...]}``
        for ``figure5``); must be JSON-serializable since they are part of
        the checkpoint fingerprint.
    checkpoint_dir:
        When given, completed shards are persisted there after every shard,
        so an interrupted sweep loses at most one shard of work.
    resume:
        Reuse the payloads of a matching checkpoint and run only the
        missing shards.  Requires ``checkpoint_dir``.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    if resume and checkpoint_dir is None:
        raise ConfigurationError("resume requires a checkpoint directory")
    functions = _grid_functions(experiment)
    grid = describe_grid(experiment, config, options)

    completed: Dict[int, Any] = {}
    if resume and checkpoint_dir is not None:
        completed = _load_checkpoint(checkpoint_dir, grid)
    pending = [index for index in range(len(grid.shard_params)) if index not in completed]

    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            completed[index] = _jsonable(
                functions.run_shard(grid.shard_params[index], config)
            )
            if checkpoint_dir is not None:
                _write_checkpoint(checkpoint_dir, grid, completed)
    else:
        _run_shards_pooled(grid, pending, completed, config, jobs, checkpoint_dir)

    payloads = [completed[index] for index in range(len(grid.shard_params))]
    return functions.merge(payloads, config, options)


# ------------------------------------------------------------------ internals
def _grid_functions(experiment: str) -> GridFunctions:
    try:
        return _GRIDS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment!r}; available: {available_experiments()}"
        ) from None


def _execute_shard(experiment: str, params: dict, config: PaperConfig) -> Any:
    """Worker entry point: run one shard and reduce it to JSON types.

    Module-level so it pickles by reference into worker processes, which
    re-import this module and dispatch through the same registry.
    """
    return _jsonable(_GRIDS[experiment].run_shard(params, config))


def _run_shards_pooled(
    grid: ExperimentGrid,
    pending: Sequence[int],
    completed: Dict[int, Any],
    config: PaperConfig,
    jobs: int,
    checkpoint_dir: str | None,
) -> None:
    """Fan the pending shards out over a process pool, checkpointing as they land."""
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        # Fork keeps worker start-up in the millisecond range (no numpy/scipy
        # re-import), which is what makes parallelism pay off even for
        # sub-second analytic sweeps.
        context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending)), mp_context=context) as pool:
        futures = {
            pool.submit(_execute_shard, grid.experiment, grid.shard_params[index], config): index
            for index in pending
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                completed[futures[future]] = future.result()
            if checkpoint_dir is not None:
                _write_checkpoint(checkpoint_dir, grid, completed)


def _jsonable(value: Any) -> Any:
    """Reduce a payload to plain JSON types (dict/list/str/float/int/bool/None).

    Numpy scalars are converted with ``.item()``; tuples become lists.  This
    runs on every shard payload — pooled or not — so all execution paths
    carry identical values and a checkpoint round-trip changes nothing.
    """
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise ConfigurationError(f"shard payload value {value!r} is not JSON-serializable")


def _load_checkpoint(checkpoint_dir: str, grid: ExperimentGrid) -> Dict[int, Any]:
    """Payloads of a previous run, or ``{}`` if absent, corrupt or stale."""
    path = checkpoint_path(checkpoint_dir, grid.experiment)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            stored = json.load(handle)
    except (OSError, ValueError):
        return {}
    if stored.get("fingerprint") != grid.fingerprint:
        return {}
    shards = stored.get("shards", {})
    try:
        return {
            int(index): payload
            for index, payload in shards.items()
            if 0 <= int(index) < len(grid.shard_params)
        }
    except (TypeError, ValueError):
        # Malformed shard keys count as a corrupt checkpoint: recompute.
        return {}


def _write_checkpoint(checkpoint_dir: str, grid: ExperimentGrid, completed: Dict[int, Any]) -> None:
    """Atomically persist the completed shards (write-to-temp, then rename)."""
    os.makedirs(checkpoint_dir, exist_ok=True)
    path = checkpoint_path(checkpoint_dir, grid.experiment)
    payload = {
        "experiment": grid.experiment,
        "fingerprint": grid.fingerprint,
        "num_shards": len(grid.shard_params),
        "shards": {str(index): completed[index] for index in sorted(completed)},
    }
    descriptor, temp_path = tempfile.mkstemp(
        dir=checkpoint_dir, prefix=f".{grid.experiment}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
