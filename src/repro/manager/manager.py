"""The Optical Link Energy/Performance Manager.

The paper describes a shared manager that receives configuration requests
from source cores ("I need to talk to destination D with requirements R"),
selects the communication scheme (with or without ECC) and the laser output
power, and answers with the configuration both sides must apply.  This
module implements that request/response protocol on top of the link
designer, the power models and the selection policies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..coding.registry import paper_code_set
from ..coding.theory import output_ber, raw_ber_for_target_output_ber
from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from ..interfaces.synthesis import SynthesisReport, synthesize_interfaces
from ..link.design import OpticalLinkDesigner
from ..obs import metrics as obs_metrics
from ..power.channel import ChannelPowerBreakdown, channel_power_breakdown
from .policies import ConfigurationDecision, MinimumPowerPolicy, SelectionPolicy

__all__ = [
    "CommunicationRequest",
    "LinkConfiguration",
    "OpticalLinkManager",
    "derated_target_ber",
]


def derated_target_ber(code, target_ber: float, margin_multiplier: float) -> float:
    """Post-decoding target to *design* for so drift cannot break the real one.

    A link provisioned against a raw-BER drift margin ``m`` must keep the
    post-decoding BER at or below ``target_ber`` while the channel is up to
    ``m`` times noisier than designed.  Equivalently, its design raw BER must
    be ``m`` times lower than the code would nominally tolerate — which maps
    back onto the existing (code, target) design chain as designing for the
    *derated* post-decoding target ``output_ber(code, raw_nominal / m)``.
    ``margin_multiplier = 1`` returns ``target_ber`` unchanged (bit-for-bit:
    no analytic round trip is taken), so unmargined requests reproduce the
    historical design points exactly.
    """
    if margin_multiplier < 1.0:
        raise ConfigurationError("drift margin multiplier must be at least 1")
    if margin_multiplier == 1.0:
        return float(target_ber)
    nominal_raw = raw_ber_for_target_output_ber(code, target_ber)
    return float(output_ber(code, nominal_raw / margin_multiplier))


@dataclass(frozen=True)
class CommunicationRequest:
    """A configuration request issued by a source core to the manager."""

    source: int
    destination: int
    target_ber: float
    payload_bits: int = 64
    max_communication_time: float | None = None
    policy: SelectionPolicy | None = None

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")
        if not 0.0 < self.target_ber < 0.5:
            raise ConfigurationError("target BER must lie in (0, 0.5)")
        if self.payload_bits <= 0:
            raise ConfigurationError("payload must contain at least one bit")


@dataclass(frozen=True)
class LinkConfiguration:
    """The manager's answer: what both interface sides must apply."""

    request: CommunicationRequest
    decision: ConfigurationDecision
    laser_output_power_w: float
    configuration_id: int
    #: Raw-BER drift margin the configuration was provisioned for: the link
    #: meets the request's target while the channel degrades by up to this
    #: factor.  ``1.0`` is the historical unmargined design.
    margin_multiplier: float = 1.0

    @property
    def code_name(self) -> str:
        """Coding scheme both sides must select."""
        return self.decision.code_name

    @property
    def design_target_ber(self) -> float:
        """Post-decoding target the operating point was actually solved for.

        Equals the request's target for an unmargined configuration and the
        derated (tighter) target when a drift margin was applied.
        """
        return self.decision.breakdown.target_ber

    @property
    def communication_time(self) -> float:
        """Communication-time overhead of the selected scheme."""
        return self.decision.communication_time

    @property
    def channel_power_w(self) -> float:
        """Per-wavelength channel power at this configuration."""
        return self.decision.channel_power_w


class OpticalLinkManager:
    """Centralised manager configuring the ECC mode and laser power per request."""

    def __init__(
        self,
        *,
        config: PaperConfig = DEFAULT_CONFIG,
        codes: Sequence | None = None,
        default_policy: SelectionPolicy | None = None,
    ):
        self._config = config
        self._codes = list(codes) if codes is not None else paper_code_set(config.ip_bus_width_bits)
        if not self._codes:
            raise ConfigurationError("the manager needs at least one coding scheme")
        self._designer = OpticalLinkDesigner(config=config)
        self._synthesis: SynthesisReport = synthesize_interfaces(config=config)
        self._default_policy: SelectionPolicy = (
            default_policy if default_policy is not None else MinimumPowerPolicy()
        )
        self._configuration_counter = itertools.count(1)
        self._active: Dict[tuple[int, int], LinkConfiguration] = {}
        self._candidate_cache: Dict[tuple[float, float], list[ChannelPowerBreakdown]] = {}

    # ------------------------------------------------------------------ queries
    @property
    def config(self) -> PaperConfig:
        """Interconnect parameters the manager was built for."""
        return self._config

    @property
    def codes(self) -> list:
        """Coding schemes the manager can select between."""
        return list(self._codes)

    def active_configurations(self) -> list[LinkConfiguration]:
        """Currently applied configurations (one per source/destination pair)."""
        return list(self._active.values())

    # ------------------------------------------------------------------ requests
    def candidates_for(
        self, target_ber: float, margin_multiplier: float = 1.0
    ) -> list[ChannelPowerBreakdown]:
        """Channel-power breakdowns of every scheme at one BER target (cached).

        With a ``margin_multiplier`` above 1, every candidate is solved at
        its code's *derated* target (:func:`derated_target_ber`), i.e. with
        enough raw-BER headroom to ride out that much channel drift.
        """
        key = (float(target_ber), float(margin_multiplier))
        registry = obs_metrics.ACTIVE
        if key not in self._candidate_cache:
            if registry is not None:
                registry.inc("manager.candidates.cache_misses")
            self._candidate_cache[key] = [
                channel_power_breakdown(
                    code,
                    derated_target_ber(code, key[0], key[1]),
                    config=self._config,
                    designer=self._designer,
                    synthesis=self._synthesis,
                )
                for code in self._codes
            ]
        elif registry is not None:
            registry.inc("manager.candidates.cache_hits")
        return self._candidate_cache[key]

    def configure(
        self, request: CommunicationRequest, *, margin_multiplier: float = 1.0
    ) -> LinkConfiguration:
        """Handle one configuration request and record the applied configuration.

        ``margin_multiplier`` provisions the selected operating point against
        raw-BER drift (see :func:`derated_target_ber`); the online adaptive
        controller passes the margin of the channel's current level, a static
        worst-case design passes the drift model's worst case, and the
        default of 1 reproduces the historical unmargined behaviour exactly.
        """
        self._validate_endpoints(request)
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.inc("manager.configure.calls")
        candidates = self.candidates_for(request.target_ber, margin_multiplier)
        policy = request.policy if request.policy is not None else self._default_policy
        if request.max_communication_time is not None:
            candidates = [
                c for c in candidates if c.communication_time <= request.max_communication_time
            ]
        decision = policy.select(candidates, config=self._config)
        code = next(c for c in self._codes if c.name == decision.code_name)
        # The designer memoizes the solved operating point per (code,
        # target), so request-rate simulation does not re-run the
        # crosstalk/brentq chain per transfer.
        laser_output = self._designer.required_laser_output_power(
            code, decision.breakdown.target_ber
        )
        configuration = LinkConfiguration(
            request=request,
            decision=decision,
            laser_output_power_w=laser_output,
            configuration_id=next(self._configuration_counter),
            margin_multiplier=float(margin_multiplier),
        )
        self._active[(request.source, request.destination)] = configuration
        return configuration

    def configure_degraded(
        self,
        request: CommunicationRequest,
        health,
        ladder,
        *,
        base_margin_multiplier: float = 1.0,
    ):
        """Configure a request against a channel's hard-fault health.

        Runs the request through a
        :class:`~repro.manager.policies.DegradationLadder` first: the ladder
        inspects the destination's :class:`~repro.netsim.failures.ChannelHealth`
        and picks the mildest sufficient measure.  Returns
        ``(configuration, action)`` — ``configuration`` is ``None`` when the
        ladder declares the channel down (the caller drops or reroutes the
        transfer; no energy is spent).  ``base_margin_multiplier`` lets an
        online controller's drift margin combine with the fault-driven one:
        the larger of the two is provisioned.
        """
        action = ladder.action_for(health)
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.inc("manager.configure_degraded.calls")
            registry.inc(f"manager.degradation.rung.{action.rung}")
        if not action.serve:
            return None, action
        margin = max(float(base_margin_multiplier), action.margin_multiplier)
        return self.configure(request, margin_multiplier=margin), action

    def release(self, source: int, destination: int) -> None:
        """Drop the configuration of one source/destination pair (end of stream)."""
        self._active.pop((source, destination), None)

    def _validate_endpoints(self, request: CommunicationRequest) -> None:
        upper = self._config.num_onis
        for endpoint in (request.source, request.destination):
            if not 0 <= endpoint < upper:
                raise ConfigurationError(
                    f"ONI index {endpoint} outside [0, {upper - 1}] for this interconnect"
                )
