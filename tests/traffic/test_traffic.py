"""Tests for the traffic generators, task sets and trace record/replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.traffic.generators import (
    BurstyTrafficGenerator,
    HotspotTrafficGenerator,
    TrafficRequest,
    UniformTrafficGenerator,
)
from repro.traffic.tasks import PeriodicTask, TaskSet
from repro.traffic.trace import TraceRecorder, replay_trace


class TestTrafficRequest:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrafficRequest(0.0, 1, 1, 64, 1e-9)
        with pytest.raises(ConfigurationError):
            TrafficRequest(0.0, 1, 0, 0, 1e-9)
        with pytest.raises(ConfigurationError):
            TrafficRequest(0.0, 1, 0, 64, 0.9)


class TestGenerators:
    def test_uniform_generator_produces_the_requested_count(self, rng):
        generator = UniformTrafficGenerator(12, rng=rng)
        requests = list(generator.generate(50))
        assert len(requests) == 50

    def test_arrival_times_are_increasing(self, rng):
        generator = UniformTrafficGenerator(12, rng=rng)
        times = [r.arrival_time_s for r in generator.generate(100)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_uniform_destinations_never_equal_sources(self, rng):
        generator = UniformTrafficGenerator(12, rng=rng)
        assert all(r.source != r.destination for r in generator.generate(200))

    def test_mean_arrival_rate_is_respected(self, rng):
        generator = UniformTrafficGenerator(12, mean_request_rate_hz=1e6, rng=rng)
        requests = list(generator.generate(2000))
        duration = requests[-1].arrival_time_s - requests[0].arrival_time_s
        assert 2000 / duration == pytest.approx(1e6, rel=0.15)

    def test_hotspot_generator_concentrates_traffic(self, rng):
        generator = HotspotTrafficGenerator(12, hotspot=0, hotspot_fraction=0.7, rng=rng)
        requests = list(generator.generate(1000))
        to_hotspot = sum(1 for r in requests if r.destination == 0)
        assert to_hotspot / len(requests) > 0.5

    def test_bursty_generator_produces_variable_payloads_with_deadlines(self, rng):
        generator = BurstyTrafficGenerator(12, frame_bits=4096, rng=rng)
        requests = list(generator.generate(200))
        sizes = {r.payload_bits for r in requests}
        assert len(sizes) > 20
        assert all(r.deadline_s is not None for r in requests)

    @pytest.mark.parametrize(
        "factory", [UniformTrafficGenerator, HotspotTrafficGenerator, BurstyTrafficGenerator]
    )
    def test_seed_reproduces_the_request_stream(self, factory):
        first = list(factory(12, seed=42).generate(30))
        second = list(factory(12, seed=42).generate(30))
        assert first == second

    def test_seed_accepts_a_seed_sequence(self):
        sequence = np.random.SeedSequence(7, spawn_key=(3,))
        first = list(UniformTrafficGenerator(12, seed=sequence).generate(10))
        second = list(
            UniformTrafficGenerator(
                12, seed=np.random.SeedSequence(7, spawn_key=(3,))
            ).generate(10)
        )
        assert first == second

    def test_seed_and_rng_are_mutually_exclusive(self, rng):
        with pytest.raises(ConfigurationError):
            UniformTrafficGenerator(12, rng=rng, seed=1)

    def test_generator_validation(self):
        with pytest.raises(ConfigurationError):
            UniformTrafficGenerator(1)
        with pytest.raises(ConfigurationError):
            UniformTrafficGenerator(12, mean_request_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            HotspotTrafficGenerator(12, hotspot=20)
        with pytest.raises(ConfigurationError):
            BurstyTrafficGenerator(12, burstiness=0.5)
        generator = UniformTrafficGenerator(12)
        with pytest.raises(ConfigurationError):
            list(generator.generate(-1))


class TestPeriodicTasks:
    def test_release_times(self):
        task = PeriodicTask("t", 1, 0, period_s=1e-3, payload_bits=64, relative_deadline_s=1e-4)
        releases = task.releases_until(3.5e-3)
        assert releases == pytest.approx([0.0, 1e-3, 2e-3, 3e-3])

    def test_utilisation(self):
        # 1000 bits every millisecond on a 1 Gb/s channel: 1 us busy per 1 ms.
        task = PeriodicTask("t", 1, 0, period_s=1e-3, payload_bits=1000, relative_deadline_s=1e-4)
        assert task.utilisation(1e9) == pytest.approx(1e-3)

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("t", 1, 0, period_s=0.0, payload_bits=64, relative_deadline_s=1e-4)
        with pytest.raises(ConfigurationError):
            PeriodicTask("t", 1, 0, period_s=1e-3, payload_bits=64, relative_deadline_s=2e-3)
        with pytest.raises(ConfigurationError):
            PeriodicTask("t", 1, 1, period_s=1e-3, payload_bits=64, relative_deadline_s=1e-4)

    def test_task_set_utilisation_and_schedulability(self):
        tasks = TaskSet(
            tasks=[
                PeriodicTask("a", 1, 0, period_s=1e-6, payload_bits=40_000, relative_deadline_s=1e-6),
                PeriodicTask("b", 2, 0, period_s=1e-6, payload_bits=40_000, relative_deadline_s=1e-6),
            ]
        )
        rate = 160e9
        assert tasks.total_utilisation(rate) == pytest.approx(0.5)
        assert tasks.is_schedulable(rate, communication_time=1.75)
        assert not tasks.is_schedulable(rate, communication_time=2.5)

    def test_task_set_expands_requests_in_time_order(self):
        tasks = TaskSet(
            tasks=[
                PeriodicTask("a", 1, 0, period_s=2e-3, payload_bits=64, relative_deadline_s=1e-3),
                PeriodicTask("b", 2, 0, period_s=3e-3, payload_bits=64, relative_deadline_s=1e-3, phase_s=1e-3),
            ]
        )
        requests = tasks.requests_until(6e-3)
        times = [r.arrival_time_s for r in requests]
        assert times == sorted(times)
        assert len(requests) == 3 + 2

    def test_task_set_validation(self):
        with pytest.raises(ConfigurationError):
            TaskSet(tasks=[])
        duplicate = PeriodicTask("same", 1, 0, period_s=1e-3, payload_bits=64, relative_deadline_s=1e-4)
        with pytest.raises(ConfigurationError):
            TaskSet(tasks=[duplicate, duplicate])


class TestTrace:
    def test_record_save_load_round_trip(self, rng, tmp_path):
        generator = UniformTrafficGenerator(12, rng=rng)
        recorder = TraceRecorder()
        recorder.record_all(generator.generate(25))
        path = tmp_path / "trace.csv"
        recorder.save(path)
        loaded = TraceRecorder.load(path)
        assert len(loaded) == 25
        assert loaded.requests[0].source == recorder.requests[0].source
        assert loaded.requests[0].arrival_time_s == pytest.approx(
            recorder.requests[0].arrival_time_s
        )

    def test_deadlines_survive_the_round_trip(self, rng, tmp_path):
        generator = BurstyTrafficGenerator(12, rng=rng)
        recorder = TraceRecorder()
        recorder.record_all(generator.generate(5))
        path = tmp_path / "trace.csv"
        recorder.save(path)
        loaded = TraceRecorder.load(path)
        assert loaded.requests[0].deadline_s == pytest.approx(recorder.requests[0].deadline_s)

    def test_replay_orders_by_arrival_time(self):
        recorder = TraceRecorder()
        recorder.record(TrafficRequest(2.0, 1, 0, 64, 1e-9))
        recorder.record(TrafficRequest(1.0, 2, 0, 64, 1e-9))
        replayed = list(replay_trace(recorder))
        assert [r.arrival_time_s for r in replayed] == [1.0, 2.0]

    def test_loading_a_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceRecorder.load(tmp_path / "missing.csv")
