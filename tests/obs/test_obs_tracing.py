"""Unit tests of span tracing: JSONL emission, activation, no-op path."""

from __future__ import annotations

import io
import json
import os
import time

from repro.obs import tracing as obs_tracing
from repro.obs.tracing import Tracer, tracing_to


def _records(sink: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestEmission:
    def test_span_emits_one_json_line(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("work", shard=3):
            pass
        (record,) = _records(sink)
        assert record["kind"] == "span"
        assert record["name"] == "work"
        assert record["pid"] == os.getpid()
        assert record["attrs"] == {"shard": 3}
        assert record["duration_s"] >= 0.0
        assert tracer.spans_emitted == 1

    def test_emit_formats_every_attr_shape(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.emit("bare", 0.25)
        tracer.emit("one-int", 0.25, {"attempts": 17})  # fast path
        tracer.emit("one-str", 0.25, {"code": "H(71,64)"})
        tracer.emit("many", 0.25, {"a": 1, "b": 2.5})
        bare, one_int, one_str, many = _records(sink)
        assert "attrs" not in bare
        assert one_int["attrs"] == {"attempts": 17}
        assert one_str["attrs"] == {"code": "H(71,64)"}
        assert many["attrs"] == {"a": 1, "b": 2.5}

    def test_start_offsets_are_monotonic_from_tracer_origin(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.emit("first", 0.0)
        time.sleep(0.002)
        tracer.emit("second", 0.0)
        first, second = _records(sink)
        assert 0.0 <= first["start_s"] < second["start_s"]

    def test_failed_span_records_the_error_kind(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        try:
            with tracer.span("explode"):
                raise ValueError("boom")
        except ValueError:
            pass
        (record,) = _records(sink)
        assert record["attrs"]["error"] == "ValueError"


class TestActivation:
    def test_disabled_by_default(self):
        assert obs_tracing.ACTIVE is None

    def test_tracing_to_scopes_restores_and_keeps_stream_open(self):
        sink = io.StringIO()
        with tracing_to(sink) as tracer:
            assert obs_tracing.ACTIVE is tracer
            tracer.emit("inside", 0.0)
        assert obs_tracing.ACTIVE is None
        assert not sink.closed  # caller-owned streams are never closed
        assert _records(sink)[0]["name"] == "inside"

    def test_enable_tracing_owns_path_handles(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = obs_tracing.enable_tracing(path)
        try:
            tracer.emit("spanned", 0.125, {"attempts": 2})
        finally:
            obs_tracing.disable_tracing()
        with open(path, encoding="utf-8") as handle:
            (record,) = [json.loads(line) for line in handle]
        assert record["name"] == "spanned"
        assert obs_tracing.active_tracer() is None
