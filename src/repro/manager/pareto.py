"""Pareto-front utilities over (communication time, channel power).

Figure 6b's observation is that, for a given BER target, every coding scheme
is Pareto-optimal: the uncoded link is fastest but hungriest, H(7,4) is the
slowest but (laser-wise) leanest, H(71,64) sits in between.  The helpers
here formalise domination and front extraction so both the figure
reproduction and the runtime manager can use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

__all__ = ["ParetoPoint", "dominates", "pareto_front"]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate configuration in the power/performance plane."""

    code_name: str
    target_ber: float
    communication_time: float
    channel_power_w: float

    @property
    def objectives(self) -> tuple[float, float]:
        """The two minimised objectives (communication time, channel power)."""
        return (self.communication_time, self.channel_power_w)


def dominates(a: ParetoPoint, b: ParetoPoint, *, tolerance: float = 1e-12) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and better somewhere.

    Both objectives (communication time and channel power) are minimised.
    """
    at, ap = a.objectives
    bt, bp = b.objectives
    no_worse = at <= bt + tolerance and ap <= bp + tolerance
    strictly_better = at < bt - tolerance or ap < bp - tolerance
    return no_worse and strictly_better


def pareto_front(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset of a point cloud, sorted by communication time."""
    point_list = list(points)
    front = [
        candidate
        for candidate in point_list
        if not any(dominates(other, candidate) for other in point_list)
    ]
    return sorted(front, key=lambda p: (p.communication_time, p.channel_power_w))
