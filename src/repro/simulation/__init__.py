"""Stochastic simulators validating the analytic models.

The paper's evaluation is analytic; these simulators provide the empirical
counterpart used by the validation examples and tests:

* :mod:`repro.simulation.faults` — error-injection models (independent
  flips matching a BSC, and bursty errors that motivate interleaving).
* :mod:`repro.simulation.linksim` — bit-level simulation of one optical
  link: encode, transmit over the OOK/AWGN channel at a given operating
  point, decode, measure the residual BER.
* :mod:`repro.simulation.packets` — packet/message containers.
* :mod:`repro.simulation.transfersim` — message-level simulation with
  channel arbitration, serialization timing and per-transfer energy.
* :mod:`repro.simulation.stats` — streaming statistics with confidence
  intervals.
"""

from .faults import BurstErrorModel, IndependentErrorModel
from .linksim import LinkSimulationResult, OpticalLinkSimulator
from .packets import Message, Packet
from .stats import StreamingStatistics
from .transfersim import MessageTransferSimulator, TransferRecord

__all__ = [
    "IndependentErrorModel",
    "BurstErrorModel",
    "OpticalLinkSimulator",
    "LinkSimulationResult",
    "Packet",
    "Message",
    "StreamingStatistics",
    "MessageTransferSimulator",
    "TransferRecord",
]
