"""Drift-model tests: shapes, determinism and regression pins."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.dynamics import (
    AgingRampDrift,
    ChannelDriftModel,
    ConstantDrift,
    RandomWalkDrift,
    ThermalSinusoidDrift,
    make_drift_model,
)


class TestProcessShapes:
    def test_constant_drift(self):
        process = ConstantDrift(3.0)
        assert process.multiplier_at(0.0) == 3.0
        assert process.multiplier_at(1e3) == 3.0
        assert process.worst_case_multiplier == 3.0
        with pytest.raises(ConfigurationError):
            ConstantDrift(0.5)

    def test_thermal_sinusoid_bounds_and_shape(self):
        process = ThermalSinusoidDrift(period_s=1.0, peak_multiplier=16.0)
        assert process.multiplier_at(0.0) == pytest.approx(1.0)
        assert process.multiplier_at(0.5) == pytest.approx(16.0)
        assert process.multiplier_at(1.0) == pytest.approx(1.0)
        # Quarter period sits at the log-space midpoint.
        assert process.multiplier_at(0.25) == pytest.approx(4.0)
        times = np.linspace(0.0, 3.0, 301)
        values = [process.multiplier_at(t) for t in times]
        assert min(values) >= 1.0 - 1e-12
        assert max(values) <= 16.0 + 1e-12

    def test_thermal_phase_shifts_the_peak(self):
        process = ThermalSinusoidDrift(
            period_s=1.0, peak_multiplier=4.0, phase_rad=math.pi
        )
        assert process.multiplier_at(0.0) == pytest.approx(4.0)

    def test_aging_ramp_monotone(self):
        process = AgingRampDrift(ramp_multiplier=16.0, ramp_time_s=4.0)
        assert process.multiplier_at(0.0) == pytest.approx(1.0)
        assert process.multiplier_at(2.0) == pytest.approx(4.0)
        assert process.multiplier_at(4.0) == pytest.approx(16.0)
        assert process.multiplier_at(100.0) == pytest.approx(16.0)  # saturates
        values = [process.multiplier_at(t) for t in np.linspace(0, 5, 100)]
        assert values == sorted(values)

    def test_random_walk_stays_in_range(self):
        process = RandomWalkDrift(step_s=0.01, max_multiplier=8.0, seed=1)
        values = [process.multiplier_at(t) for t in np.linspace(0.0, 5.0, 400)]
        assert min(values) >= 1.0 - 1e-12
        assert max(values) <= 8.0 + 1e-12
        assert len(set(round(v, 9) for v in values)) > 10  # it actually moves

    def test_random_walk_query_order_independent(self):
        forward = RandomWalkDrift(step_s=0.01, max_multiplier=8.0, seed=5)
        backward = RandomWalkDrift(step_s=0.01, max_multiplier=8.0, seed=5)
        times = list(np.linspace(0.0, 2.0, 50))
        values_forward = [forward.multiplier_at(t) for t in times]
        values_backward = [backward.multiplier_at(t) for t in reversed(times)]
        assert values_forward == list(reversed(values_backward))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalSinusoidDrift(period_s=0.0, peak_multiplier=2.0)
        with pytest.raises(ConfigurationError):
            AgingRampDrift(ramp_multiplier=0.9, ramp_time_s=1.0)
        with pytest.raises(ConfigurationError):
            RandomWalkDrift(step_s=-1.0, max_multiplier=2.0, seed=0)
        with pytest.raises(ConfigurationError):
            RandomWalkDrift(step_s=1.0, max_multiplier=2.0, seed=0).multiplier_at(-1.0)


class TestChannelDriftModel:
    def test_per_channel_processes_are_independent(self):
        model = make_drift_model(
            "random-walk", 4, seed=7, worst_case_multiplier=8.0, timescale_s=1.0
        )
        series = [
            tuple(model.multiplier(channel, t) for t in np.linspace(0, 0.5, 20))
            for channel in range(4)
        ]
        assert len(set(series)) == 4  # different trajectories per channel

    def test_quantization_is_log2_grid(self):
        model = ChannelDriftModel(
            lambda channel, seq: ConstantDrift(3.0),
            2,
            seed=0,
            quantization_steps_per_octave=16,
        )
        value = model.multiplier(0, 0.0)
        assert value == 2.0 ** (round(math.log2(3.0) * 16) / 16)
        assert model.multiplier(1, 5.0) == value

    def test_nominal_multiplier_is_exact_one(self):
        model = ChannelDriftModel(
            lambda channel, seq: ThermalSinusoidDrift(period_s=1.0, peak_multiplier=4.0),
            1,
            seed=0,
        )
        assert model.multiplier(0, 0.0) == 1.0

    def test_quantized_never_exceeds_worst_case(self):
        model = ChannelDriftModel(
            lambda channel, seq: ThermalSinusoidDrift(period_s=1.0, peak_multiplier=3.0),
            1,
            seed=0,
        )
        values = [model.multiplier(0, t) for t in np.linspace(0, 1, 101)]
        assert max(values) <= 3.0

    def test_make_drift_model_profiles(self):
        assert make_drift_model("none", 4, seed=0) is None
        for profile in ("thermal", "aging", "random-walk"):
            model = make_drift_model(
                profile, 4, seed=0, worst_case_multiplier=8.0, timescale_s=1e-6
            )
            assert model.worst_case_multiplier == 8.0
            assert 1.0 <= model.multiplier(0, 0.0) <= 8.0
        with pytest.raises(ConfigurationError):
            make_drift_model("volcanic", 4, seed=0)
        with pytest.raises(ConfigurationError):
            make_drift_model("thermal", 4, seed=0, options={"bogus_knob": 1})


class TestRegressionPins:
    """Pin trajectories so refactors cannot silently change sweep results."""

    def test_thermal_pinned_values(self):
        process = ThermalSinusoidDrift(period_s=2e-6, peak_multiplier=16.0, phase_rad=0.3)
        assert process.multiplier_at(0.0) == pytest.approx(1.0638737983091848, rel=1e-12)
        assert process.multiplier_at(5e-7) == pytest.approx(6.025330648027039, rel=1e-12)

    def test_random_walk_pinned_values(self):
        process = RandomWalkDrift(step_s=1e-8, max_multiplier=16.0, log2_sigma=0.25, seed=42)
        values = [process.multiplier_at(step * 1e-8) for step in (0, 1, 5, 50, 333)]
        assert values[0] == 1.0
        assert values[1] == pytest.approx(1.0542224133062486, rel=1e-12)
        assert values[2] == pytest.approx(1.1882361417249705, rel=1e-12)
        assert values[3] == pytest.approx(2.2040208642356776, rel=1e-12)
        assert values[4] == pytest.approx(1.605339529554492, rel=1e-12)

    def test_channel_model_pinned_values(self):
        model = make_drift_model(
            "thermal", 3, seed=2026, worst_case_multiplier=16.0, timescale_s=1e-6
        )
        pinned = [model.multiplier(channel, 2.5e-7) for channel in range(3)]
        assert pinned == [
            pytest.approx(10.374716437208077, rel=1e-12),
            pytest.approx(1.189207115002721, rel=1e-12),
            pytest.approx(2.5936791093020193, rel=1e-12),
        ]
