"""Deterministic heap-based event queue for the network simulator.

The engine is a classic discrete-event loop: every state change is an
:class:`Event` with a simulation timestamp, and the :class:`EventQueue`
always hands back the earliest pending one.  Two properties matter for the
byte-identical parallel sweeps the orchestrator promises:

* **Total order.**  Events are keyed by ``(time_s, sequence)`` where the
  sequence number records insertion order, so simultaneous events pop in
  the order they were scheduled — never in payload-comparison or hash
  order.  No wall-clock or id()-based tie-breaking sneaks in.
* **No hidden entropy.**  The queue itself never touches a random
  generator; all randomness flows through the engine's single
  ``SeedSequence``-derived generator in pop order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterator

from ..exceptions import ConfigurationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """What an event asks the engine to do when it fires."""

    ARRIVAL = 0
    """A traffic request enters its source ONI's injection queue."""

    DEPARTURE = 1
    """A scheduled (re)transmission finishes serialising on its channel."""

    RETRY = 2
    """A backed-off ARQ attempt (or a deferred transfer waiting out a
    blackout) re-enters the channel-request path."""

    LINK_FAULT = 3
    """A channel's hard-fault health changes (see
    :mod:`repro.netsim.failures`); drives availability accounting and the
    degradation ladder's reactions."""


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """One scheduled state change, totally ordered by ``(time, sequence)``.

    ``slots=True`` keeps the per-event footprint to the four fields — the
    engine allocates one of these per arrival/departure, so the instance
    dict would otherwise dominate the hot loop's allocation traffic.
    """

    time_s: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` objects with deterministic tie-breaking."""

    __slots__ = ("_heap", "_sequence", "_processed")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def events_processed(self) -> int:
        """Number of events popped so far (the benchmark's events/s basis)."""
        return self._processed

    def push(self, time_s: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns the stored (sequenced) event."""
        if time_s < 0.0:
            raise ConfigurationError("event time cannot be negative")
        event = Event(time_s=float(time_s), sequence=self._sequence, kind=kind, payload=payload)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        if not self._heap:
            raise ConfigurationError("cannot pop from an empty event queue")
        self._processed += 1
        return heapq.heappop(self._heap)

    def drain(self) -> Iterator[Event]:
        """Iterate events in simulation order until the queue runs dry."""
        while self._heap:
            yield self.pop()
