"""Shared AST plumbing for the lint rules.

The engine parses each module once and hands rules a tree whose nodes
carry ``parent`` back-references (:func:`attach_parents`), so rules can
answer structural questions — "is this access inside a ``with self._lock``
block?", "what function encloses this call?" — without each maintaining
its own visitor stack.  :class:`ImportMap` resolves local names back to
the canonical dotted path they were imported from, so ``import numpy as
np`` and ``from numpy.random import default_rng`` trigger the same rules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "attach_parents",
    "ancestors",
    "enclosing_function",
    "enclosing_class",
    "enclosing_statement",
    "dotted_name",
    "ImportMap",
    "is_self_attribute",
]


def attach_parents(tree: ast.AST) -> ast.AST:
    """Set a ``parent`` attribute on every node; returns ``tree``."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]
    return tree


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The chain of parents from ``node`` (exclusive) to the module root."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """The innermost ``def``/``async def`` lexically containing ``node``."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def enclosing_statement(node: ast.AST) -> Optional[ast.stmt]:
    """The statement containing ``node`` (or ``node`` itself if one)."""
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = getattr(current, "parent", None)
    return current


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything richer."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def is_self_attribute(node: ast.AST, attr: Optional[str] = None) -> bool:
    """Whether ``node`` is ``self.<attr>`` (any attribute when unspecified)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


class ImportMap:
    """Local-name -> canonical dotted path resolution for one module."""

    def __init__(self, tree: ast.AST):
        #: ``np -> numpy``, ``rnd -> random`` (``import x [as y]``).
        self.modules: dict = {}
        #: ``default_rng -> numpy.random.default_rng`` (``from m import n [as y]``).
        self.names: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        # ``import numpy.random as npr`` binds the submodule.
                        self.modules[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *top* package.
                        top = alias.name.split(".")[0]
                        self.modules[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Canonical dotted path of a call target, or ``None``.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        whatever ``numpy`` was imported as; a bare ``default_rng`` resolves
        through its ``from`` import.  Calls on local objects (``self.x()``,
        ``rng.random()``) resolve to ``None`` — rules only match canonical
        module paths, so locals can never false-positive.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.names:
            resolved = self.names[head]
            return f"{resolved}.{rest}" if rest else resolved
        if head in self.modules:
            resolved = self.modules[head]
            return f"{resolved}.{rest}" if rest else resolved
        return None
