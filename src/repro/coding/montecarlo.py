"""Monte-Carlo estimation of post-decoding bit error rates.

The analytic expressions in :mod:`repro.coding.theory` are approximations;
this module provides the empirical counterpart used by the validation
examples and the property-based tests: push random messages through
encode → binary-symmetric channel → decode and count residual bit errors.

The engine is batched: messages are drawn, encoded, corrupted and decoded
``batch_size`` blocks at a time through the array-at-a-time coding API
(:meth:`~repro.coding.base.LinearBlockCode.encode_batch` /
:meth:`~repro.coding.base.LinearBlockCode.decode_batch`), so the only
Python-level loop runs once per batch rather than once per block.  Codes
that predate the batch API still work through the per-block fallback in
:func:`~repro.coding.base.encode_blocks` / :func:`~repro.coding.base.decode_blocks`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .base import decode_blocks, encode_blocks

__all__ = ["MonteCarloBERResult", "estimate_ber_monte_carlo", "DEFAULT_BATCH_SIZE"]

#: Default number of blocks simulated per vectorized batch.  Large enough to
#: amortise the per-batch Python overhead, small enough that the working set
#: (a few (B, n) uint8/float matrices) stays cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 8192


@dataclass(frozen=True)
class MonteCarloBERResult:
    """Outcome of a Monte-Carlo BER estimation run."""

    code_name: str
    raw_ber: float
    estimated_ber: float
    bits_simulated: int
    bit_errors: int
    blocks_simulated: int
    block_errors: int

    @property
    def block_error_rate(self) -> float:
        """Fraction of blocks with at least one residual error."""
        if self.blocks_simulated == 0:
            return 0.0
        return self.block_errors / self.blocks_simulated

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the estimated BER."""
        if self.bits_simulated == 0:
            return (0.0, 0.0)
        p = self.estimated_ber
        half_width = z * math.sqrt(max(p * (1.0 - p), 1e-300) / self.bits_simulated)
        return (max(0.0, p - half_width), min(1.0, p + half_width))


def estimate_ber_monte_carlo(
    code,
    raw_ber: float,
    *,
    num_blocks: int = 2000,
    rng: np.random.Generator | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MonteCarloBERResult:
    """Estimate the post-decoding BER of ``code`` on a BSC.

    Parameters
    ----------
    code:
        Any object following the coding API (``n``, ``k``, batch or scalar
        encode/decode), including :class:`~repro.coding.uncoded.UncodedScheme`.
    raw_ber:
        Crossover probability of the binary symmetric channel.
    num_blocks:
        Number of independent codewords to simulate.
    rng:
        Optional numpy random generator for reproducibility.
    batch_size:
        Number of blocks simulated per vectorized batch; the default keeps
        the per-batch arrays comfortably in memory while leaving the hot
        path entirely inside NumPy.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ConfigurationError("raw BER must lie in [0, 1]")
    if num_blocks < 1:
        raise ConfigurationError("at least one block must be simulated")
    if batch_size < 1:
        raise ConfigurationError("batch size must be at least 1")
    generator = rng if rng is not None else np.random.default_rng()

    bit_errors = 0
    block_errors = 0
    k = code.k
    n = code.n
    for start in range(0, num_blocks, batch_size):
        count = min(batch_size, num_blocks - start)
        messages = generator.integers(0, 2, size=(count, k), dtype=np.uint8)
        codewords = encode_blocks(code, messages)
        flips = (generator.random((count, n)) < raw_ber).astype(np.uint8)
        decoded = decode_blocks(code, codewords ^ flips).message_bits
        errors_per_block = np.count_nonzero(decoded != messages, axis=1)
        bit_errors += int(errors_per_block.sum())
        block_errors += int(np.count_nonzero(errors_per_block))
    bits = num_blocks * k
    return MonteCarloBERResult(
        code_name=getattr(code, "name", type(code).__name__),
        raw_ber=float(raw_ber),
        estimated_ber=bit_errors / bits,
        bits_simulated=bits,
        bit_errors=bit_errors,
        blocks_simulated=num_blocks,
        block_errors=block_errors,
    )
