"""Ablation benchmarks for the calibrated design choices (DESIGN.md §6).

The reproduction substitutes three substrates the paper does not publish in
reusable form: the MWSR transmission/crosstalk model, the VCSEL thermal
model and the synthesis flow.  These ablations vary the corresponding free
parameters and check that the paper's headline conclusion (coding cuts the
laser power roughly in half and extends the reachable BER range) is robust
to the calibration, not an artefact of one parameter choice.
"""

from __future__ import annotations

import pytest

from repro.coding.hamming import ShortenedHammingCode
from repro.coding.uncoded import UncodedScheme
from repro.config import DEFAULT_CONFIG
from repro.link.design import OpticalLinkDesigner


def _reduction_at(config, target_ber=1e-11) -> float:
    """Laser-power reduction of H(71,64) vs uncoded for one configuration."""
    designer = OpticalLinkDesigner(config=config)
    uncoded = designer.design_point(UncodedScheme(config.ip_bus_width_bits), target_ber)
    coded = designer.design_point(ShortenedHammingCode(config.ip_bus_width_bits), target_ber)
    return 1.0 - coded.laser_electrical_power_w / uncoded.laser_electrical_power_w


def test_bench_ablation_waveguide_length(benchmark):
    """The ~50% reduction holds across 2-10 cm worst-case waveguides."""

    def sweep():
        return {
            length: _reduction_at(DEFAULT_CONFIG.with_overrides(waveguide_length_m=length))
            for length in (0.02, 0.06, 0.10)
        }

    reductions = benchmark(sweep)
    for length, reduction in reductions.items():
        assert 0.35 < reduction < 0.70, f"length {length} m"


def test_bench_ablation_extinction_ratio(benchmark):
    """The reduction holds for 4-12 dB modulator extinction ratios."""

    def sweep():
        return {
            er: _reduction_at(DEFAULT_CONFIG.with_overrides(extinction_ratio_db=er))
            for er in (4.0, 6.9, 12.0)
        }

    reductions = benchmark(sweep)
    for er, reduction in reductions.items():
        assert 0.35 < reduction < 0.70, f"ER {er} dB"


def test_bench_ablation_laser_efficiency(benchmark):
    """The reduction holds whether the VCSEL is 4% or 10% efficient.

    The *absolute* laser power scales with the efficiency, but the relative
    coding gain does not: it comes from the SNR relaxation, which is why the
    paper's conclusion survives our laser-model substitution.
    """

    def sweep():
        return {
            eta: _reduction_at(
                DEFAULT_CONFIG.with_overrides(
                    laser_base_efficiency=eta,
                    # Keep the operating points within the 700 uW rating by
                    # relaxing the target when the laser is weak.
                ),
                target_ber=1e-9,
            )
            for eta in (0.04, 0.065, 0.10)
        }

    reductions = benchmark(sweep)
    for eta, reduction in reductions.items():
        assert 0.30 < reduction < 0.70, f"efficiency {eta}"


def test_bench_ablation_channel_population(benchmark):
    """More ONIs / wavelengths increase losses and crosstalk but not the trend."""

    def sweep():
        results = {}
        for num_onis, num_wavelengths in ((4, 8), (12, 16), (24, 32)):
            config = DEFAULT_CONFIG.with_overrides(
                num_onis=num_onis, num_wavelengths=num_wavelengths
            )
            results[(num_onis, num_wavelengths)] = _reduction_at(config, target_ber=1e-9)
        return results

    reductions = benchmark(sweep)
    for key, reduction in reductions.items():
        assert 0.30 < reduction < 0.70, f"geometry {key}"
