"""Cyclic redundancy checks for error *detection*.

CRCs do not correct errors, so on their own they cannot relax the laser
power under the paper's fixed-BER criterion; they matter for the
detection-plus-retransmission policies explored by the runtime manager and
for end-to-end integrity checks in the message-level simulator.

Two implementations share one definition: the bit-serial
:meth:`CyclicRedundancyCheck.checksum` (the readable reference, one shift
per bit) and the batch :meth:`CyclicRedundancyCheck.checksum_batch`, which
exploits the linearity of the CRC over GF(2): the remainder of a message is
the XOR of the per-bit remainders ``x^{L-1-i+w} mod g``, folded into
256-entry per-byte partial-CRC tables (the same bit-slicing trick the coder
tables use).  A whole ``(B, L)`` batch then reduces to ``ceil(L/8)`` table
gathers — this is what makes per-packet CRCs affordable in the bit-exact
network simulator.  Both paths are bit-identical and the tests pin them
together.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .matrices import as_gf2
from .packed import byte_lookup_tables, fold_byte_tables

__all__ = ["CyclicRedundancyCheck"]

_WELL_KNOWN_POLYNOMIALS = {
    "crc4-itu": (4, 0x3),
    "crc8": (8, 0x07),
    "crc8-maxim": (8, 0x31),
    "crc16-ccitt": (16, 0x1021),
    "crc16-ibm": (16, 0x8005),
    "crc32": (32, 0x04C11DB7),
}


class CyclicRedundancyCheck:
    """Bit-serial CRC generator/checker over GF(2).

    Parameters
    ----------
    width:
        Number of CRC bits appended to the message.
    polynomial:
        Generator polynomial as an integer *without* the implicit leading
        ``x^width`` term (the usual "normal" representation, e.g. ``0x1021``
        for CRC-16-CCITT).
    """

    def __init__(self, width: int, polynomial: int):
        if width < 1 or width > 64:
            raise ConfigurationError("CRC width must lie between 1 and 64 bits")
        if polynomial <= 0 or polynomial >= (1 << width):
            raise ConfigurationError("polynomial must fit in `width` bits and be non-zero")
        self._width = width
        self._polynomial = polynomial
        #: Per-message-length byte-sliced partial-CRC tables for the batch
        #: path, keyed by message bit length.
        self._batch_tables: dict[int, np.ndarray] = {}

    @classmethod
    def from_name(cls, name: str) -> "CyclicRedundancyCheck":
        """Construct one of the well-known CRCs by name (e.g. ``"crc16-ccitt"``)."""
        key = name.lower()
        if key not in _WELL_KNOWN_POLYNOMIALS:
            raise ConfigurationError(
                f"unknown CRC {name!r}; known: {sorted(_WELL_KNOWN_POLYNOMIALS)}"
            )
        width, poly = _WELL_KNOWN_POLYNOMIALS[key]
        return cls(width, poly)

    @property
    def width(self) -> int:
        """Number of check bits."""
        return self._width

    @property
    def polynomial(self) -> int:
        """Generator polynomial (normal representation)."""
        return self._polynomial

    def checksum(self, bits) -> np.ndarray:
        """Compute the CRC remainder of a bit vector (MSB-first)."""
        stream = as_gf2(bits).ravel()
        register = 0
        mask = (1 << self._width) - 1
        top_bit = 1 << (self._width - 1)
        for bit in stream:
            feedback = ((register & top_bit) >> (self._width - 1)) ^ int(bit)
            register = ((register << 1) & mask)
            if feedback:
                register ^= self._polynomial
        return np.array(
            [(register >> (self._width - 1 - i)) & 1 for i in range(self._width)],
            dtype=np.uint8,
        )

    def append(self, bits) -> np.ndarray:
        """Return the message followed by its CRC bits."""
        stream = as_gf2(bits).ravel()
        return np.concatenate([stream, self.checksum(stream)])

    def verify(self, bits_with_crc) -> bool:
        """Check a message+CRC vector; True when no error is detected."""
        stream = as_gf2(bits_with_crc).ravel()
        if stream.size <= self._width:
            raise CodewordLengthError("received vector shorter than the CRC itself")
        message = stream[: -self._width]
        received_crc = stream[-self._width:]
        return bool(np.array_equal(self.checksum(message), received_crc))

    # ------------------------------------------------------------------ batch path
    def _bit_contributions(self, length: int) -> np.ndarray:
        """Remainders ``x^{length-1-i+w} mod g`` of every message bit position.

        The CRC register is linear over GF(2) with zero initialisation, so
        the checksum of any message is the XOR of these per-bit remainders
        over its set bits.  Computed once per length by repeated
        multiply-by-``x`` (one shift-and-reduce per position).
        """
        mask = (1 << self._width) - 1
        top_bit = 1 << (self._width - 1)
        contributions = np.zeros(length, dtype=np.uint64)
        register = self._polynomial  # remainder of x^w: contribution of the last bit
        for position in range(length - 1, -1, -1):
            contributions[position] = register
            if position:
                feedback = register & top_bit
                register = (register << 1) & mask
                if feedback:
                    register ^= self._polynomial
        return contributions

    def _byte_tables(self, length: int) -> np.ndarray:
        """``(ceil(length/8), 256)`` partial-CRC tables for ``length``-bit messages.

        Entry ``[i, v]`` is the XOR of the bit contributions of every bit
        set in byte value ``v`` at byte position ``i`` of the MSB-first
        packed message, so a whole batch's checksums are ``ceil(length/8)``
        table gathers.  Cached per message length.
        """
        tables = self._batch_tables.get(length)
        if tables is None:
            tables = byte_lookup_tables(self._bit_contributions(length))
            self._batch_tables[length] = tables
        return tables

    def checksum_batch(self, messages) -> np.ndarray:
        """CRC registers of a whole ``(B, L)`` bit matrix as ``(B,)`` uint64.

        Bit-identical to running :meth:`checksum` row by row (the tests pin
        the two together), at a few table gathers per batch instead of one
        Python-loop iteration per bit.
        """
        matrix = np.asarray(messages, dtype=np.uint8)
        if matrix.ndim != 2:
            raise CodewordLengthError(
                f"checksum_batch expects a (B, L) bit matrix, got shape {matrix.shape}"
            )
        return fold_byte_tables(self._byte_tables(matrix.shape[1]), np.packbits(matrix, axis=1))

    def checksum_batch_bits(self, messages) -> np.ndarray:
        """Batch counterpart of :meth:`checksum`: ``(B, width)`` CRC bit rows."""
        registers = self.checksum_batch(messages)
        shifts = np.arange(self._width - 1, -1, -1, dtype=np.uint64)
        return ((registers[:, np.newaxis] >> shifts[np.newaxis, :]) & np.uint64(1)).astype(
            np.uint8
        )

    def verify_batch(self, bits_with_crc) -> np.ndarray:
        """Check a ``(B, L+width)`` batch; ``(B,)`` booleans, True when clean."""
        matrix = np.asarray(bits_with_crc, dtype=np.uint8)
        if matrix.ndim != 2 or matrix.shape[1] <= self._width:
            raise CodewordLengthError(
                "verify_batch expects a (B, L+width) matrix longer than the CRC itself"
            )
        expected = self.checksum_batch_bits(matrix[:, : -self._width])
        return np.all(expected == matrix[:, -self._width :], axis=1)
