"""Name-based construction of the coding schemes used by the paper.

Experiments, examples and the runtime manager refer to codes by the names
the paper uses ("w/o ECC", "H(7,4)", "H(71,64)"), so a small registry maps
those names to constructors.  Additional schemes (SECDED, BCH, repetition,
H(63,57) from the Figure 6a label) are pre-registered for the extension
studies; users can register their own with :func:`register_code`.
"""

from __future__ import annotations

import functools
import re
from typing import Callable, Dict

from ..exceptions import ConfigurationError
from .bch import BCHCode
from .extended_hamming import ExtendedHammingCode
from .hamming import HammingCode, ShortenedHammingCode
from .parity import SingleParityCheckCode
from .repetition import RepetitionCode
from .uncoded import UncodedScheme

__all__ = [
    "available_codes",
    "get_code",
    "register_code",
    "paper_code_set",
    "paper_code_by_name",
]

_FACTORIES: Dict[str, Callable[[], object]] = {}


def register_code(name: str, factory: Callable[[], object], *, overwrite: bool = False) -> None:
    """Register a named code factory.

    Raises :class:`ConfigurationError` if the name already exists and
    ``overwrite`` is False.
    """
    key = _normalise(name)
    if key in _FACTORIES and not overwrite:
        raise ConfigurationError(f"a code named {name!r} is already registered")
    _FACTORIES[key] = factory
    _cached_lookup.cache_clear()


def available_codes() -> list[str]:
    """Sorted list of registered code names (normalised form)."""
    return sorted(_FACTORIES)


@functools.lru_cache(maxsize=None)
def _cached_lookup(key: str):
    """Memoized code construction keyed by the normalised name.

    Code objects are immutable apart from lazily-built decoding tables, so
    sharing one instance across every lookup means repeated sweeps stop
    rebuilding generator matrices and syndrome tables.  The cache is cleared
    whenever :func:`register_code` changes the registry.
    """
    if key in _FACTORIES:
        return _FACTORIES[key]()
    return _construct_from_pattern(key)


def get_code(name: str):
    """Instantiate a code by name (memoized — repeated lookups share one instance).

    Besides explicitly registered names, the registry understands the
    generic patterns ``H(n,k)`` (Hamming or shortened Hamming),
    ``SECDED(k)``, ``BCH(m,t)`` and ``REP(r)``.
    """
    constructed = _cached_lookup(_normalise(name))
    if constructed is not None:
        return constructed
    raise ConfigurationError(
        f"unknown code {name!r}; available: {available_codes()} or patterns H(n,k), SECDED(k), BCH(m,t), REP(r)"
    )


def paper_code_set(block_length: int = 64) -> list:
    """The three transmission schemes evaluated in the paper.

    Returns ``[w/o ECC, H(71,64), H(7,4)]`` (order used by Figures 5/6),
    with the uncoded scheme sized to the IP bus width.
    """
    return [
        UncodedScheme(block_length),
        ShortenedHammingCode(block_length),
        HammingCode(3),
    ]


def paper_code_by_name(name: str, block_length: int = 64):
    """Resolve a code name against the paper set first, then the registry.

    The paper set sizes its uncoded scheme to the IP bus width, so names
    like ``"w/o ECC"`` must resolve through :func:`paper_code_set` (with the
    caller's ``block_length``) before falling back to :func:`get_code`.
    Shared by the experiment grid shards, which carry codes by name.
    """
    for code in paper_code_set(block_length):
        if code.name == name:
            return code
    return get_code(name)


def _normalise(name: str) -> str:
    return re.sub(r"\s+", "", name).lower()


def _construct_from_pattern(key: str):
    """Build a code from a generic textual pattern, or return None."""
    hamming_match = re.fullmatch(r"h\((\d+),(\d+)\)", key)
    if hamming_match:
        n, k = int(hamming_match.group(1)), int(hamming_match.group(2))
        m = n - k
        if (1 << m) - 1 == n:
            return HammingCode(m)
        if (1 << m) - 1 > n:
            code = ShortenedHammingCode(k)
            if code.n != n:
                raise ConfigurationError(
                    f"H({n},{k}) is not a (shortened) Hamming code; shortening {k} payload bits "
                    f"gives H({code.n},{k})"
                )
            return code
        raise ConfigurationError(f"H({n},{k}) is not a valid Hamming code")
    secded_match = re.fullmatch(r"secded\((\d+)\)", key)
    if secded_match:
        return ExtendedHammingCode(int(secded_match.group(1)))
    secded_nk = re.fullmatch(r"secded\((\d+),(\d+)\)", key)
    if secded_nk:
        return ExtendedHammingCode(int(secded_nk.group(2)))
    bch_match = re.fullmatch(r"bch\((\d+),(\d+)\)", key)
    if bch_match:
        return BCHCode(int(bch_match.group(1)), int(bch_match.group(2)))
    rep_match = re.fullmatch(r"rep\((\d+)\)", key)
    if rep_match:
        return RepetitionCode(int(rep_match.group(1)))
    spc_match = re.fullmatch(r"spc\((\d+)\)", key)
    if spc_match:
        return SingleParityCheckCode(int(spc_match.group(1)))
    return None


# --- default registrations -------------------------------------------------------
register_code("w/o ECC", lambda: UncodedScheme(64))
register_code("uncoded", lambda: UncodedScheme(64))
register_code("H(7,4)", lambda: HammingCode(3))
register_code("H(15,11)", lambda: HammingCode(4))
register_code("H(31,26)", lambda: HammingCode(5))
register_code("H(63,57)", lambda: HammingCode(6))
register_code("H(71,64)", lambda: ShortenedHammingCode(64))
register_code("H(127,120)", lambda: HammingCode(7))
register_code("SECDED(72,64)", lambda: ExtendedHammingCode(64))
register_code("SECDED(8,4)", lambda: ExtendedHammingCode(4))
register_code("BCH(63,t=2)", lambda: BCHCode(6, 2))
register_code("REP(3,1)", lambda: RepetitionCode(3))
