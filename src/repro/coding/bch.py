"""Binary BCH codes with configurable error-correction capability.

The paper chose Hamming codes "for their simplicity, but other coding
techniques can be used".  BCH codes are the natural next step: they keep the
same algebraic structure (cyclic, defined by a generator polynomial over
GF(2)) but correct ``t >= 2`` errors per block, allowing even lower laser
power at the cost of more parity bits and a more complex decoder.  They are
used by the extension experiments and the design-space sweeps.

The implementation constructs the generator polynomial as the least common
multiple of the minimal polynomials of ``alpha, alpha^2, ..., alpha^{2t}``
and decodes with the Berlekamp–Massey / Chien-search procedure, which is
adequate for the small ``t`` (2 or 3) relevant on-chip.

Batch decoding is fully vectorized and rides the packed substrate: the
``2t`` power-sum syndromes of every block come from bit-sliced byte tables
gathered straight off the packed word image, and the errored blocks run a
fixed ``2t``-iteration *branchless* Berlekamp–Massey over the GF log/antilog
tables — every iteration updates all errored rows at once with boolean
masks instead of branching per block — followed by a Chien search expressed
as one ``alpha^{-i·j}`` table evaluation over all candidate positions.  The
per-block Python BM/Chien survives as the reference decoder
(:meth:`BCHCode._decode_block_reference`) that the equivalence tests pin the
batch path against, including beyond-``t`` failure patterns.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError, DecodingFailure
from .base import BatchDecodeResult, DecodeResult, LinearBlockCode, PackedBatchDecodeResult
from .galois import GaloisField, get_field
from .matrices import as_gf2
from .packed import byte_lookup_tables, fold_byte_tables, pack_bits, packed_byte_view

__all__ = ["BCHCode"]


def _poly_mul_gf2(a: List[int], b: List[int]) -> List[int]:
    """Multiply two GF(2) polynomials given lowest-order-first."""
    result = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if not ca:
            continue
        for j, cb in enumerate(b):
            result[i + j] ^= ca & cb
    return result


def _poly_divmod_gf2(dividend: List[int], divisor: List[int]) -> tuple[List[int], List[int]]:
    """Polynomial division over GF(2); returns (quotient, remainder)."""
    if not any(divisor):
        # Without this guard an all-zero divisor degenerates the
        # trailing-zero strip loop to the zero polynomial and the division
        # silently produces garbage.
        raise ZeroDivisionError("polynomial division by the zero polynomial")
    remainder = list(dividend)
    deg_divisor = len(divisor) - 1
    while len(divisor) > 1 and divisor[-1] == 0:
        divisor = divisor[:-1]
        deg_divisor -= 1
    quotient = [0] * max(1, len(dividend) - deg_divisor)
    for shift in range(len(remainder) - 1, deg_divisor - 1, -1):
        if remainder[shift]:
            quotient[shift - deg_divisor] = 1
            for i, c in enumerate(divisor):
                remainder[shift - deg_divisor + i] ^= c
    while len(remainder) > 1 and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder


class BCHCode(LinearBlockCode):
    """Primitive binary BCH code of length ``2^m - 1`` correcting ``t`` errors."""

    def __init__(self, m: int, t: int):
        if t < 1:
            raise ConfigurationError("BCH correction capability t must be >= 1")
        field = get_field(m)
        n = field.order
        generator_poly = self._build_generator_polynomial(field, t)
        num_parity = len(generator_poly) - 1
        k = n - num_parity
        if k <= 0:
            raise ConfigurationError(
                f"BCH(m={m}, t={t}) has no payload bits (n={n}, parity={num_parity})"
            )
        generator_matrix = self._systematic_generator(generator_poly, n, k)
        super().__init__(
            generator_matrix,
            name=f"BCH({n},{k},t={t})",
            minimum_distance=2 * t + 1,
        )
        self._field = field
        self._t = t
        self._generator_poly = generator_poly
        self._syndrome_eval: np.ndarray | None = None
        self._syndrome_byte_tables_cache: np.ndarray | None = None
        self._chien_exponents: np.ndarray | None = None
        num_parity = n - k
        # Cyclic-polynomial coefficient p lives at systematic bit k+p when it
        # is a parity coefficient (p < n-k) and at message bit p-(n-k)
        # otherwise; these two permutations translate between the layouts.
        positions = np.arange(n)
        self._coeff_to_systematic = np.where(
            positions < num_parity, k + positions, positions - num_parity
        )
        self._systematic_to_coeff = np.where(
            positions < k, positions + num_parity, positions - k
        )

    # ------------------------------------------------------------------ construction
    @staticmethod
    def _build_generator_polynomial(field: GaloisField, t: int) -> List[int]:
        """LCM of the minimal polynomials of alpha^1 .. alpha^{2t}."""
        generator = [1]
        seen_roots: set[int] = set()
        for exponent in range(1, 2 * t + 1):
            element = field.alpha_power(exponent)
            if element in seen_roots:
                continue
            minimal = field.minimal_polynomial(element)
            # Record the conjugacy class so each minimal polynomial enters once.
            conjugate = element
            while conjugate not in seen_roots:
                seen_roots.add(conjugate)
                conjugate = field.multiply(conjugate, conjugate)
            generator = _poly_mul_gf2(generator, minimal)
        return generator

    @staticmethod
    def _systematic_generator(generator_poly: List[int], n: int, k: int) -> np.ndarray:
        """Systematic generator matrix of the cyclic code.

        Row ``i`` encodes the message monomial ``x^i``: the codeword is
        ``[message | parity]`` where parity is the remainder of
        ``x^{n-k} * x^i`` divided by the generator polynomial.
        """
        num_parity = n - k
        rows = np.zeros((k, n), dtype=np.uint8)
        for i in range(k):
            shifted = [0] * (num_parity + i) + [1]
            _, remainder = _poly_divmod_gf2(shifted, generator_poly)
            rows[i, i] = 1
            for degree, coefficient in enumerate(remainder):
                rows[i, k + degree] = coefficient
        return rows

    # ------------------------------------------------------------------ metadata
    @property
    def field(self) -> GaloisField:
        """The GF(2^m) field the code is defined over."""
        return self._field

    @property
    def t(self) -> int:
        """Designed error-correction capability."""
        return self._t

    @property
    def generator_polynomial(self) -> List[int]:
        """GF(2) generator polynomial, lowest-order coefficient first."""
        return list(self._generator_poly)

    # ------------------------------------------------------------------ decoding
    def _codeword_polynomial(self, received: np.ndarray) -> List[int]:
        """Map the systematic word [message | parity] onto the cyclic polynomial.

        The systematic encoder produced ``x^{n-k} m(x) + r(x)``; in our matrix
        layout the message occupies positions ``0..k-1`` and parity positions
        ``k..n-1``, so polynomial coefficient ``x^j`` is parity bit ``j`` for
        ``j < n-k`` and message bit ``j-(n-k)`` otherwise.
        """
        num_parity = self.n - self.k
        coefficients = [0] * self.n
        for j in range(num_parity):
            coefficients[j] = int(received[self.k + j])
        for i in range(self.k):
            coefficients[num_parity + i] = int(received[i])
        return coefficients

    def _syndrome_eval_matrix(self) -> np.ndarray:
        """``alpha^{j·i}`` evaluation matrix of shape ``(2t, n)``.

        Row ``j-1``, column ``i`` holds ``alpha^{j·i mod (2^m - 1)}``, so the
        power-sum syndrome ``S_j = r(alpha^j)`` of every block reduces to an
        XOR-reduction of the selected matrix entries.
        """
        if self._syndrome_eval is None:
            exponents = (
                np.outer(np.arange(1, 2 * self._t + 1), np.arange(self.n))
                % self._field.order
            )
            self._syndrome_eval = self._field.exp_table[exponents]
        return self._syndrome_eval

    def _syndrome_byte_tables(self) -> np.ndarray:
        """Bit-sliced syndrome tables: ``(ceil(n/8), 256, 2t)`` partial power sums.

        Entry ``[i, v]`` holds the XOR of ``alpha^{j·p}`` contributions of
        every bit set in byte value ``v`` at byte position ``i`` of the
        *systematic* word, so the ``2t`` syndromes of a whole batch are
        ``ceil(n/8)`` table gathers over the packed byte image — no
        unpacking, no ``(B, 2t, n)`` intermediate.
        """
        if self._syndrome_byte_tables_cache is None:
            # Per-bit contribution of systematic bit s: the 2t powers
            # alpha^{j·p} of its cyclic coefficient position p.
            eval_matrix = self._syndrome_eval_matrix()
            contributions = eval_matrix[:, self._systematic_to_coeff].T
            self._syndrome_byte_tables_cache = byte_lookup_tables(
                np.ascontiguousarray(contributions)
            )
        return self._syndrome_byte_tables_cache

    def _batch_syndromes_packed(self, words: np.ndarray) -> np.ndarray:
        """Power-sum syndromes ``S_1 .. S_2t`` of a packed ``(B, W)`` batch."""
        return fold_byte_tables(self._syndrome_byte_tables(), packed_byte_view(words))

    def _batch_syndromes(self, blocks: np.ndarray) -> np.ndarray:
        """Power-sum syndromes of an unpacked ``(B, n)`` batch (packed under the hood)."""
        return self._batch_syndromes_packed(pack_bits(blocks))

    # -------------------------------------------------------- batch BM + Chien
    def _gf_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise GF(2^m) product through the log/antilog tables."""
        field = self._field
        product = field.exp_table[field.log_table[a] + field.log_table[b]]
        return np.where((a == 0) | (b == 0), 0, product)

    def _batch_berlekamp_massey(self, syndromes: np.ndarray) -> np.ndarray:
        """Branchless batch Berlekamp–Massey over all errored rows at once.

        Runs the fixed ``2t`` iterations of the scalar algorithm
        (:meth:`_berlekamp_massey`) with every per-row branch replaced by a
        boolean mask, so the whole ``(R, 2t)`` syndrome matrix advances in
        lock-step.  Returns the ``(R, 2t+1)`` error-locator coefficients
        (degree can reach ``2t`` for uncorrectable patterns); rows follow the
        scalar recursion exactly, which the equivalence tests rely on.
        """
        field = self._field
        exp = field.exp_table
        log = field.log_table
        order = field.order
        num_rows = syndromes.shape[0]
        two_t = 2 * self._t
        width = two_t + 1
        locator = np.zeros((num_rows, width), dtype=np.int64)
        locator[:, 0] = 1
        previous = np.zeros_like(locator)
        previous[:, 0] = 1
        length = np.zeros(num_rows, dtype=np.int64)
        shift = np.ones(num_rows, dtype=np.int64)
        previous_discrepancy = np.ones(num_rows, dtype=np.int64)
        columns = np.arange(width)

        for index in range(two_t):
            discrepancy = syndromes[:, index].copy()
            for j in range(1, min(index, two_t) + 1):
                term = self._gf_mul(locator[:, j], syndromes[:, index - j])
                discrepancy ^= np.where(j <= length, term, 0)
            nonzero = discrepancy != 0
            # coefficient = discrepancy / previous_discrepancy (never zero).
            inverse = exp[order - log[previous_discrepancy]]
            coefficient = self._gf_mul(discrepancy, inverse)
            # correction = x^shift * coefficient * previous, one shift per row.
            shifted = columns[np.newaxis, :] - shift[:, np.newaxis]
            gathered = np.take_along_axis(previous, np.clip(shifted, 0, width - 1), axis=1)
            correction = np.where(
                shifted >= 0, self._gf_mul(coefficient[:, np.newaxis], gathered), 0
            )
            updated = locator ^ np.where(nonzero[:, np.newaxis], correction, 0)
            promote = nonzero & (2 * length <= index)
            previous = np.where(promote[:, np.newaxis], locator, previous)
            previous_discrepancy = np.where(promote, discrepancy, previous_discrepancy)
            length = np.where(promote, index + 1 - length, length)
            shift = np.where(promote, 1, shift + 1)
            locator = updated
        return locator

    def _chien_exponent_matrix(self) -> np.ndarray:
        """``(t, n)`` exponents of ``alpha^{-i·j}`` for the batch Chien search."""
        if self._chien_exponents is None:
            order = self._field.order
            self._chien_exponents = (
                -np.outer(np.arange(1, self._t + 1), np.arange(self.n))
            ) % order
        return self._chien_exponents

    def _batch_chien(self, locator: np.ndarray, degree: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Roots of every locator at once: one ``alpha^{-i·j}`` table evaluation.

        Returns ``(roots, success)`` where ``roots`` is the ``(R, n)``
        boolean matrix of error positions in *coefficient* order and
        ``success`` marks rows whose locator has exactly ``degree`` roots
        with ``degree <= t`` — the same acceptance rule as the scalar
        :meth:`_chien_search`.
        """
        field = self._field
        exp = field.exp_table
        log = field.log_table
        exponents = self._chien_exponent_matrix()
        evaluation = np.ones((locator.shape[0], self.n), dtype=np.int64)
        for j in range(1, self._t + 1):
            coefficient = locator[:, j]
            contribution = exp[log[coefficient][:, np.newaxis] + exponents[j - 1][np.newaxis, :]]
            evaluation ^= np.where((coefficient != 0)[:, np.newaxis], contribution, 0)
        roots = evaluation == 0
        success = (degree <= self._t) & (roots.sum(axis=1) == degree)
        return roots, success

    def decode_batch(self, received, *, strict: bool = False) -> BatchDecodeResult:
        """Batch algebraic decoding (pack/unpack wrapper over the packed path)."""
        blocks = self._require_blocks(received)
        return self.decode_batch_packed(pack_bits(blocks), strict=strict).unpack()

    def decode_batch_packed(self, received_words, *, strict: bool = False) -> PackedBatchDecodeResult:
        """Packed batch decoding: byte-table syndromes, batch BM, batch Chien.

        Syndromes of the whole batch gather from the packed byte image;
        the errored rows (rare at operating raw BERs) run the branchless
        batch Berlekamp–Massey and the tabulated Chien search together, and
        the located error positions are applied as packed XOR masks.
        """
        words = self._require_packed(received_words, self.n)
        syndromes = self._batch_syndromes_packed(words)
        detected = syndromes.any(axis=1)
        errored = np.nonzero(detected)[0]
        if errored.size == 0:
            clean = np.zeros(words.shape[0], dtype=bool)
            return PackedBatchDecodeResult(
                corrected_words=words,
                detected_error=detected,
                corrected=clean,
                failure=clean,
                n=self.n,
                k=self.k,
            )
        locator = self._batch_berlekamp_massey(syndromes[errored])
        nonzero_columns = locator != 0
        degree = locator.shape[1] - 1 - np.argmax(nonzero_columns[:, ::-1], axis=1)
        roots, success = self._batch_chien(locator, degree)
        corrected = np.zeros(words.shape[0], dtype=bool)
        failure = np.zeros(words.shape[0], dtype=bool)
        corrected[errored[success]] = True
        failure[errored[~success]] = True
        if strict and failure.any():
            raise DecodingFailure(f"{self.name}: uncorrectable error pattern")
        corrected_words = words.copy()
        fixed = errored[success]
        if fixed.size:
            systematic = np.zeros((int(success.sum()), self.n), dtype=np.uint8)
            systematic[:, self._coeff_to_systematic] = roots[success]
            corrected_words[fixed] ^= pack_bits(systematic)
        return PackedBatchDecodeResult(
            corrected_words=corrected_words,
            detected_error=detected,
            corrected=corrected,
            failure=failure,
            n=self.n,
            k=self.k,
        )

    def _correct_with_syndromes(
        self, received: np.ndarray, syndromes: List[int], *, strict: bool
    ) -> DecodeResult:
        """Berlekamp–Massey + Chien correction of one block with known non-zero syndromes."""
        locator = self._berlekamp_massey(syndromes)
        error_positions = self._chien_search(locator)
        if error_positions is None or len(error_positions) != len(locator) - 1:
            if strict:
                from ..exceptions import DecodingFailure

                raise DecodingFailure(f"{self.name}: uncorrectable error pattern")
            return DecodeResult(
                message_bits=received[: self.k].copy(),
                corrected_codeword=received.copy(),
                detected_error=True,
                corrected=False,
                failure=True,
            )
        corrected = received.copy()
        num_parity = self.n - self.k
        for position in error_positions:
            # Polynomial coefficient `position` is parity bit `position` when
            # below n-k and message bit `position - (n-k)` otherwise.
            if position < num_parity:
                corrected[self.k + position] ^= 1
            else:
                corrected[position - num_parity] ^= 1
        return DecodeResult(
            message_bits=corrected[: self.k].copy(),
            corrected_codeword=corrected,
            detected_error=True,
            corrected=True,
        )

    def _decode_block_reference(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Scalar algebraic decoder (syndromes via Horner evaluation).

        The pre-batching reference path; used by the equivalence tests and
        as the correction engine behind :meth:`decode_batch` for errored
        blocks (with the syndromes computed in batch instead).
        """
        received = as_gf2(received_bits).ravel()
        if received.size != self.n:
            raise CodewordLengthError(
                f"{self.name}: expected a {self.n}-bit block, got {received.size} bits"
            )
        field = self._field
        poly = self._codeword_polynomial(received)
        syndromes = [
            field.poly_eval(poly, field.alpha_power(exponent))
            for exponent in range(1, 2 * self._t + 1)
        ]
        if not any(syndromes):
            return DecodeResult(
                message_bits=received[: self.k].copy(),
                corrected_codeword=received.copy(),
                detected_error=False,
                corrected=False,
            )
        return self._correct_with_syndromes(received, syndromes, strict=strict)

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Berlekamp–Massey over GF(2^m); returns the error-locator polynomial."""
        field = self._field
        locator = [1]
        previous = [1]
        length = 0
        shift = 1
        previous_discrepancy = 1
        for index, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for j in range(1, length + 1):
                if j < len(locator):
                    discrepancy ^= field.multiply(locator[j], syndromes[index - j])
            if discrepancy == 0:
                shift += 1
                continue
            coefficient = field.divide(discrepancy, previous_discrepancy)
            correction = [0] * shift + [field.multiply(coefficient, c) for c in previous]
            updated = list(locator) + [0] * max(0, len(correction) - len(locator))
            for j, value in enumerate(correction):
                updated[j] ^= value
            if 2 * length <= index:
                previous = list(locator)
                previous_discrepancy = discrepancy
                length = index + 1 - length
                shift = 1
            else:
                shift += 1
            locator = updated
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: List[int]) -> List[int] | None:
        """Find error positions as roots of the locator polynomial."""
        field = self._field
        degree = len(locator) - 1
        if degree == 0:
            return []
        if degree > self._t:
            return None
        positions = []
        for position in range(self.n):
            # The locator roots are alpha^{-i} for error positions i.
            x = field.alpha_power((-position) % field.order)
            if field.poly_eval(locator, x) == 0:
                positions.append(position)
        if len(positions) != degree:
            return None
        return positions
