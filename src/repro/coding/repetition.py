"""Repetition codes decoded by majority vote.

The rate-1/r repetition code is the simplest code that trades bandwidth for
reliability.  Its poor rate makes it uninteresting for the paper's 10 Gb/s
links, but it is valuable as a sanity baseline: any sensible ECC selection
policy must prefer Hamming codes over repetition at equal correction power,
and the Monte-Carlo simulator can be validated against its closed-form
post-decoding error probability.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .base import BatchDecodeResult, DecodeResult, LinearBlockCode
from .matrices import as_gf2

__all__ = ["RepetitionCode"]


class RepetitionCode(LinearBlockCode):
    """The (r, 1) repetition code with odd repetition factor ``r``."""

    def __init__(self, repetitions: int):
        if repetitions < 3 or repetitions % 2 == 0:
            raise ConfigurationError("repetition factor must be an odd integer >= 3")
        generator = np.ones((1, repetitions), dtype=np.uint8)
        super().__init__(
            generator,
            name=f"REP({repetitions},1)",
            minimum_distance=repetitions,
        )
        self._repetitions = repetitions

    @property
    def repetitions(self) -> int:
        """Number of transmitted copies of each information bit."""
        return self._repetitions

    def decode_batch(self, received, *, strict: bool = False) -> BatchDecodeResult:
        """Vectorized majority-vote decoding of a whole ``(B, r)`` batch."""
        blocks = self._require_blocks(received)
        ones = blocks.sum(axis=1, dtype=np.int64)
        bits = (2 * ones > self.n).astype(np.uint8)
        corrected_words = np.repeat(bits[:, np.newaxis], self.n, axis=1)
        detected = (ones > 0) & (ones < self.n)
        return BatchDecodeResult(
            message_bits=bits[:, np.newaxis].copy(),
            corrected_codewords=corrected_words,
            detected_error=detected,
            corrected=detected.copy(),
            failure=np.zeros(blocks.shape[0], dtype=bool),
        )

    def _decode_block_reference(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Scalar majority-vote decoding (pre-batching reference path)."""
        received = as_gf2(received_bits).ravel()
        if received.size != self.n:
            raise CodewordLengthError(
                f"{self.name}: expected a {self.n}-bit block, got {received.size} bits"
            )
        ones = int(received.sum())
        bit = 1 if ones * 2 > self.n else 0
        corrected = np.full(self.n, bit, dtype=np.uint8)
        detected = bool(0 < ones < self.n)
        return DecodeResult(
            message_bits=np.array([bit], dtype=np.uint8),
            corrected_codeword=corrected,
            detected_error=detected,
            corrected=detected,
        )
