"""Extended Hamming (SECDED) codes.

Adding an overall parity bit to a Hamming code raises its minimum distance
from 3 to 4, giving Single-Error-Correct / Double-Error-Detect behaviour.
The paper mentions that "other coding techniques can be used"; SECDED is the
most common industrial variant of Hamming and is exposed both as a design
alternative for the link manager and as a stress test of the generic
decoding machinery (the double-error-detected case exercises the
``failure`` path of :class:`~repro.coding.base.DecodeResult`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CodewordLengthError, ConfigurationError
from .base import BatchDecodeResult, DecodeResult, LinearBlockCode
from .hamming import HammingCode, ShortenedHammingCode
from .matrices import as_gf2

__all__ = ["ExtendedHammingCode"]


class ExtendedHammingCode(LinearBlockCode):
    """SECDED code built by appending an overall parity bit to a Hamming code.

    Parameters
    ----------
    message_length:
        Number of payload bits.  When it matches a full Hamming code payload
        (e.g. 4, 11, 26, 57, 120) the full code is extended; otherwise the
        corresponding shortened Hamming code is extended, so
        ``ExtendedHammingCode(64)`` is the (72, 64) SECDED code widely used
        in DRAM controllers.
    """

    def __init__(self, message_length: int):
        if message_length < 1:
            raise ConfigurationError("message length must be positive")
        if message_length in {(1 << m) - 1 - m for m in range(2, 16)}:
            base: LinearBlockCode = _full_code_for(message_length)
        else:
            base = ShortenedHammingCode(message_length)
        base_generator = base.generator_matrix
        # The extended generator appends one column holding the parity of
        # every row, so each codeword gains an overall even-parity bit.
        overall_parity = np.mod(base_generator.sum(axis=1), 2).astype(np.uint8)
        generator = np.concatenate([base_generator, overall_parity[:, np.newaxis]], axis=1)
        n = base.n + 1
        super().__init__(
            generator,
            name=f"SECDED({n},{message_length})",
            minimum_distance=4,
        )
        self._inner = base

    @property
    def inner_code(self) -> LinearBlockCode:
        """The Hamming code the SECDED construction extends."""
        return self._inner

    def decode_batch(self, received, *, strict: bool = False) -> BatchDecodeResult:
        """Vectorized SECDED decoding of a whole ``(B, n)`` batch.

        The four scalar decision cases (clean, parity-bit error, odd-weight
        error corrected through the inner Hamming code, double error) become
        four boolean masks applied to the batch at once; the inner Hamming
        correction itself runs through the inner code's batch decoder.
        """
        blocks = self._require_blocks(received)
        inner_blocks = blocks[:, :-1]
        parity_ok = (blocks.sum(axis=1, dtype=np.int64) & 1) == 0
        inner = self._inner.decode_batch(inner_blocks)
        inner_zero = ~inner.detected_error

        corrected_words = blocks.copy()
        detected = np.zeros(blocks.shape[0], dtype=bool)
        corrected = np.zeros(blocks.shape[0], dtype=bool)
        failure = np.zeros(blocks.shape[0], dtype=bool)

        # Error confined to the overall parity bit itself.
        parity_only = inner_zero & ~parity_ok
        corrected_words[parity_only, -1] ^= 1
        detected[parity_only] = True
        corrected[parity_only] = True

        # Odd-weight error: trust the inner Hamming correction, then
        # recompute the parity bit so the corrected word is a codeword.
        odd_weight = ~inner_zero & ~parity_ok
        corrected_words[odd_weight, :-1] = inner.corrected_codewords[odd_weight]
        corrected_words[odd_weight, -1] = (
            corrected_words[odd_weight, :-1].sum(axis=1, dtype=np.int64) & 1
        ).astype(np.uint8)
        detected[odd_weight] = True
        corrected[odd_weight] = True

        # Even-weight error with a non-zero syndrome: a double error.
        double = ~inner_zero & parity_ok
        detected[double] = True
        failure[double] = True
        if strict and double.any():
            from ..exceptions import DecodingFailure

            raise DecodingFailure(f"{self.name}: double error detected")
        return BatchDecodeResult(
            message_bits=corrected_words[:, : self.k].copy(),
            corrected_codewords=corrected_words,
            detected_error=detected,
            corrected=corrected,
            failure=failure,
        )

    def _decode_block_reference(self, received_bits, *, strict: bool = False) -> DecodeResult:
        """Scalar SECDED decoding: correct single errors, flag double errors.

        The overall parity bit distinguishes odd-weight error patterns
        (single error somewhere, correctable) from even-weight patterns with
        a non-zero inner syndrome (double error, detected but uncorrectable).
        Kept as the pre-batching reference for the equivalence tests;
        production callers go through :meth:`decode_batch`.
        """
        received = as_gf2(received_bits).ravel()
        if received.size != self.n:
            raise CodewordLengthError(
                f"{self.name}: expected a {self.n}-bit block, got {received.size} bits"
            )
        inner_block = received[:-1]
        parity_bit = int(received[-1])
        overall_parity_ok = (int(inner_block.sum()) + parity_bit) % 2 == 0
        inner_syndrome_zero = not self._inner.syndrome(inner_block).any()

        if inner_syndrome_zero and overall_parity_ok:
            return DecodeResult(
                message_bits=received[: self.k].copy(),
                corrected_codeword=received.copy(),
                detected_error=False,
                corrected=False,
            )
        if inner_syndrome_zero and not overall_parity_ok:
            # Error confined to the overall parity bit itself.
            corrected = received.copy()
            corrected[-1] ^= 1
            return DecodeResult(
                message_bits=corrected[: self.k].copy(),
                corrected_codeword=corrected,
                detected_error=True,
                corrected=True,
            )
        if not overall_parity_ok:
            # Odd-weight error: trust the inner Hamming correction.
            inner_result = self._inner._decode_block_reference(inner_block)
            corrected = np.concatenate([inner_result.corrected_codeword, received[-1:]])
            # Recompute the parity bit so the corrected word is a codeword.
            corrected[-1] = np.uint8(int(corrected[:-1].sum()) % 2)
            return DecodeResult(
                message_bits=corrected[: self.k].copy(),
                corrected_codeword=corrected,
                detected_error=True,
                corrected=True,
            )
        # Even-weight error with a non-zero syndrome: a double error.
        result = DecodeResult(
            message_bits=received[: self.k].copy(),
            corrected_codeword=received.copy(),
            detected_error=True,
            corrected=False,
            failure=True,
        )
        if strict:
            from ..exceptions import DecodingFailure

            raise DecodingFailure(f"{self.name}: double error detected")
        return result


def _full_code_for(message_length: int) -> HammingCode:
    """Return the full Hamming code whose payload equals ``message_length``."""
    m = 2
    while (1 << m) - 1 - m != message_length:
        m += 1
    return HammingCode(m)
