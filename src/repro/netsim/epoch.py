"""Epoch-batched event core of the network simulator.

This module is the ``engine="batched"`` implementation behind
:meth:`repro.netsim.engine.NetworkSimulator.run` — same event semantics as
the reference heap loop, restructured so the hot path is array-shaped.  Two
structural changes carry the ~10x events/s:

**Merge-ordered events.**  The bulk of the event stream (arrivals, fault
transitions) is known before the run starts, so it is sequenced and sorted
once and consumed by cursor; only run-time events (departures, retries) go
through a small tuple heap (:class:`~repro.netsim.events.EpochEventCore`).
No per-event object allocation, no Python ``__lt__`` calls.

**Flush-on-demand epoch sampling.**  Both engines share the schedule-time
sampling contract (see :mod:`repro.netsim.outcomes`): an attempt's primary
draw is exactly one double, compared against the attempt-level failure
probability, and failing attempts resolve from a separate stream.  The
batched engine therefore does not draw when an attempt is scheduled — it
queues ``(attempt, failure probability)`` and keeps processing events.
The moment a departure pops whose outcome is still queued, the epoch
*flushes*: one ``Generator.random`` call covers every queued attempt in
schedule order, and only the flagged attempts — rare at the BERs links
are designed for — run the conditional per-attempt resolution.  An epoch
is thus the longest stretch of events with no data dependency on an
undrawn outcome (in steady state: the set of in-flight attempts).

**Static fast path.**  A run with no fault timeline, no channel dynamics,
no adaptive controller and no interval trace (the common sweep and
benchmark shape) additionally skips the per-event object machinery
entirely: every transfer is parked in the departure heap as its
*optimistic* finished :class:`~repro.netsim.engine.NetTransferRecord`
with its gate queued for the next epoch flush; the rare attempts the
flush flags are swapped for a stateful fallback before their departure
pops, so clean transfers allocate no ``_TransferState`` and call no
engine method.  Event order, stream consumption and every float
expression are unchanged, so the fast path is byte-identical to the
general loop and to the reference engine.

**Determinism argument.**  Event order is byte-identical to the reference
engine because :class:`EpochEventCore` implements the same
``(time, insertion-sequence)`` total order over the same push sequence.
Randomness is byte-identical because ``Generator.random`` fills requests
sequentially from the bit stream — one flush of N queued attempts consumes
exactly the same doubles, in the same order, as N schedule-time draws —
and because everything data-dependent happens on the resolution stream in
the same (schedule) order in both engines.  Everything else (arbiter math,
float accumulation order, record layout) runs the same expressions in the
same event order.  ``tests/netsim/test_engine_parity.py`` pins all of this
across the full fault x dynamics x policy grid.

The arrival fast path additionally memoizes the manager's answer per
``(target BER, margin)`` — :meth:`~repro.manager.manager.OpticalLinkManager.configure`
is deterministic given those plus the engine-constant policy, so replaying
the cached configuration is result-identical (only the manager's private
active-pair registry and configuration-id counter advance differently,
neither of which is observable in a :class:`NetworkResult`).  Requests that
fail cheap validity checks fall back to the real path so error behaviour
stays identical too.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Iterable

from time import perf_counter

from ..exceptions import ConfigurationError, InfeasibleDesignError, SimulationError
from ..manager.manager import CommunicationRequest
from ..obs import tracing as obs_tracing
from ..traffic.generators import TrafficRequest
from .engine import NetTransferRecord, NetworkResult, _RunState, _TransferState
from .events import EventKind, EpochEventCore
from .outcomes import TransmissionOutcome, packets_for_payload

__all__ = ["run_batched"]

#: ``pending_outcome`` sentinel: the attempt sits in the flush queue.
_QUEUED = object()

#: Configuration-memo sentinel: this (target BER, margin) key is infeasible.
_REJECTED = object()


def run_batched(sim, requests: Iterable[TrafficRequest]) -> NetworkResult:
    """Drain a request sequence through the epoch-batched core.

    ``sim`` is the owning :class:`~repro.netsim.engine.NetworkSimulator`;
    cold paths (fault handling, degradation deferrals, finalisation) reuse
    its handler methods verbatim so there is exactly one implementation of
    their semantics — only the hot arrival/departure path is re-laid-out
    here.
    """
    run = _RunState()
    controller = sim._controller
    if controller is not None:
        controller.reset()
    failures = sim._failures
    # Faults before arrivals: lower sequence numbers at equal times,
    # matching the reference engine's push order.
    faults: list[tuple] = (
        [(t.time_s, EventKind.LINK_FAULT, t) for t in failures.transitions()]
        if failures is not None
        else []
    )
    arrival_kind = EventKind.ARRIVAL
    core = EpochEventCore(
        chain(faults, ((r.arrival_time_s, arrival_kind, r) for r in requests))
    )
    if len(core) == len(faults):
        raise ConfigurationError("a simulation needs at least one request")
    run.queue = core

    if (
        sim.mode == "probabilistic"
        and controller is None
        and failures is None
        and sim._dynamics is None
        and sim._degradation is None
        and sim._trace_interval_s is None
    ):
        return _run_static_fast(sim, run, core)

    # ------------------------------------------------------------- hot locals
    manager = sim.manager
    policy = sim.policy
    dynamics = sim._dynamics
    degradation = sim._degradation
    probabilistic = sim.mode == "probabilistic"
    wants_obs = controller is not None and controller.wants_observations
    need_design_raw = dynamics is not None or failures is not None
    packet_bits = sim.packet_bits
    retry_budget = sim.max_retries if sim.crc is not None else 0
    timeout_s = sim.transfer_timeout_s
    backoff_s = sim.retry_backoff_s
    num_onis = sim.config.num_onis
    num_wavelengths = sim.config.num_wavelengths
    channel_rate = sim.channel_rate_bits_per_s
    trace_on = sim._trace_interval_s is not None
    rng_random = sim._rng.random
    resolve_rng = sim._resolve_rng
    telemetry_binomial = sim._telemetry_rng.binomial
    arbiters = run.arbiters
    busy_s = run.busy_s
    active_pairs = run.active_pairs
    records = run.records
    push = core.push
    pop = core.pop
    ARRIVAL = EventKind.ARRIVAL
    DEPARTURE = EventKind.DEPARTURE
    RETRY = EventKind.RETRY

    #: (target BER, margin) -> (configuration, sampler, design raw BER).
    memo: dict[tuple, tuple] = {}
    #: Flush queue: (state, sampler, packets, failure prob, raw BER) per
    #: queued attempt, in schedule order.
    pending: list[tuple] = []

    tracer = obs_tracing.ACTIVE

    def flush() -> None:
        """Resolve every queued attempt's outcome in one epoch-wide draw."""
        begin = perf_counter() if tracer is not None else 0.0
        attempts = len(pending)
        uniforms = rng_random(attempts)
        for uniform, (state, sampler, packets, fail_p, raw) in zip(
            uniforms.tolist(), pending
        ):
            if uniform < fail_p:
                state.pending_outcome = sampler.resolve_failed_attempt(
                    packets, raw_ber=raw, resolve_rng=resolve_rng
                )
            else:
                # No failed block anywhere: the outcome is the trivial
                # clean one, represented as None so the departure fast
                # path skips the TransmissionOutcome allocation entirely.
                state.pending_outcome = None
        pending.clear()
        run.epoch_flushes += 1
        if tracer is not None:
            tracer.emit(
                "netsim.epoch_flush",
                perf_counter() - begin,
                {"attempts": attempts},
                start=begin,
            )

    def schedule_attempt(state, now_s: float, not_before_s: float | None = None) -> None:
        """Mirror of the reference ``_schedule_attempt`` with queued sampling."""
        destination = state.request.destination
        request_time_s = now_s
        if not_before_s is not None and not_before_s > request_time_s:
            request_time_s = not_before_s
        if controller is not None:
            blocked = controller.blocked_until(destination)
            if blocked > request_time_s:
                request_time_s = blocked
        wavelengths = num_wavelengths
        rate_factor = 1.0
        action = None
        if failures is not None and degradation is not None:
            health = failures.health(destination, request_time_s)
            if health.down:
                sim._defer_or_drop(state, now_s, health, run)
                return
            action = degradation.action_for(health)
            if not action.serve:
                sim._finalize_transfer(state, now_s, run, dropped=state.packets_remaining)
                return
            wavelengths = action.wavelengths
            rate_factor = (num_wavelengths / wavelengths) * action.derate_factor
        sampler = state.sampler
        remaining = state.packets_remaining
        duration_s = remaining * sampler.coded_bits_per_packet / channel_rate
        if rate_factor != 1.0:
            duration_s *= rate_factor
        arbiter = arbiters.get(destination)
        if arbiter is None:
            arbiter = sim._arbiter_for(destination, arbiters)
        start_s = arbiter.request(state.request.source, request_time_s, duration_s)
        if state.first_start_s < 0.0:
            state.first_start_s = start_s
        state.attempts += 1
        state.packets_sent += remaining
        state.coded_bits_sent += remaining * sampler.coded_bits_per_packet
        attempt_energy_j = state.configuration.channel_power_w * wavelengths * duration_s
        state.energy_j += attempt_energy_j
        if dynamics is not None:
            multiplier = dynamics.multiplier(destination, start_s)
            state.attempt_raw_ber = min(1.0, state.design_raw_ber * multiplier)
        elif failures is not None:
            sim._apply_attempt_health(state, destination, start_s, action)
        if not state.attempt_blacked_out:
            if probabilistic:
                raw = state.attempt_raw_ber
                pending.append(
                    (
                        state,
                        sampler,
                        remaining,
                        sampler.attempt_failure_probability(remaining, raw),
                        raw,
                    )
                )
                state.pending_outcome = _QUEUED
            else:
                state.pending_outcome = sampler.sample(remaining)
        if trace_on:
            sim._charge_trace(run, start_s, energy_j=attempt_energy_j, packets=remaining)
        busy_s[destination] = busy_s.get(destination, 0.0) + duration_s
        push(start_s + duration_s, DEPARTURE, state)

    def rejected_record(request, now_s: float) -> None:
        records.append(
            NetTransferRecord(
                source=request.source,
                destination=request.destination,
                payload_bits=request.payload_bits,
                code_name=None,
                arrival_time_s=now_s,
                first_start_time_s=now_s,
                completion_time_s=now_s,
                attempts=0,
                packets_total=0,
                packets_sent=0,
                packets_delivered=0,
                packets_dropped=0,
                packets_with_residual_errors=0,
                residual_bit_errors=0,
                coded_bits_sent=0,
                energy_j=0.0,
                rejected=True,
            )
        )

    # --------------------------------------------------------------- the loop
    event = None
    time_s = 0.0
    try:
        while True:
            event = pop()
            if event is None:
                break
            time_s = event[0]
            kind = event[2]
            if kind is ARRIVAL:
                request = event[3]
                destination = request.destination
                margin = 1.0
                if controller is not None:
                    multiplier = (
                        dynamics.multiplier(destination, time_s)
                        if dynamics is not None
                        else 1.0
                    )
                    margin, switched = controller.margin_for(
                        destination, time_s, true_multiplier=multiplier
                    )
                    if switched:
                        sim._record_switch(run, time_s)
                if degradation is not None:
                    communication = CommunicationRequest(
                        source=request.source,
                        destination=destination,
                        target_ber=request.target_ber,
                        payload_bits=request.payload_bits,
                        policy=policy,
                    )
                    health = failures.health(destination, time_s)
                    try:
                        configuration, _action = manager.configure_degraded(
                            communication,
                            health,
                            degradation,
                            base_margin_multiplier=margin,
                        )
                    except InfeasibleDesignError:
                        rejected_record(request, time_s)
                        continue
                    if configuration is None:
                        sim._drop_on_arrival(request, time_s, run)
                        continue
                    sampler = sim._sampler_for(configuration)
                    design_raw = sim._raw_ber_for(configuration)
                else:
                    source = request.source
                    key = (request.target_ber, margin)
                    entry = memo.get(key)
                    if (
                        entry is None
                        or source == destination
                        or request.payload_bits <= 0
                        or source < 0
                        or source >= num_onis
                        or destination < 0
                        or destination >= num_onis
                    ):
                        # Cold (or suspect) request: the real manager path,
                        # so validation errors surface exactly as in the
                        # reference engine.
                        communication = CommunicationRequest(
                            source=source,
                            destination=destination,
                            target_ber=request.target_ber,
                            payload_bits=request.payload_bits,
                            policy=policy,
                        )
                        try:
                            configuration = manager.configure(
                                communication, margin_multiplier=margin
                            )
                        except InfeasibleDesignError:
                            memo[key] = _REJECTED
                            rejected_record(request, time_s)
                            continue
                        sampler = sim._sampler_for(configuration)
                        design_raw = (
                            sim._raw_ber_for(configuration) if need_design_raw else 0.0
                        )
                        memo[key] = (configuration, sampler, design_raw)
                    elif entry is _REJECTED:
                        rejected_record(request, time_s)
                        continue
                    else:
                        configuration, sampler, design_raw = entry
                packets = packets_for_payload(request.payload_bits, packet_bits)
                state = _TransferState(
                    request=request,
                    configuration=configuration,
                    sampler=sampler,
                    packets_total=packets,
                    packets_remaining=packets,
                    retries_left=retry_budget,
                )
                if need_design_raw:
                    state.design_raw_ber = design_raw
                if timeout_s is not None:
                    state.deadline_s = time_s + timeout_s
                pair = (request.source, destination)
                active_pairs[pair] = active_pairs.get(pair, 0) + 1
                schedule_attempt(state, time_s)
            elif kind is DEPARTURE:
                state = event[3]
                if state.attempt_blacked_out:
                    # Certain loss, no randomness, no telemetry — exactly
                    # the reference engine's dark-channel branch.
                    state.attempt_blacked_out = False
                    remaining = state.packets_remaining
                    outcome = TransmissionOutcome(
                        packets=remaining,
                        failed_detected=remaining,
                        delivered_with_errors=0,
                        residual_bit_errors=0,
                    )
                else:
                    outcome = state.pending_outcome
                    if outcome is _QUEUED:
                        flush()
                        outcome = state.pending_outcome
                    state.pending_outcome = None
                    if outcome is None:
                        # Clean attempt — the common case: deliver all
                        # packets without materialising an outcome object.
                        remaining = state.packets_remaining
                        if wants_obs:
                            sampler = state.sampler
                            blocks = remaining * sampler.blocks_per_packet
                            observed = float(
                                telemetry_binomial(
                                    blocks,
                                    sampler.block_disturb_probability(
                                        state.attempt_raw_ber
                                    ),
                                )
                            )
                            if controller.observe(
                                state.request.destination,
                                time_s,
                                blocks=blocks,
                                observed_events=observed,
                                expected_events=blocks
                                * sampler.block_disturb_probability(),
                            ):
                                sim._record_switch(run, time_s)
                        state.packets_delivered += remaining
                        sim._finalize_transfer(state, time_s, run, dropped=0)
                        continue
                    if wants_obs:
                        sim._feed_controller(time_s, state, outcome, run)
                state.packets_delivered += outcome.packets - outcome.failed_detected
                state.packets_with_residual_errors += outcome.delivered_with_errors
                state.residual_bit_errors += outcome.residual_bit_errors
                failed = outcome.failed_detected
                if failed and state.retries_left > 0:
                    state.packets_remaining = failed
                    not_before = time_s
                    if backoff_s > 0.0:
                        not_before = time_s + sim._retry_delay_s(state)
                    if state.deadline_s is None or not_before <= state.deadline_s:
                        state.retries_left -= 1
                        schedule_attempt(state, time_s, not_before)
                        continue
                sim._finalize_transfer(state, time_s, run, dropped=failed)
            elif kind is RETRY:
                schedule_attempt(event[3], time_s)
            else:
                sim._handle_link_fault(time_s, event[3], run)
    except SimulationError:
        raise
    except Exception as exc:
        raise SimulationError(
            f"{event[2].name} handler failed at t={event[0]:.9e}s "
            f"(event #{core.events_processed}): {exc}"
        ) from exc
    run.end_s = time_s

    return sim._finish_run(run)


def _run_static_fast(sim, run, core: EpochEventCore) -> NetworkResult:
    """Static-channel fast loop: clean transfers carry no per-event state.

    Eligible when the run has no fault timeline, no dynamics, no controller
    and no interval trace — every attempt then serialises at the design
    operating point, so its *complete* transfer record is already known at
    schedule time for the overwhelmingly common case that its gate draw
    comes back clean.  The record is parked in the departure heap with the
    gate queued; a departure popping with its gate still queued flushes the
    epoch (one vectorized primary draw over every queued attempt, in
    schedule order), and only flagged attempts are swapped for a stateful
    fallback that mirrors the reference handlers expression for expression
    (retries, deadlines, CRC escapes).  Clean transfers — the rest — incur
    no ``_TransferState``, no engine method call, no sampling machinery.
    Event order, stream consumption and every float computation are
    unchanged from the general loop, so results stay byte-identical.

    The arbiter recurrence (token hops, busy window) is replayed inline on
    per-channel lists — same expressions as :meth:`TokenArbiter.request` —
    and written back to the real arbiters at the end so grant counts and
    channel state land in the result exactly as the reference engine leaves
    them.
    """
    static = core._static
    n_static = len(static)
    heap: list[tuple] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    rng_random = sim._rng.random
    resolve_rng = sim._resolve_rng
    manager = sim.manager
    policy = sim.policy
    packet_bits = sim.packet_bits
    retry_budget = sim.max_retries if sim.crc is not None else 0
    timeout_s = sim.transfer_timeout_s
    backoff_s = sim.retry_backoff_s
    num_onis = sim.config.num_onis
    num_wavelengths = sim.config.num_wavelengths
    channel_rate = sim.channel_rate_bits_per_s
    busy_s = run.busy_s
    records_append = run.records.append
    active_pairs = run.active_pairs
    arbiters = run.arbiters
    Record = NetTransferRecord
    State = _TransferState
    # NamedTuple construction normally routes through a generated Python
    # __new__; building the tuple directly halves the cost on the one
    # per-transfer allocation the clean path has left.
    tuple_new = tuple.__new__

    #: (target BER, payload bits) -> (configuration, sampler, packets,
    #: duration, energy, attempt failure probability, code name, coded bits).
    memo: dict[tuple, tuple] = {}
    #: destination -> [holder index, busy-until, writer->index, num writers,
    #: hop time, grants] — the arbiter recurrence state, replayed inline.
    channels: dict[int, list] = {}
    #: Flush queue of undrawn attempt gates, in schedule order.  First
    #: attempts park ``(seq, fail p, sampler, packets, request,
    #: configuration, start, energy, coded bits)``; re-attempts park
    #: ``(seq, fail p, sampler, packets, state)``.  One vectorized draw per
    #: epoch replaces per-attempt scalar ``Generator.random`` calls (~1 us
    #: of NumPy call overhead each) at identical stream consumption.
    pending: list[tuple] = []
    pending_append = pending.append
    #: seq -> _TransferState for the rare first attempts the gate flagged.
    flagged: dict[int, object] = {}

    def channel_for(destination: int) -> list:
        arbiter = sim._arbiter_for(destination, arbiters)
        entry = [
            arbiter._holder_index,
            arbiter._busy_until_s,
            {writer: index for index, writer in enumerate(arbiter.writers)},
            len(arbiter.writers),
            arbiter.token_hop_time_s,
            arbiter._grants,
        ]
        channels[destination] = entry
        return entry

    tracer = obs_tracing.ACTIVE

    def flush() -> None:
        """Resolve every queued gate in one epoch-wide primary draw."""
        begin = perf_counter() if tracer is not None else 0.0
        attempts = len(pending)
        uniforms = rng_random(attempts)
        for uniform, item in zip(uniforms.tolist(), pending):
            if uniform < item[1]:
                sampler = item[2]
                packets = item[3]
                fourth = item[4]
                if type(fourth) is State:
                    # Re-attempt: the state is already the heap payload.
                    fourth.pending_outcome = sampler.resolve_failed_attempt(
                        packets, resolve_rng=resolve_rng
                    )
                else:
                    # Flagged first attempt: materialise the stateful
                    # fallback its parked record stood in for.
                    (
                        seq,
                        _fail_p,
                        _sampler,
                        _packets,
                        request,
                        configuration,
                        start_s,
                        energy_j,
                        coded_bits,
                    ) = item
                    state = State(
                        request=request,
                        configuration=configuration,
                        sampler=sampler,
                        packets_total=packets,
                        packets_remaining=packets,
                        retries_left=retry_budget,
                    )
                    state.first_start_s = start_s
                    state.attempts = 1
                    state.packets_sent = packets
                    state.coded_bits_sent = coded_bits
                    state.energy_j = energy_j
                    state.pending_outcome = sampler.resolve_failed_attempt(
                        packets, resolve_rng=resolve_rng
                    )
                    if timeout_s is not None:
                        state.deadline_s = request.arrival_time_s + timeout_s
                    pair = (request.source, request.destination)
                    active_pairs[pair] = active_pairs.get(pair, 0) + 1
                    flagged[seq] = state
        pending.clear()
        run.epoch_flushes += 1
        if tracer is not None:
            tracer.emit(
                "netsim.epoch_flush",
                perf_counter() - begin,
                {"attempts": attempts},
                start=begin,
            )

    sequence = core._sequence
    events = 0
    cursor = 0
    time_s = 0.0
    kind_name = "ARRIVAL"
    try:
        while True:
            if cursor < n_static:
                arrival = static[cursor]
                arrival_time = arrival[0]
            else:
                arrival = None
            # Departures strictly before the next arrival pop first; at
            # equal times the arrival wins (static sequence numbers are
            # all smaller than dynamic ones), matching the engines' total
            # event order.
            while heap and (arrival is None or heap[0][0] < arrival_time):
                departure = heappop(heap)
                events += 1
                time_s = departure[0]
                seq = departure[1]
                payload = departure[2]
                kind_name = "DEPARTURE"
                if pending and seq >= pending[0][0]:
                    # This departure's gate is still queued (as is every
                    # later-scheduled one): flush the epoch.
                    flush()
                if type(payload) is not State:
                    # A parked record: the transfer is finished unless the
                    # flush flagged its gate.
                    if flagged:
                        state = flagged.pop(seq, None)
                        if state is None:
                            records_append(payload)
                            continue
                    else:
                        records_append(payload)
                        continue
                else:
                    state = payload
                outcome = state.pending_outcome
                state.pending_outcome = None
                if outcome is None:
                    state.packets_delivered += state.packets_remaining
                    sim._finalize_transfer(state, time_s, run, dropped=0)
                    continue
                state.packets_delivered += outcome.packets - outcome.failed_detected
                state.packets_with_residual_errors += outcome.delivered_with_errors
                state.residual_bit_errors += outcome.residual_bit_errors
                failed = outcome.failed_detected
                if failed and state.retries_left > 0:
                    state.packets_remaining = failed
                    not_before = time_s
                    if backoff_s > 0.0:
                        not_before = time_s + sim._retry_delay_s(state)
                    if state.deadline_s is None or not_before <= state.deadline_s:
                        state.retries_left -= 1
                        # Stateful re-attempt: the reference
                        # _schedule_attempt's expressions, inline.
                        sampler = state.sampler
                        source = state.request.source
                        destination = state.request.destination
                        coded_bits_pp = sampler.coded_bits_per_packet
                        duration_s = failed * coded_bits_pp / channel_rate
                        request_time_s = not_before if not_before > time_s else time_s
                        channel = channels.get(destination)
                        if channel is None:
                            channel = channel_for(destination)
                        target = channel[2][source]
                        busy = channel[1]
                        hops = (target - channel[0]) % channel[3]
                        base = request_time_s if request_time_s > busy else busy
                        start_s = base + hops * channel[4]
                        departure_time = start_s + duration_s
                        channel[0] = target
                        channel[1] = departure_time
                        grants = channel[5]
                        grants[source] = grants[source] + 1
                        state.attempts += 1
                        state.packets_sent += failed
                        state.coded_bits_sent += failed * coded_bits_pp
                        attempt_energy_j = (
                            state.configuration.channel_power_w
                            * num_wavelengths
                            * duration_s
                        )
                        state.energy_j += attempt_energy_j
                        state.pending_outcome = None
                        pending_append(
                            (
                                sequence,
                                sampler.attempt_failure_probability(failed),
                                sampler,
                                failed,
                                state,
                            )
                        )
                        busy_s[destination] = busy_s.get(destination, 0.0) + duration_s
                        heappush(heap, (departure_time, sequence, state))
                        sequence += 1
                        continue
                sim._finalize_transfer(state, time_s, run, dropped=failed)
            if arrival is None:
                break
            cursor += 1
            events += 1
            time_s = arrival_time
            kind_name = "ARRIVAL"
            request = arrival[3]
            source = request.source
            destination = request.destination
            payload_bits = request.payload_bits
            key = (request.target_ber, payload_bits)
            entry = memo.get(key)
            if (
                entry is None
                or source == destination
                or payload_bits <= 0
                or source < 0
                or source >= num_onis
                or destination < 0
                or destination >= num_onis
            ):
                # Cold (or suspect) request: the real manager path, so
                # validation errors surface exactly as in the reference
                # engine.
                communication = CommunicationRequest(
                    source=source,
                    destination=destination,
                    target_ber=request.target_ber,
                    payload_bits=payload_bits,
                    policy=policy,
                )
                try:
                    configuration = manager.configure(
                        communication, margin_multiplier=1.0
                    )
                except InfeasibleDesignError:
                    memo[key] = _REJECTED
                    records_append(
                        Record(
                            source, destination, payload_bits, None,
                            time_s, time_s, time_s,
                            0, 0, 0, 0, 0, 0, 0, 0, 0.0, True,
                        )
                    )
                    continue
                sampler = sim._sampler_for(configuration)
                packets = packets_for_payload(payload_bits, packet_bits)
                coded_bits_pp = sampler.coded_bits_per_packet
                duration_s = packets * coded_bits_pp / channel_rate
                entry = (
                    configuration,
                    sampler,
                    packets,
                    duration_s,
                    configuration.channel_power_w * num_wavelengths * duration_s,
                    sampler.attempt_failure_probability(packets),
                    configuration.code_name,
                    packets * coded_bits_pp,
                )
                memo[key] = entry
            elif entry is _REJECTED:
                records_append(
                    Record(
                        source, destination, payload_bits, None,
                        time_s, time_s, time_s,
                        0, 0, 0, 0, 0, 0, 0, 0, 0.0, True,
                    )
                )
                continue
            (
                configuration,
                sampler,
                packets,
                duration_s,
                energy_j,
                fail_p,
                code_name,
                coded_bits,
            ) = entry
            channel = channels.get(destination)
            if channel is None:
                channel = channel_for(destination)
            target = channel[2][source]
            busy = channel[1]
            hops = (target - channel[0]) % channel[3]
            base = time_s if time_s > busy else busy
            start_s = base + hops * channel[4]
            departure_time = start_s + duration_s
            channel[0] = target
            channel[1] = departure_time
            grants = channel[5]
            grants[source] = grants[source] + 1
            busy_s[destination] = busy_s.get(destination, 0.0) + duration_s
            # Park the optimistic finished record and queue the gate; the
            # epoch flush swaps in a stateful fallback for the rare
            # attempts the draw flags.
            pending_append(
                (
                    sequence,
                    fail_p,
                    sampler,
                    packets,
                    request,
                    configuration,
                    start_s,
                    energy_j,
                    coded_bits,
                )
            )
            heappush(
                heap,
                (
                    departure_time,
                    sequence,
                    tuple_new(
                        Record,
                        (
                            source,
                            destination,
                            payload_bits,
                            code_name,
                            request.arrival_time_s,
                            start_s,
                            departure_time,
                            1,
                            packets,
                            packets,
                            packets,
                            0,
                            0,
                            0,
                            coded_bits,
                            energy_j,
                            False,
                        ),
                    ),
                ),
            )
            sequence += 1
    except SimulationError:
        raise
    except Exception as exc:
        raise SimulationError(
            f"{kind_name} handler failed at t={time_s:.9e}s "
            f"(event #{events}): {exc}"
        ) from exc
    for destination, channel in channels.items():
        arbiter = arbiters[destination]
        arbiter._holder_index = channel[0]
        arbiter._busy_until_s = channel[1]
    core.events_processed = events
    run.end_s = time_s
    return sim._finish_run(run)
