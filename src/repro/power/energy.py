"""Communication time and energy-per-bit accounting (paper Section V-C).

Two quantities characterise the performance side of the trade-off:

* the *communication time* CT, defined by the paper as the relative increase
  of the transmission time due to parity bits (CT = n / k, so 1.75 for
  H(7,4) and ~1.11 for H(71,64));
* the *energy per useful bit*, the channel power integrated over the time
  the channel is busy with one payload, divided by the payload size.

Energy-per-bit model
--------------------
For a payload of ``B`` useful bits sent over a channel with ``NW``
wavelengths at modulation rate ``Fmod`` with a rate-``Rc`` code, the channel
is busy for ``B / (NW * Fmod * Rc)`` seconds and draws
``NW * P_channel_per_wavelength`` during that window, so

``E/bit = P_channel_per_wavelength * CT / Fmod``.

The paper reports 3.92 / 3.76 / 5.58 pJ/bit for w/o ECC, H(71,64) and H(7,4)
at BER = 1e-11.  Its uncoded value is exactly the per-wavelength channel
power divided by the per-wavelength share of the IP bandwidth
(``15.7 mW / 4 Gb/s``), i.e. it references the energy to the *IP-side*
bandwidth rather than the optical serialisation rate; we therefore provide
both accountings:

* ``energy_per_bit_modulation`` — referenced to the optical rate
  (``P * CT / Fmod``), the physically busy-time accounting;
* ``energy_per_bit_ip`` — referenced to the IP bandwidth
  (``P * NW * CT / (Ndata * FIP)``), which reproduces the paper's uncoded
  number and keeps the laser "charged" for the full IP word duration.

EXPERIMENTS.md discusses how close each accounting comes to the paper's
coded values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_CONFIG, PaperConfig
from ..exceptions import ConfigurationError
from .channel import ChannelPowerBreakdown

__all__ = ["EnergyMetrics", "communication_time", "energy_metrics"]


def communication_time(code) -> float:
    """Relative communication-time overhead CT = n / k of a coding scheme."""
    ct = float(code.communication_time_overhead)
    if ct < 1.0:
        raise ConfigurationError("communication time cannot be below the uncoded baseline")
    return ct


@dataclass(frozen=True)
class EnergyMetrics:
    """Energy/performance figures of one channel configuration."""

    code_name: str
    target_ber: float
    channel_power_per_wavelength_w: float
    communication_time: float
    code_rate: float
    modulation_rate_hz: float
    num_wavelengths: int
    ip_bandwidth_bits_per_s: float
    ip_bus_width_bits: int

    @property
    def useful_rate_per_wavelength_bits_per_s(self) -> float:
        """Payload bits per second carried by one wavelength when active."""
        return self.modulation_rate_hz * self.code_rate

    @property
    def energy_per_bit_modulation_j(self) -> float:
        """Energy per useful bit referenced to the optical modulation rate."""
        return self.channel_power_per_wavelength_w / self.useful_rate_per_wavelength_bits_per_s

    @property
    def energy_per_bit_ip_j(self) -> float:
        """Energy per useful bit referenced to the IP-side bandwidth.

        The whole channel (all wavelengths) is charged for the time it takes
        the IP to hand over one word, stretched by the coding overhead.
        """
        channel_power = self.channel_power_per_wavelength_w * self.num_wavelengths
        return channel_power * self.communication_time / self.ip_bandwidth_bits_per_s

    @property
    def energy_per_bit_modulation_pj(self) -> float:
        """Modulation-referenced energy per bit, in picojoules."""
        return self.energy_per_bit_modulation_j * 1e12

    @property
    def energy_per_bit_ip_pj(self) -> float:
        """IP-referenced energy per bit, in picojoules."""
        return self.energy_per_bit_ip_j * 1e12

    @property
    def transfer_time_for_word_s(self) -> float:
        """Time the optical channel is busy transferring one IP word.

        An IP word of ``Ndata`` useful bits becomes ``Ndata * CT`` channel
        bits, spread over the ``NW`` wavelengths at the modulation rate.
        """
        coded_bits = self.ip_bus_width_bits * self.communication_time
        return coded_bits / (self.num_wavelengths * self.modulation_rate_hz)

    def as_dict(self) -> dict[str, float]:
        """Metrics as a plain dictionary (report/CSV friendly)."""
        return {
            "code": self.code_name,
            "target_ber": self.target_ber,
            "channel_power_mw": self.channel_power_per_wavelength_w * 1e3,
            "communication_time": self.communication_time,
            "energy_per_bit_modulation_pj": self.energy_per_bit_modulation_pj,
            "energy_per_bit_ip_pj": self.energy_per_bit_ip_pj,
        }


def energy_metrics(
    breakdown: ChannelPowerBreakdown,
    *,
    config: PaperConfig = DEFAULT_CONFIG,
) -> EnergyMetrics:
    """Derive the energy/performance metrics from a channel power breakdown."""
    return EnergyMetrics(
        code_name=breakdown.code_name,
        target_ber=breakdown.target_ber,
        channel_power_per_wavelength_w=breakdown.total_power_w,
        communication_time=breakdown.communication_time,
        code_rate=breakdown.code_rate,
        modulation_rate_hz=config.modulation_rate_hz,
        num_wavelengths=config.num_wavelengths,
        ip_bandwidth_bits_per_s=config.ip_bandwidth_bits_per_s,
        ip_bus_width_bits=config.ip_bus_width_bits,
    )
