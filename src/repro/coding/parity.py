"""Single-parity-check codes (detection only).

A single parity bit detects any odd number of bit errors but corrects none.
In the paper's framework such a code cannot relax the laser power on its own
(the target BER is defined after correction), but it is the natural building
block for detection-plus-retransmission schemes and serves as a cheap
baseline in the design-space sweeps and tests.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .base import LinearBlockCode

__all__ = ["SingleParityCheckCode"]


class SingleParityCheckCode(LinearBlockCode):
    """The (k + 1, k) even-parity code."""

    def __init__(self, message_length: int):
        if message_length < 1:
            raise ConfigurationError("message length must be positive")
        parity_column = np.ones((message_length, 1), dtype=np.uint8)
        generator = np.concatenate(
            [np.eye(message_length, dtype=np.uint8), parity_column], axis=1
        )
        super().__init__(
            generator,
            name=f"SPC({message_length + 1},{message_length})",
            minimum_distance=2,
        )

    def _build_syndrome_table(self) -> dict[int, np.ndarray]:
        """A parity code cannot locate errors; leave the table empty.

        With an empty table every non-zero syndrome is reported as a
        detected-but-uncorrected failure, which is the honest behaviour for a
        distance-2 code.
        """
        return {}
