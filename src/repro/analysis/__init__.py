"""``repro.analysis`` — the project's AST-based invariant linter.

Statically enforces the conventions every load-bearing guarantee in this
reproduction rests on:

* **determinism** (``RPR1xx``) — all randomness from plumbed seeds, no
  wall clock or set-iteration order on simulation paths;
* **lock discipline** (``RPR2xx``) — state observed under ``with
  self._lock:`` must always be accessed under it;
* **hot-path / API hygiene** (``RPR3xx``) — ``__slots__`` in hot modules,
  no mutable defaults, no silent exception swallowing, no ``__all__``
  drift.

Run it as ``repro-lint src/`` (console script) or call
:func:`lint_source` / :func:`lint_paths` directly.  See
``docs/ARCHITECTURE.md`` ("Static analysis") for the rule catalogue and
how to add a rule.
"""

from .baseline import Baseline, write_baseline
from .config import DEFAULT_CONFIG, LintConfig, load_config, normalize_path
from .engine import LintRun, iter_python_files, lint_file, lint_paths, lint_source
from .findings import Finding
from .registry import Rule, all_rules, get_rule

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintRun",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "normalize_path",
    "write_baseline",
]
