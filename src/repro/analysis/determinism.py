"""Determinism rules (``RPR1xx``).

Everything the reproduction guarantees — byte-identical ``--jobs N``
sweeps, engine parity, crash-retry byte-identity — assumes that *all*
randomness flows from explicitly-plumbed ``SeedSequence`` streams and that
no simulation-observable value depends on the wall clock or on hash/set
iteration order.  These rules make those assumptions machine-checked.
"""

from __future__ import annotations

import ast
from typing import List

from .astutil import dotted_name, enclosing_function
from .registry import rule

__all__ = [
    "check_global_random",
    "check_numpy_rng",
    "check_wall_clock",
    "check_unordered_iteration",
]

#: ``random``-module functions that mutate or read the hidden global
#: Mersenne-Twister state.  Any of them makes a run irreproducible unless
#: every import site coordinates seeding — which nothing here does.
_STDLIB_GLOBAL_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are *not* the legacy global-state API.
_NUMPY_MODERN = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    }
)

#: Canonical dotted call paths that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.localtime", "time.gmtime",
        "time.ctime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


@rule(
    "RPR101",
    "global-stdlib-random",
    "no process-global `random` module state; use a seeded random.Random",
)
def check_global_random(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in _STDLIB_GLOBAL_FNS:
                    findings.append(
                        ctx.finding(
                            node,
                            "RPR101",
                            f"`from random import {alias.name}` pulls in the "
                            "process-global RNG; plumb a seeded random.Random "
                            "(or numpy Generator) instead",
                        )
                    )
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.imports.resolve_call(node.func)
        if resolved is None:
            continue
        if resolved.startswith("random."):
            member = resolved[len("random."):]
            if member in _STDLIB_GLOBAL_FNS:
                findings.append(
                    ctx.finding(
                        node,
                        "RPR101",
                        f"random.{member}() uses the process-global RNG — "
                        "irreproducible across imports and workers; draw from "
                        "a seeded random.Random or numpy Generator",
                    )
                )
            elif member == "Random" and not node.args and not node.keywords:
                findings.append(
                    ctx.finding(
                        node,
                        "RPR101",
                        "random.Random() without a seed is OS-entropy seeded; "
                        "pass an explicit, plumbed seed",
                    )
                )
    return findings


@rule(
    "RPR102",
    "numpy-rng-discipline",
    "no legacy np.random.* global-state API; unseeded default_rng() only in "
    "whitelisted constructor defaults",
)
def check_numpy_rng(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.imports.resolve_call(node.func)
        if resolved is None or not resolved.startswith("numpy.random."):
            continue
        member = resolved[len("numpy.random."):]
        if "." in member:
            # e.g. numpy.random.mtrand.* — treat the head as the member.
            member = member.split(".")[0]
        if member == "RandomState":
            findings.append(
                ctx.finding(
                    node,
                    "RPR102",
                    "np.random.RandomState is the legacy generator; use "
                    "np.random.default_rng(seed)",
                )
            )
        elif member not in _NUMPY_MODERN:
            findings.append(
                ctx.finding(
                    node,
                    "RPR102",
                    f"np.random.{member}() drives the legacy *global* NumPy "
                    "RNG; draw from a plumbed np.random.Generator instead",
                )
            )
        elif member == "default_rng" and not node.args and not node.keywords:
            function = enclosing_function(node)
            allowed = function is not None and (
                function.name in ctx.config.rng_factory_functions
            )
            if not allowed:
                findings.append(
                    ctx.finding(
                        node,
                        "RPR102",
                        "np.random.default_rng() with no seed mints an "
                        "OS-entropy generator; outside constructor-default "
                        "sites every stream must come from a plumbed "
                        "seed/SeedSequence",
                    )
                )
    return findings


@rule(
    "RPR103",
    "wall-clock-in-simulation",
    "no wall-clock reads on deterministic simulation paths",
    scope="deterministic_paths",
)
def check_wall_clock(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.imports.resolve_call(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            findings.append(
                ctx.finding(
                    node,
                    "RPR103",
                    f"{resolved}() reads the wall clock on a deterministic "
                    "simulation path; simulated time must come from the event "
                    "clock (use time.monotonic/perf_counter for diagnostics "
                    "only)",
                )
            )
    return findings


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@rule(
    "RPR104",
    "unordered-iteration",
    "no iteration over sets / dict.popitem on deterministic paths",
    scope="deterministic_paths",
)
def check_unordered_iteration(ctx) -> List:
    findings = []
    for node in ast.walk(ctx.tree):
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(generator.iter for generator in node.generators)
        for candidate in iters:
            if _is_set_expression(candidate):
                findings.append(
                    ctx.finding(
                        candidate,
                        "RPR104",
                        "iterating a set has no guaranteed order across "
                        "processes; wrap it in sorted(...) before it feeds "
                        "seeds, grids or any deterministic path",
                    )
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
        ):
            findings.append(
                ctx.finding(
                    node,
                    "RPR104",
                    "dict.popitem() order is an implementation detail; pop an "
                    "explicit (sorted) key on deterministic paths",
                )
            )
    return findings
