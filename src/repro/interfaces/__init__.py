"""Electrical/optical interface models (paper Section IV-C and Table I).

The transmitter interface takes the 64-bit, 1 GHz IP bus, optionally encodes
it (sixteen H(7,4) coders or one H(71,64) coder), multiplexes the selected
path and serialises it at the 10 Gb/s modulation rate.  The receiver mirrors
the structure with a deserialiser, decoders and an output mux.  The paper
synthesised these interfaces in 28 nm FDSOI; Table I reports area, critical
path and power per block.

We reproduce that with:

* :mod:`repro.interfaces.techlib` — the calibrated 28 nm FDSOI block
  library holding the Table I characterisation.
* :mod:`repro.interfaces.blocks` — parametric area/power/timing models of
  muxes, Hamming codecs and SER/DES blocks that interpolate the library for
  other code sizes, bus widths and frequencies.
* :mod:`repro.interfaces.transmitter` / :mod:`repro.interfaces.receiver` —
  interface assemblies that aggregate blocks per communication mode.
* :mod:`repro.interfaces.synthesis` — a Table-I-style synthesis report.
"""

from .techlib import TechnologyLibrary, BlockCharacterisation, FDSOI_28NM
from .blocks import (
    HardwareBlock,
    hamming_codec_block,
    mux_block,
    serializer_block,
    deserializer_block,
)
from .transmitter import TransmitterInterface
from .receiver import ReceiverInterface
from .synthesis import SynthesisReport, synthesize_interfaces

__all__ = [
    "TechnologyLibrary",
    "BlockCharacterisation",
    "FDSOI_28NM",
    "HardwareBlock",
    "hamming_codec_block",
    "mux_block",
    "serializer_block",
    "deserializer_block",
    "TransmitterInterface",
    "ReceiverInterface",
    "SynthesisReport",
    "synthesize_interfaces",
]
