"""Throughput benchmark of the adaptive-mode network simulator.

Drives :class:`repro.netsim.NetworkSimulator` with uniform traffic under a
thermal drift profile and the online adaptive controller — the full
monitor/hysteresis/margin pipeline of the ``adaptive`` experiment — and
reports simulated packet events per wall-clock second next to the static
engine on the identical workload, writing the comparison to
``benchmarks/BENCH_adaptive.json``.  The acceptance gate requires the
adaptive-mode engine to clear 50k simulated packet events per second.
Run either way::

    PYTHONPATH=src python benchmarks/bench_adaptive.py
    pytest benchmarks/bench_adaptive.py -q
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import benchlib  # noqa: E402
from repro.experiments.network import request_rate_for_load  # noqa: E402
from repro.manager.policies import margin_levels  # noqa: E402
from repro.manager.runtime import AdaptiveEccController  # noqa: E402
from repro.netsim import NetworkSimulator, make_drift_model  # noqa: E402
from repro.traffic.generators import UniformTrafficGenerator  # noqa: E402

NUM_REQUESTS = 2000
PAYLOAD_BITS = 65536
LOAD = 0.5
WORST_CASE_MULTIPLIER = 16.0
ADAPTIVE_PACKET_GATE_PER_SEC = 50_000.0
_JSON_PATH = os.path.join(_HERE, "BENCH_adaptive.json")


def _requests(num_requests: int, seed: int):
    rate = request_rate_for_load(LOAD, payload_bits=PAYLOAD_BITS)
    generator = UniformTrafficGenerator(
        12, mean_request_rate_hz=rate, payload_bits=PAYLOAD_BITS, seed=seed
    )
    return list(generator.generate(num_requests))


def _adaptive_simulator(num_requests: int, engine: str = "batched") -> NetworkSimulator:
    rate = request_rate_for_load(LOAD, payload_bits=PAYLOAD_BITS)
    horizon_s = num_requests / rate
    drift = make_drift_model(
        "thermal",
        12,
        seed=np.random.SeedSequence(5),
        worst_case_multiplier=WORST_CASE_MULTIPLIER,
        timescale_s=horizon_s,
    )
    controller = AdaptiveEccController(
        margins=margin_levels(WORST_CASE_MULTIPLIER), mode="adaptive"
    )
    return NetworkSimulator(
        seed=np.random.SeedSequence(11),
        engine=engine,
        dynamics=drift,
        controller=controller,
        telemetry_seed=np.random.SeedSequence(13),
        trace_interval_s=horizon_s / 20,
    )


def _timed_run(simulator: NetworkSimulator, requests) -> dict:
    start = time.perf_counter()
    result = simulator.run(requests)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "transfers": len(result.records),
        "packets": result.packets_sent,
        "events": result.events_processed,
        "switches": result.configuration_switches,
        "packets_per_sec": result.packets_sent / seconds,
        "events_per_sec": result.events_processed / seconds,
    }


def run_benchmark(
    num_requests: int = NUM_REQUESTS, *, include_reference: bool = False
) -> dict:
    """Time the adaptive engine against the static one on identical traffic.

    With ``include_reference`` the adaptive workload is also timed under the
    legacy per-event reference engine and pinned as ``reference_baseline``,
    so the JSON artefact records what the epoch-batched default buys.
    """
    requests = _requests(num_requests, seed=7)
    results: dict = {
        "engine": "batched",
        "load": LOAD,
        "payload_bits": PAYLOAD_BITS,
        "num_requests": num_requests,
        "worst_case_multiplier": WORST_CASE_MULTIPLIER,
        "adaptive_packet_gate_per_sec": ADAPTIVE_PACKET_GATE_PER_SEC,
    }
    static = NetworkSimulator(seed=np.random.SeedSequence(11))
    # Warm the manager's candidate/laser caches so the timing measures the
    # event loop and the controller, not the one-off operating-point solves.
    static.run(requests[:20])
    results["static"] = _timed_run(static, requests)

    adaptive = _adaptive_simulator(num_requests)
    adaptive.run(requests[:20])
    results["adaptive"] = _timed_run(adaptive, requests)
    results["adaptive_overhead"] = (
        results["static"]["packets_per_sec"] / results["adaptive"]["packets_per_sec"]
    )
    results["gate_met"] = (
        results["adaptive"]["packets_per_sec"] >= ADAPTIVE_PACKET_GATE_PER_SEC
    )
    if include_reference:
        reference = _adaptive_simulator(num_requests, engine="reference")
        reference.run(requests[:20])
        results["reference_baseline"] = _timed_run(reference, requests)
        results["batched_speedup_vs_reference"] = (
            results["adaptive"]["packets_per_sec"]
            / results["reference_baseline"]["packets_per_sec"]
        )
    return results


def test_adaptive_mode_meets_packet_event_gate():
    """Acceptance gate: >= 50k simulated packet events/s with the controller on."""
    best = 0.0
    for _ in range(3):  # best-of-three rejects scheduler noise on CI runners
        results = run_benchmark(num_requests=600)
        best = max(best, results["adaptive"]["packets_per_sec"])
        if best >= ADAPTIVE_PACKET_GATE_PER_SEC:
            break
    assert best >= ADAPTIVE_PACKET_GATE_PER_SEC, best


def test_adaptive_run_actually_adapts():
    """Sanity: the timed configuration switches levels and stays deterministic."""
    results = run_benchmark(num_requests=300)
    assert results["adaptive"]["switches"] > 0
    assert results["adaptive"]["transfers"] == 300


def main(argv: list[str] | None = None) -> int:
    args = benchlib.parse_args(argv, description=__doc__)
    results = run_benchmark(include_reference=True)
    benchlib.write_bench_json(_JSON_PATH, "adaptive", results)
    if args.history:
        benchlib.append_history(
            args.history,
            "adaptive",
            {
                "adaptive_packets_per_sec": results["adaptive"]["packets_per_sec"],
                "adaptive_events_per_sec": results["adaptive"]["events_per_sec"],
                "static_packets_per_sec": results["static"]["packets_per_sec"],
                "adaptive_overhead": results["adaptive_overhead"],
            },
        )
    print(
        f"netsim adaptive: {results['adaptive']['packets_per_sec']:,.0f} packets/s "
        f"({results['adaptive']['switches']} switches) vs static "
        f"{results['static']['packets_per_sec']:,.0f} packets/s "
        f"({results['adaptive_overhead']:.2f}x overhead), "
        f"gate >= {results['adaptive_packet_gate_per_sec']:,.0f}: {results['gate_met']}; "
        f"{results['batched_speedup_vs_reference']:.1f}x over the reference engine"
    )
    print(f"[wrote {_JSON_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
