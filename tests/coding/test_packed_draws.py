"""Bit-exactness pins for the packed end-to-end Monte-Carlo message draws.

``draw_message_words`` must consume the generator exactly like the historical
``integers(0, 2, ...)`` draw-then-pack path: same packed words out, same
generator state afterwards.  These tests pin that equivalence for a spread of
block geometries (word-aligned, byte-aligned, and ragged) and pin the
Monte-Carlo engine's results against the pre-packing reference draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import montecarlo
from repro.coding.montecarlo import draw_message_words, estimate_ber_monte_carlo
from repro.coding.packed import pack_bits, unpack_bits
from repro.coding.registry import get_code, paper_code_set
from repro.exceptions import ConfigurationError

GEOMETRIES = [
    (1, 1),
    (3, 4),
    (5, 7),
    (17, 23),
    (4, 57),
    (64, 64),
    (33, 71),
    (100, 128),
    (7, 130),
]


@pytest.mark.parametrize("num_blocks,num_bits", GEOMETRIES)
def test_packed_draw_matches_unpacked_draw_and_stream(num_blocks, num_bits):
    for seed in (0, 1, 20260728):
        reference = np.random.default_rng(seed)
        expected = pack_bits(
            reference.integers(0, 2, size=(num_blocks, num_bits), dtype=np.uint8)
        )
        reference_tail = reference.random(8)

        candidate = np.random.default_rng(seed)
        words = draw_message_words(candidate, num_blocks, num_bits)
        assert words.shape == expected.shape
        assert np.array_equal(words, expected)
        # The generator state afterwards is identical, so every later draw
        # (channel noise, fault positions, ...) stays on the same stream.
        assert np.array_equal(candidate.random(8), reference_tail)


def test_packed_draw_padding_bits_are_zero():
    words = draw_message_words(np.random.default_rng(5), 9, 71)
    bits = unpack_bits(words, 71)
    assert bits.shape == (9, 71)
    # Round-tripping through pack_bits reproduces the words exactly, which
    # only holds when every padding bit is zero.
    assert np.array_equal(pack_bits(bits), words)


def test_packed_draw_rejects_bad_geometry():
    generator = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        draw_message_words(generator, -1, 8)
    with pytest.raises(ConfigurationError):
        draw_message_words(generator, 4, 0)


def test_packed_draw_fallback_is_bit_exact(monkeypatch):
    """If the runtime reconstruction check fails, the fallback matches too."""
    monkeypatch.setattr(montecarlo, "_PACKED_DRAW_OK", False)
    reference = np.random.default_rng(123)
    expected = pack_bits(reference.integers(0, 2, size=(6, 23), dtype=np.uint8))
    candidate = np.random.default_rng(123)
    assert np.array_equal(draw_message_words(candidate, 6, 23), expected)


def _reference_estimate(code, raw_ber, *, num_blocks, seed, batch_size=8192):
    """The pre-packing draw path: unpacked messages, then pack."""
    generator = np.random.default_rng(np.random.SeedSequence(seed))
    from repro.coding.base import decode_blocks_packed, encode_blocks_packed
    from repro.coding.packed import popcount_rows, prefix_mask

    bit_errors = 0
    block_errors = 0
    mask = prefix_mask(code.n, code.k)
    for start in range(0, num_blocks, batch_size):
        count = min(batch_size, num_blocks - start)
        messages = generator.integers(0, 2, size=(count, code.k), dtype=np.uint8)
        codeword_words = encode_blocks_packed(code, pack_bits(messages))
        flip_words = pack_bits(generator.random((count, code.n)) < raw_ber)
        decoded = decode_blocks_packed(code, codeword_words ^ flip_words)
        errors = popcount_rows((decoded.corrected_words ^ codeword_words) & mask)
        bit_errors += int(errors.sum())
        block_errors += int(np.count_nonzero(errors))
    return bit_errors, block_errors


@pytest.mark.parametrize("name", ["H(7,4)", "H(71,64)", "SECDED(72,64)"])
def test_estimate_ber_monte_carlo_pinned_to_reference_draws(name):
    code = get_code(name)
    result = estimate_ber_monte_carlo(code, 2e-2, num_blocks=3000, seed=99, batch_size=1024)
    bit_errors, block_errors = _reference_estimate(
        code, 2e-2, num_blocks=3000, seed=99, batch_size=1024
    )
    assert result.bit_errors == bit_errors
    assert result.block_errors == block_errors


def test_every_registry_code_still_estimates():
    for code in paper_code_set(64):
        result = estimate_ber_monte_carlo(code, 1e-2, num_blocks=400, seed=3)
        assert result.blocks_simulated == 400
        assert 0.0 <= result.estimated_ber <= 1.0
