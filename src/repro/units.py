"""Unit helpers and physical constants used throughout :mod:`repro`.

The optical-link literature mixes decibel and linear quantities freely; the
paper quotes waveguide loss in dB/cm, extinction ratio in dB, laser output
power in microwatts and laser electrical power in milliwatts.  Internally the
library works in SI base units (watts, metres, seconds, hertz) and linear
power ratios.  This module provides the conversions plus a few convenience
constants so the rest of the code never embeds magic conversion factors.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "db_to_linear",
    "ensure_monotonic",
    "linear_to_db",
    "db_loss_to_transmission",
    "transmission_to_db_loss",
    "milli",
    "micro",
    "nano",
    "pico",
    "femto",
    "giga",
    "mega",
    "kilo",
    "to_mw",
    "to_uw",
    "to_pj",
    "q_function",
    "inverse_q_function",
    "PLANCK_CONSTANT",
    "SPEED_OF_LIGHT",
    "ELEMENTARY_CHARGE",
    "BOLTZMANN_CONSTANT",
]

# Physical constants (SI units).
PLANCK_CONSTANT = 6.626_070_15e-34  # J.s
SPEED_OF_LIGHT = 299_792_458.0  # m/s
ELEMENTARY_CHARGE = 1.602_176_634e-19  # C
BOLTZMANN_CONSTANT = 1.380_649e-23  # J/K

# SI prefixes as multiplicative factors.
milli = 1e-3
micro = 1e-6
nano = 1e-9
pico = 1e-12
femto = 1e-15
kilo = 1e3
mega = 1e6
giga = 1e9


def db_to_linear(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio expressed in dB to a linear ratio.

    ``db_to_linear(3.0)`` is approximately ``2.0``; negative dB values map to
    ratios below one.
    """
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0) if isinstance(
        value_db, (np.ndarray, list, tuple)
    ) else 10.0 ** (float(value_db) / 10.0)


def linear_to_db(value: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to dB.

    Raises :class:`ValueError` for non-positive scalar inputs because a
    non-positive power ratio has no dB representation.
    """
    if isinstance(value, (np.ndarray, list, tuple)):
        arr = np.asarray(value, dtype=float)
        if np.any(arr <= 0):
            raise ValueError("linear power ratios must be strictly positive")
        return 10.0 * np.log10(arr)
    if value <= 0:
        raise ValueError("linear power ratios must be strictly positive")
    return 10.0 * math.log10(float(value))


def db_loss_to_transmission(loss_db: float) -> float:
    """Convert a loss expressed in (positive) dB to a transmission factor.

    A loss of ``3 dB`` corresponds to a transmission of about ``0.5``.  A
    negative loss would be a gain, which passive photonic elements cannot
    provide, so negative values are rejected.
    """
    if loss_db < 0:
        raise ValueError("a passive loss must be non-negative in dB")
    return 10.0 ** (-loss_db / 10.0)


def transmission_to_db_loss(transmission: float) -> float:
    """Convert a transmission factor in (0, 1] to a positive dB loss."""
    if not 0.0 < transmission <= 1.0:
        raise ValueError("transmission must lie in (0, 1]")
    return -10.0 * math.log10(transmission)


def to_mw(power_w: float) -> float:
    """Express a power given in watts in milliwatts."""
    return power_w / milli


def to_uw(power_w: float) -> float:
    """Express a power given in watts in microwatts."""
    return power_w / micro


def to_pj(energy_j: float) -> float:
    """Express an energy given in joules in picojoules."""
    return energy_j / pico


def q_function(x: float | np.ndarray) -> float | np.ndarray:
    """Gaussian tail probability Q(x) = P[N(0,1) > x].

    Used by the OOK receiver model: the raw bit error probability of an
    on-off-keyed link with decision threshold midway between levels is
    ``Q(sqrt(SNR))`` which equals ``0.5 * erfc(sqrt(SNR / 2)) `` for the
    amplitude-SNR convention; the paper uses the power-SNR convention
    ``p = 0.5 * erfc(sqrt(SNR))`` which this library follows (see
    :mod:`repro.channel.ber`).
    """
    from scipy.special import erfc

    return 0.5 * erfc(np.asarray(x, dtype=float) / math.sqrt(2.0))


def inverse_q_function(p: float) -> float:
    """Inverse of :func:`q_function` for scalar probabilities in (0, 1)."""
    from scipy.special import erfcinv

    if not 0.0 < p < 1.0:
        raise ValueError("probability must lie strictly between 0 and 1")
    return math.sqrt(2.0) * float(erfcinv(2.0 * p))


def ensure_monotonic(values: Iterable[float], *, increasing: bool = True) -> bool:
    """Return True if the sequence is monotonic in the requested direction.

    Utility used by sweep generators and tests to validate axis vectors.
    """
    seq = list(values)
    if len(seq) < 2:
        return True
    if increasing:
        return all(b >= a for a, b in zip(seq, seq[1:]))
    return all(b <= a for a, b in zip(seq, seq[1:]))
