"""Micro-ring resonator (MR) model.

The MR is the work-horse of the MWSR channel: in a writer it modulates the
optical carrier (ON state = resonance aligned with the signal, strong
absorption; OFF state = resonance detuned, signal passes with low loss), and
in the reader a passive MR drops the signal to a photodetector.  The paper's
Figure 3 plots exactly this: the Lorentzian through-port transmission of the
ring in ON and OFF states, whose depth difference at the signal wavelength
is the extinction ratio (6.9 dB from Rakowski et al.).

The model used here is the standard first-order (single-pole) all-pass /
add-drop Lorentzian response parameterised by the resonance wavelength, the
loaded quality factor and the on-resonance extinction:

``T_through(dl) = 1 - (1 - T_min) / (1 + (2 dl / FWHM)^2)``

with ``FWHM = lambda_res / Q`` and ``T_min`` the through transmission at
resonance.  The drop-port response is the complementary Lorentzian scaled by
the drop efficiency.  This reproduces both the modulation behaviour (Figure
3) and the adjacent-channel crosstalk needed by the Eq. 4 worst-case
crosstalk term.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..units import db_loss_to_transmission, db_to_linear, linear_to_db

__all__ = ["MicroringState", "MicroringResonator"]


class MicroringState(enum.Enum):
    """Modulation state of a ring: OFF lets light pass, ON absorbs/drops it."""

    OFF = "off"
    ON = "on"


@dataclass(frozen=True)
class MicroringResonator:
    """First-order Lorentzian micro-ring model.

    Parameters
    ----------
    resonance_wavelength_m:
        Resonance wavelength of the ring in its OFF (unbiased) state.
    quality_factor:
        Loaded quality factor; sets the linewidth FWHM = lambda / Q.
    extinction_ratio_db:
        Transmission ratio between OFF and ON states at the signal
        wavelength (paper: 6.9 dB).
    through_loss_db:
        Residual insertion loss of the OFF-state ring on a passing,
        off-resonance signal (per-ring "through" loss).
    drop_loss_db:
        Loss of the drop path when the ring routes light to a photodetector.
    on_state_shift_m:
        Resonance blue-shift applied in the ON state (electro-optic tuning);
        only used when evaluating spectra, the ON/OFF extinction at the
        signal wavelength is pinned to ``extinction_ratio_db``.
    drive_power_w:
        Electrical power of the modulator driver (P_MR = 1.36 mW in the
        paper).
    """

    resonance_wavelength_m: float = 1550e-9
    quality_factor: float = 9000.0
    extinction_ratio_db: float = 6.9
    through_loss_db: float = 0.005
    drop_loss_db: float = 1.0
    on_state_shift_m: float = 0.5e-9
    drive_power_w: float = 1.36e-3

    def __post_init__(self) -> None:
        if self.resonance_wavelength_m <= 0:
            raise ConfigurationError("resonance wavelength must be positive")
        if self.quality_factor <= 0:
            raise ConfigurationError("quality factor must be positive")
        if self.extinction_ratio_db <= 0:
            raise ConfigurationError("extinction ratio must be positive in dB")
        if self.through_loss_db < 0 or self.drop_loss_db < 0:
            raise ConfigurationError("losses must be non-negative in dB")

    # ------------------------------------------------------------------ derived
    @property
    def fwhm_m(self) -> float:
        """Full width at half maximum of the Lorentzian resonance."""
        return self.resonance_wavelength_m / self.quality_factor

    @property
    def extinction_ratio_linear(self) -> float:
        """Linear OFF/ON transmission ratio at the signal wavelength."""
        return float(db_to_linear(self.extinction_ratio_db))

    @property
    def off_state_transmission(self) -> float:
        """Through transmission of the OFF ring at the signal wavelength."""
        return db_loss_to_transmission(self.through_loss_db)

    @property
    def on_state_transmission(self) -> float:
        """Through transmission of the ON ring at the signal wavelength.

        Defined so OFF / ON equals the extinction ratio.
        """
        return self.off_state_transmission / self.extinction_ratio_linear

    # ------------------------------------------------------------------ spectra
    def _lorentzian(self, detuning_m: float | np.ndarray) -> float | np.ndarray:
        """Unit-height Lorentzian of the ring resonance."""
        x = 2.0 * np.asarray(detuning_m, dtype=float) / self.fwhm_m
        return 1.0 / (1.0 + x * x)

    def through_transmission(
        self, wavelength_m: float | np.ndarray, state: MicroringState = MicroringState.OFF
    ) -> float | np.ndarray:
        """Through-port power transmission at a wavelength for a given state.

        Far from resonance the transmission tends to the OFF-state insertion
        loss; at resonance it dips to the state's on-resonance transmission.
        """
        resonance = self.resonance_wavelength_m
        floor = self.off_state_transmission
        if state is MicroringState.ON:
            resonance = resonance - self.on_state_shift_m
            dip = self.on_state_transmission
        else:
            dip = floor / self.extinction_ratio_linear
        detuning = np.asarray(wavelength_m, dtype=float) - resonance
        shape = self._lorentzian(detuning)
        result = floor - (floor - dip) * shape
        if np.isscalar(wavelength_m):
            return float(result)
        return result

    def drop_transmission(self, wavelength_m: float | np.ndarray) -> float | np.ndarray:
        """Drop-port power transmission towards the photodetector.

        Peaks at the resonance wavelength with the configured drop loss and
        rolls off as a Lorentzian; this roll-off is what limits (but does not
        eliminate) adjacent-channel crosstalk.
        """
        peak = db_loss_to_transmission(self.drop_loss_db)
        detuning = np.asarray(wavelength_m, dtype=float) - self.resonance_wavelength_m
        result = peak * self._lorentzian(detuning)
        if np.isscalar(wavelength_m):
            return float(result)
        return result

    @property
    def signal_wavelength_m(self) -> float:
        """Wavelength of the optical carrier the ring modulates.

        Following the paper's Figure 3 convention the carrier sits at the
        ON-state resonance (the electro-optic shift aligns the ring with the
        signal to absorb it), i.e. blue-shifted from the OFF-state resonance.
        """
        return self.resonance_wavelength_m - self.on_state_shift_m

    def modulation_extinction_db(self) -> float:
        """Achieved ON/OFF extinction at the signal wavelength, in dB."""
        off = self.through_transmission(self.signal_wavelength_m, MicroringState.OFF)
        on = self.through_transmission(self.signal_wavelength_m, MicroringState.ON)
        return float(linear_to_db(off / on))

    def spectrum(
        self,
        wavelengths_m: np.ndarray,
        state: MicroringState = MicroringState.OFF,
    ) -> np.ndarray:
        """Through-port transmission sampled over a wavelength grid (Figure 3)."""
        return np.asarray(self.through_transmission(wavelengths_m, state), dtype=float)

    def detuned_copy(self, resonance_wavelength_m: float) -> "MicroringResonator":
        """A copy of this ring tuned to a different channel wavelength."""
        return MicroringResonator(
            resonance_wavelength_m=resonance_wavelength_m,
            quality_factor=self.quality_factor,
            extinction_ratio_db=self.extinction_ratio_db,
            through_loss_db=self.through_loss_db,
            drop_loss_db=self.drop_loss_db,
            on_state_shift_m=self.on_state_shift_m,
            drive_power_w=self.drive_power_w,
        )
