"""Benchmark ``figure3``: micro-ring ON/OFF transmission spectra.

Paper artefact: Figure 3 (optical transmission of the modulator ring in ON
and OFF states; the gap at the signal wavelength is the 6.9 dB extinction
ratio).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import run_figure3


def test_bench_figure3_spectra(benchmark):
    """Time the spectrum sampling and check the extinction ratio."""
    result = benchmark(run_figure3)
    assert result.achieved_extinction_db == pytest.approx(6.9, abs=0.3)
    # Both curves dip below -3 dB near resonance, as in the paper's figure.
    assert result.on_transmission_db.min() < -3.0
    assert result.off_transmission_db.min() < -3.0
