"""Route table and admission control for the simulation service's HTTP API.

Transport-free by design: :func:`dispatch` maps ``(method, path, query,
body)`` to ``(status, payload, headers)`` so the whole API surface is unit
testable without a socket, and :mod:`~repro.service.server` stays a thin
stdlib-HTTP shim around it.

Endpoints::

    GET  /healthz            liveness (always answered, even shedding)
    GET  /readyz             readiness: accepting work and supervisor alive
    GET  /metricsz           metrics snapshot + queue counts + shed level
    GET  /design             link-design query (?code=...&target_ber=...)
    GET  /jobs               all known jobs
    POST /jobs               submit a sweep job {"experiment", "options", "jobs"}
    GET  /jobs/<id>          one job's state
    GET  /jobs/<id>/result   a done job's merged result (from the store)
    POST /jobs/<id>/cancel   cancel (queued -> dead, running -> drained dead)

Graceful overload degradation is a four-rung ladder
(:class:`LoadShedder`), driven by queue occupancy and concurrent in-flight
requests, never by failure:

* ``NORMAL`` — everything served;
* ``SHED_SWEEPS`` — *new* sweep submissions get 429 + ``Retry-After``
  (resubmissions of known jobs still join); design queries still solve;
* ``CACHED_ONLY`` — design queries are answered only from cache (a miss
  gets 503 instead of a multi-millisecond solve), job status still served;
* ``HEALTH_ONLY`` — only ``/healthz`` answers 200; everything else 503.
  Also the drain state: a terminating service stops admitting work first.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..coding.registry import available_codes, get_code
from ..exceptions import (
    ConfigurationError,
    JobNotFoundError,
    QueueFullError,
    ReproError,
)
from ..experiments.orchestrator import available_experiments, describe_grid
from .models import Job, JobState

__all__ = ["LoadShedder", "ServiceContext", "dispatch"]

Response = Tuple[int, Any, Dict[str, str]]

#: Upper bound on per-job worker parallelism a request may ask for.
MAX_JOB_WORKERS = 8


class LoadShedder:
    """The service's admission-control ladder (see module docstring)."""

    NORMAL = 0
    SHED_SWEEPS = 1
    CACHED_ONLY = 2
    HEALTH_ONLY = 3

    NAMES = {0: "normal", 1: "shed-sweeps", 2: "cached-only", 3: "health-only"}

    def __init__(
        self,
        queue,
        *,
        max_inflight: int = 64,
        shed_depth_fraction: float = 0.75,
        registry=None,
    ):
        if not 0.0 < shed_depth_fraction <= 1.0:
            raise ConfigurationError("shed_depth_fraction must lie in (0, 1]")
        if max_inflight < 1:
            raise ConfigurationError("max_inflight must be at least 1")
        self.queue = queue
        self.max_inflight = int(max_inflight)
        self.shed_depth_fraction = float(shed_depth_fraction)
        self.registry = registry
        self.draining = False
        self._inflight = 0
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- pressure
    def enter(self) -> int:
        with self._lock:
            self._inflight += 1
            return self._inflight

    def exit(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def level(self) -> int:
        """The current ladder rung, from queue occupancy and request load."""
        if self.draining:
            return self.HEALTH_ONLY
        inflight = self.inflight
        if inflight >= 4 * self.max_inflight:
            return self.HEALTH_ONLY
        if inflight >= self.max_inflight:
            return self.CACHED_ONLY
        depth = self.queue.depth()
        if depth >= self.queue.max_depth:
            return self.CACHED_ONLY
        if depth >= self.shed_depth_fraction * self.queue.max_depth:
            return self.SHED_SWEEPS
        return self.NORMAL

    def shed(self, what: str) -> None:
        if self.registry is not None:
            self.registry.inc(f"service.shed.{what}")

    def retry_after_s(self) -> float:
        """Backpressure hint: grows with the backlog, at least one second."""
        return float(max(1, self.queue.depth()))


@dataclass
class ServiceContext:
    """Everything a route handler may touch (one per service instance)."""

    queue: Any
    store: Any
    supervisor: Any
    designer: Any
    config: Any
    registry: Any = None
    shedder: LoadShedder = None  # type: ignore[assignment]
    started_s: float = field(default_factory=time.time)

    def inc(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.inc(name, amount)


def _error(status: int, message: str, **extra) -> Response:
    return status, {"error": message, **extra}, {}


def _unavailable(context: ServiceContext, level: int) -> Response:
    context.shedder.shed("request")
    return _error(
        503,
        f"service is shedding load ({LoadShedder.NAMES[level]})",
        shed_level=LoadShedder.NAMES[level],
    )


# ---------------------------------------------------------------------- routes
def _healthz(context: ServiceContext, match, query, body) -> Response:
    return 200, {"status": "ok", "uptime_s": round(time.time() - context.started_s, 3)}, {}


def _readyz(context: ServiceContext, match, query, body) -> Response:
    level = context.shedder.level()
    supervising = context.supervisor is not None and context.supervisor.is_alive()
    ready = supervising and not context.shedder.draining and level < LoadShedder.CACHED_ONLY
    payload = {
        "ready": ready,
        "shed_level": LoadShedder.NAMES[level],
        "supervisor_alive": supervising,
        "draining": context.shedder.draining,
        "queue": context.queue.counts(),
    }
    return (200 if ready else 503), payload, {}


def _metricsz(context: ServiceContext, match, query, body) -> Response:
    snapshot = context.registry.snapshot() if context.registry is not None else {}
    return (
        200,
        {
            "metrics": snapshot,
            "queue": context.queue.counts(),
            "queue_depth": context.queue.depth(),
            "queue_max_depth": context.queue.max_depth,
            "inflight_requests": context.shedder.inflight,
            "shed_level": LoadShedder.NAMES[context.shedder.level()],
        },
        {},
    )


def _design(context: ServiceContext, match, query, body) -> Response:
    code_name = query.get("code")
    target_text = query.get("target_ber")
    if not code_name or not target_text:
        return _error(400, "design queries need ?code=<name>&target_ber=<float>")
    try:
        target_ber = float(target_text)
    except ValueError:
        return _error(400, f"target_ber {target_text!r} is not a number")
    try:
        code = get_code(code_name)
    except ConfigurationError:
        return _error(400, f"unknown code {code_name!r}", available=available_codes())
    cached = context.designer.cached_point(code, target_ber) is not None
    if not cached and context.shedder.level() >= LoadShedder.CACHED_ONLY:
        # Overloaded: only cache hits are answered; a miss would cost a
        # full crosstalk/brentq solve per request.
        context.shedder.shed("design")
        return _error(
            503,
            "design solver is shedding load; only cached points are served",
            shed_level=LoadShedder.NAMES[context.shedder.level()],
        )
    try:
        point = context.designer.design_point(code, target_ber)
    except ReproError as error:
        return _error(400, str(error))
    context.inc("service.design.cache_hits" if cached else "service.design.solves")
    return 200, {"cached": cached, "point": asdict(point)}, {}


def _jobs_list(context: ServiceContext, match, query, body) -> Response:
    return 200, {"jobs": [job.public_view() for job in context.queue.jobs()]}, {}


def _jobs_submit(context: ServiceContext, match, query, body) -> Response:
    if not isinstance(body, dict):
        return _error(400, "job submissions need a JSON object body")
    experiment = body.get("experiment")
    if not isinstance(experiment, str):
        return _error(
            400, "missing experiment name", available=available_experiments()
        )
    options = body.get("options")
    if options is not None and not isinstance(options, dict):
        return _error(400, "options must be a JSON object")
    workers = body.get("jobs", 1)
    if not isinstance(workers, int) or not 1 <= workers <= MAX_JOB_WORKERS:
        return _error(400, f"jobs must be an integer in [1, {MAX_JOB_WORKERS}]")
    try:
        grid = describe_grid(experiment, context.config, options)
    except ReproError as error:
        return _error(400, str(error))
    job_id = grid.fingerprint

    try:
        existing = context.queue.get(job_id)
    except JobNotFoundError:
        existing = None
    if existing is None:
        # Admission control applies to *new* work only — joining an
        # existing job costs nothing.
        level = context.shedder.level()
        if level >= LoadShedder.SHED_SWEEPS:
            context.shedder.shed("submit")
            return (
                429,
                {
                    "error": "service is shedding new sweep jobs",
                    "shed_level": LoadShedder.NAMES[level],
                },
                {"Retry-After": f"{context.shedder.retry_after_s():.0f}"},
            )
    elif existing.state == JobState.DONE and context.store.get(job_id) is None:
        # The stored result was lost or quarantined since the job finished:
        # self-heal by re-queueing the work.
        existing = context.queue.resubmit(job_id)
        context.inc("service.jobs.resubmitted")
        return 202, {**existing.public_view(), "created": False, "cached": False}, {}

    job = Job(
        job_id=job_id,
        experiment=experiment,
        options=grid.options,
        jobs=workers,
    )
    try:
        job, created = context.queue.submit(job)
    except QueueFullError as error:
        context.shedder.shed("submit")
        return (
            429,
            {"error": str(error), "queue_depth": error.depth},
            {"Retry-After": f"{error.retry_after_s:.0f}"},
        )
    if created:
        context.inc("service.jobs.submitted")
    else:
        context.inc("service.jobs.joined")
    cached = job.state == JobState.DONE
    status = 202 if created else 200
    return status, {**job.public_view(), "created": created, "cached": cached}, {}


def _job_get(context: ServiceContext, match, query, body) -> Response:
    try:
        job = context.queue.get(match.group("job_id"))
    except JobNotFoundError as error:
        return _error(404, str(error))
    view = job.public_view()
    view["result_ready"] = job.state == JobState.DONE
    return 200, view, {}


def _job_result(context: ServiceContext, match, query, body) -> Response:
    job_id = match.group("job_id")
    try:
        job = context.queue.get(job_id)
    except JobNotFoundError as error:
        return _error(404, str(error))
    if job.state != JobState.DONE:
        return _error(409, f"job is {job.state}, not done", state=job.state)
    payload = context.store.get(job_id)
    if payload is None:
        # Damage discovered at read time: the store quarantined the
        # artefact; re-queue the work and tell the client to come back.
        job = context.queue.resubmit(job_id)
        context.inc("service.jobs.resubmitted")
        return (
            503,
            {"error": "stored result was damaged; job re-queued", "state": job.state},
            {"Retry-After": "5"},
        )
    context.inc("service.results.served")
    return 200, {"job_id": job_id, "state": job.state, "result": payload}, {}


def _job_cancel(context: ServiceContext, match, query, body) -> Response:
    job_id = match.group("job_id")
    if context.supervisor is None:
        return _error(503, "no supervisor is running")
    try:
        job = context.supervisor.cancel_job(job_id)
    except JobNotFoundError as error:
        return _error(404, str(error))
    return 200, job.public_view(), {}


#: ``(method, path regex, handler, minimum shed level at which it is cut)``.
#: A request is served only while ``shedder.level() < cut``; ``/healthz``
#: is never cut.
_ROUTES: tuple[tuple[str, re.Pattern, Callable, int], ...] = (
    ("GET", re.compile(r"^/healthz$"), _healthz, 99),
    ("GET", re.compile(r"^/readyz$"), _readyz, LoadShedder.HEALTH_ONLY),
    ("GET", re.compile(r"^/metricsz$"), _metricsz, LoadShedder.HEALTH_ONLY),
    ("GET", re.compile(r"^/design$"), _design, LoadShedder.HEALTH_ONLY),
    ("GET", re.compile(r"^/jobs$"), _jobs_list, LoadShedder.HEALTH_ONLY),
    ("POST", re.compile(r"^/jobs$"), _jobs_submit, LoadShedder.HEALTH_ONLY),
    ("GET", re.compile(r"^/jobs/(?P<job_id>[0-9a-f]{8,64})$"), _job_get, LoadShedder.HEALTH_ONLY),
    (
        "GET",
        re.compile(r"^/jobs/(?P<job_id>[0-9a-f]{8,64})/result$"),
        _job_result,
        LoadShedder.HEALTH_ONLY,
    ),
    (
        "POST",
        re.compile(r"^/jobs/(?P<job_id>[0-9a-f]{8,64})/cancel$"),
        _job_cancel,
        LoadShedder.HEALTH_ONLY,
    ),
)


def dispatch(
    context: ServiceContext,
    method: str,
    path: str,
    query: Dict[str, str],
    body: Any,
) -> Response:
    """Route one request; returns ``(status, JSON payload, extra headers)``."""
    context.inc("service.requests")
    path_known = False
    for route_method, pattern, handler, cut_level in _ROUTES:
        match = pattern.match(path)
        if match is None:
            continue
        path_known = True
        if route_method != method:
            continue
        level = context.shedder.level()
        if level >= cut_level:
            return _unavailable(context, level)
        return handler(context, match, query, body)
    if path_known:
        return _error(405, f"{method} not allowed on {path}")
    return _error(404, f"no route for {path}")
