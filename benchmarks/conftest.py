"""Shared fixtures for the pytest-benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper, both
timing the computation (pytest-benchmark) and asserting that the regenerated
values keep the paper's shape (who wins, by roughly what factor, where the
feasibility cliff sits).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.config import DEFAULT_CONFIG  # noqa: E402
from repro.link.design import OpticalLinkDesigner  # noqa: E402


@pytest.fixture(scope="session")
def paper_config():
    """The paper's default evaluation configuration."""
    return DEFAULT_CONFIG


@pytest.fixture(scope="session")
def designer():
    """Session-cached link designer."""
    return OpticalLinkDesigner()
