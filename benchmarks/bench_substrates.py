"""Benchmarks of the substrate layers (not tied to one figure).

These time the building blocks the experiments lean on — Hamming
encode/decode throughput, BCH decoding, the Monte-Carlo link simulator and
the managed runtime — so performance regressions in the substrates are
visible independently of the figure-level benches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.bch import BCHCode
from repro.coding.hamming import HammingCode, ShortenedHammingCode
from repro.coding.montecarlo import estimate_ber_monte_carlo
from repro.link.design import OpticalLinkDesigner
from repro.manager.manager import CommunicationRequest, OpticalLinkManager
from repro.simulation.linksim import OpticalLinkSimulator


def test_bench_hamming_encode_stream(benchmark):
    """Encode throughput of the H(71,64) coder on a long bit stream."""
    code = ShortenedHammingCode(64)
    rng = np.random.default_rng(0)
    stream = rng.integers(0, 2, size=64 * 256, dtype=np.uint8)
    encoded = benchmark(code.encode, stream)
    assert encoded.size == 71 * 256


def test_bench_hamming_decode_with_errors(benchmark):
    """Decode throughput of H(7,4) with one injected error per block."""
    code = HammingCode(3)
    rng = np.random.default_rng(1)
    stream = rng.integers(0, 2, size=4 * 512, dtype=np.uint8)
    encoded = code.encode(stream)
    corrupted = encoded.copy().reshape(-1, 7)
    corrupted[:, 2] ^= 1
    corrupted = corrupted.reshape(-1)

    def decode():
        return code.decode(corrupted)

    decoded = benchmark(decode)
    assert np.array_equal(decoded, stream)


def test_bench_bch_double_error_decode(benchmark):
    """Algebraic decoding speed of BCH(63,51,t=2) with two errors."""
    code = BCHCode(6, 2)
    rng = np.random.default_rng(2)
    message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
    codeword = code.encode_block(message)
    corrupted = codeword.copy()
    corrupted[5] ^= 1
    corrupted[40] ^= 1
    result = benchmark(code.decode_block, corrupted)
    assert np.array_equal(result.message_bits, message)


def test_bench_monte_carlo_ber(benchmark):
    """Monte-Carlo BER estimation throughput (H(7,4), 500 blocks)."""
    code = HammingCode(3)
    rng = np.random.default_rng(3)
    result = benchmark(
        estimate_ber_monte_carlo, code, 0.01, num_blocks=500, rng=rng
    )
    assert result.blocks_simulated == 500


def test_bench_monte_carlo_ber_batched_20k(benchmark):
    """Batched Monte-Carlo throughput at the bench_montecarlo workload (H(71,64), 20k blocks)."""
    code = ShortenedHammingCode(64)
    rng = np.random.default_rng(5)
    result = benchmark(
        estimate_ber_monte_carlo, code, 1e-3, num_blocks=20000, rng=rng
    )
    assert result.blocks_simulated == 20000


def test_bench_batch_encode_decode(benchmark):
    """Raw encode_batch + decode_batch throughput (H(71,64), 20k corrupted blocks)."""
    code = ShortenedHammingCode(64)
    rng = np.random.default_rng(6)
    messages = rng.integers(0, 2, size=(20000, code.k), dtype=np.uint8)
    flips = (rng.random((20000, code.n)) < 1e-3).astype(np.uint8)

    def round_trip():
        received = code.encode_batch(messages) ^ flips
        return code.decode_batch(received)

    result = benchmark(round_trip)
    assert np.array_equal(result.message_bits[~result.detected_error],
                          messages[~result.detected_error])


def test_bench_link_simulator(benchmark):
    """Bit-level optical link simulation throughput (300 blocks)."""
    designer = OpticalLinkDesigner()
    code = ShortenedHammingCode(64)
    point = designer.design_point(code, 1e-3)

    def run():
        simulator = OpticalLinkSimulator(code, point, rng=np.random.default_rng(4))
        return simulator.run(num_blocks=300)

    result = benchmark(run)
    assert result.blocks_simulated == 300


def test_bench_manager_configuration(benchmark):
    """Latency of one manager configuration request (warm cache)."""
    manager = OpticalLinkManager()
    manager.configure(CommunicationRequest(source=1, destination=0, target_ber=1e-11))

    def configure():
        return manager.configure(
            CommunicationRequest(source=2, destination=0, target_ber=1e-11)
        )

    configuration = benchmark(configure)
    assert configuration.code_name in {"w/o ECC", "H(71,64)", "H(7,4)"}
